#include "cc/timely.h"

#include "net/flow.h"

#include <algorithm>

namespace fastcc::cc {

void Timely::on_flow_start(net::FlowView flow) {
  rate_ = flow.line_rate;  // RDMA line-rate start, like the other protocols
  min_rtt_ = static_cast<double>(flow.base_rtt);
  if (p_.t_low == 0) p_.t_low = flow.base_rtt + 2 * sim::kMicrosecond;
  if (p_.t_high == 0) p_.t_high = flow.base_rtt + 20 * sim::kMicrosecond;
  flow.window_bytes = net::FlowTx::kUnlimitedWindow;
  flow.rate = rate_;
}

void Timely::on_ack(const AckContext& ack, net::FlowView flow) {
  // RTT-gradient estimation.
  if (prev_rtt_ < 0) {
    prev_rtt_ = ack.rtt;
    return;
  }
  const double new_diff = static_cast<double>(ack.rtt - prev_rtt_);
  prev_rtt_ = ack.rtt;
  rtt_diff_ = (1.0 - p_.ewma_alpha) * rtt_diff_ + p_.ewma_alpha * new_diff;
  const double gradient = rtt_diff_ / min_rtt_;

  const bool md_gate_open =
      last_decrease_time_ < 0 || ack.now - last_decrease_time_ >= ack.rtt;

  auto additive = [&] {
    const bool hai = p_.use_hai && in_hai();
    rate_ += hai ? p_.hai_multiplier * p_.additive_step : p_.additive_step;
    ++negative_streak_;
  };

  if (ack.rtt < p_.t_low) {
    // Guard band: clearly uncongested regardless of gradient.
    additive();
  } else if (ack.rtt > p_.t_high) {
    // Guard band: cap the worst-case queueing delay.
    if (md_gate_open) {
      rate_ *= 1.0 - p_.beta *
                         (1.0 - static_cast<double>(p_.t_high) /
                                    static_cast<double>(ack.rtt));
      last_decrease_time_ = ack.now;
    }
    negative_streak_ = 0;
  } else if (gradient <= 0.0) {
    additive();
  } else {
    if (md_gate_open) {
      rate_ *= 1.0 - p_.beta * std::min(gradient, 1.0);
      last_decrease_time_ = ack.now;
    }
    negative_streak_ = 0;
  }

  rate_ = std::clamp(rate_, p_.min_rate, flow.line_rate);
  flow.rate = rate_;
}

}  // namespace fastcc::cc
