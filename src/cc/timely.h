// TIMELY (Mittal et al., SIGCOMM 2015).
//
// A rate-based protocol driven by the *gradient* of the RTT rather than its
// absolute value: a rising RTT (positive gradient) signals queue growth and
// triggers a proportional multiplicative decrease, a falling or flat RTT
// allows additive increase.  Absolute guard bands remain: below t_low the
// rate always grows, above t_high it always shrinks.  TIMELY's distinctive
// Hyper-Active Increase (HAI) multiplies the additive step after several
// consecutive gradient-negative updates — the mechanism the paper's
// Section VI-B suggests grafting onto Swift to fix its slow median-FCT
// recovery.
//
// The paper under reproduction evaluates Swift and HPCC only; TIMELY is
// provided as the third sender-side reaction protocol of Section II and as
// the substrate for the hyper-AI comparison bench.
#pragma once

#include <cstdint>

#include "cc/cc.h"

namespace fastcc::cc {

struct TimelyParams {
  double ewma_alpha = 0.3;     ///< Weight of the newest RTT-difference.
  double beta = 0.8;           ///< Multiplicative-decrease strength.
  sim::Rate additive_step = sim::gbps(0.05);  ///< delta (50 Mbps).
  sim::Time t_low = 0;         ///< Below: always increase. 0 = base_rtt+2us.
  sim::Time t_high = 0;        ///< Above: always decrease. 0 = base_rtt+20us.
  int hai_threshold = 5;       ///< Gradient-negative updates to enter HAI.
  int hai_multiplier = 5;      ///< N: HAI step = N x delta.
  bool use_hai = true;
  sim::Rate min_rate = sim::gbps(0.1);
};

class Timely {
 public:
  explicit Timely(const TimelyParams& params) : p_(params) {}

  void on_flow_start(net::FlowView flow);
  void on_ack(const AckContext& ack, net::FlowView flow);
  const char* name() const { return "timely"; }

  double normalized_gradient() const { return rtt_diff_ / min_rtt_; }
  bool in_hai() const { return negative_streak_ >= p_.hai_threshold; }
  sim::Rate current_rate() const { return rate_; }

 private:
  TimelyParams p_;
  sim::Rate rate_ = 0.0;
  sim::Time prev_rtt_ = -1;
  double rtt_diff_ = 0.0;      ///< EWMA of consecutive RTT differences, ns.
  double min_rtt_ = 1.0;       ///< Normalization base (the unloaded RTT).
  int negative_streak_ = 0;
  sim::Time last_decrease_time_ = -1;  ///< MD gate: once per RTT.
};

}  // namespace fastcc::cc
