// DCTCP (Alizadeh et al., SIGCOMM 2010).
//
// The paper's reference ([5]) for scaling the multiplicative decrease with
// the *extent* of congestion: switches mark packets with a step function at
// queue threshold K, the sender maintains an EWMA `alpha` of the fraction of
// marked ACKs per window, and each congested window shrinks by alpha/2 —
// light congestion costs a sliver of window, heavy congestion costs half.
// Included as the fourth sender-side baseline protocol.
#pragma once

#include <cstdint>

#include "cc/cc.h"

namespace fastcc::cc {

struct DctcpParams {
  double g = 1.0 / 16.0;  ///< EWMA gain for the marked fraction.
  double ai_packets_per_rtt = 1.0;
  double min_cwnd_packets = 1.0;
  /// Step-marking threshold the switches should use (bytes); exposed here so
  /// experiments configure RED consistently with the protocol.
  std::uint32_t mark_threshold_bytes = 100'000;
};

class Dctcp {
 public:
  explicit Dctcp(const DctcpParams& params) : p_(params) {}

  void on_flow_start(net::FlowView flow);
  void on_ack(const AckContext& ack, net::FlowView flow);
  const char* name() const { return "dctcp"; }

  double alpha() const { return alpha_; }
  double cwnd_packets() const { return cwnd_; }

 private:
  void apply(net::FlowView flow);

  DctcpParams p_;
  double cwnd_ = 0.0;        ///< Packets.
  double max_cwnd_ = 0.0;
  double alpha_ = 0.0;
  std::uint64_t window_end_seq_ = 0;  ///< Current observation window.
  std::uint64_t acked_in_window_ = 0;
  std::uint64_t marked_in_window_ = 0;
};

}  // namespace fastcc::cc
