// CcEngine: sealed, statically-dispatched congestion-control holder.
//
// FlowTx used to own its controller as std::unique_ptr<CongestionControl>,
// which cost every flow a heap allocation and every ACK a virtual call into
// a cache-cold object.  CcEngine stores the concrete protocol state inline
// in a variant over the five in-tree algorithms, so per-ACK dispatch is a
// switch on the variant index with direct (inlinable) calls, and flow state
// — transmission bookkeeping and controller — is one contiguous block.
//
// The last alternative keeps the open CongestionControl interface alive as
// an escape hatch: tests and out-of-tree extensions can still install a
// heap-allocated virtual controller (FixedCc, instrumentation probes), and
// conversion from unique_ptr is implicit so existing call sites assign as
// before.  In-tree protocols must use the sealed alternatives — the
// virtual-hot-path lint check enforces that no unique_ptr controller creeps
// back into the hot path (this file is the single allowlisted exception).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <variant>

#include "cc/cc.h"
#include "cc/dcqcn.h"
#include "cc/dctcp.h"
#include "cc/hpcc.h"
#include "cc/swift.h"
#include "cc/timely.h"

namespace fastcc::cc {

class CcEngine {
 public:
  CcEngine() = default;

  // Implicit by design: `flow.cc = Hpcc(params)` and
  // `flow.cc = factory.make(path)` should both read as plain assignment.
  CcEngine(Hpcc cc) : impl_(std::move(cc)) {}                   // NOLINT
  CcEngine(Swift cc) : impl_(std::move(cc)) {}                  // NOLINT
  CcEngine(Dcqcn cc) : impl_(std::move(cc)) {}                  // NOLINT
  CcEngine(Dctcp cc) : impl_(std::move(cc)) {}                  // NOLINT
  CcEngine(Timely cc) : impl_(std::move(cc)) {}                 // NOLINT
  CcEngine(std::unique_ptr<CongestionControl> cc)               // NOLINT
      : impl_(std::move(cc)) {}
  // Accept derived-class pointers directly (`flow.cc =
  // std::make_unique<FixedCc>(...)`); without this, the two user-defined
  // conversions (unique_ptr upcast, then engine wrap) could not chain.
  template <typename T,
            typename = std::enable_if_t<std::is_base_of_v<CongestionControl, T>>>
  CcEngine(std::unique_ptr<T> cc)                               // NOLINT
      : impl_(std::unique_ptr<CongestionControl>(std::move(cc))) {}

  CcEngine(CcEngine&&) = default;
  CcEngine& operator=(CcEngine&&) = default;

  /// True when a controller is installed (unset flows fail start_flow's
  /// assertion, as a null unique_ptr used to).
  explicit operator bool() const {
    if (std::holds_alternative<std::monostate>(impl_)) return false;
    if (const auto* p = std::get_if<std::unique_ptr<CongestionControl>>(
            &impl_)) {
      return *p != nullptr;
    }
    return true;
  }

  void on_flow_start(net::FlowView flow) {
    switch (impl_.index()) {
      case kHpcc: std::get_if<Hpcc>(&impl_)->on_flow_start(flow); break;
      case kSwift: std::get_if<Swift>(&impl_)->on_flow_start(flow); break;
      case kDcqcn: std::get_if<Dcqcn>(&impl_)->on_flow_start(flow); break;
      case kDctcp: std::get_if<Dctcp>(&impl_)->on_flow_start(flow); break;
      case kTimely: std::get_if<Timely>(&impl_)->on_flow_start(flow); break;
      case kVirtual: virtual_cc()->on_flow_start(flow); break;
      default: break;
    }
  }

  /// The per-ACK hot path: direct dispatch, no indirect call for the sealed
  /// protocols.
  void on_ack(const AckContext& ack, net::FlowView flow) {
    switch (impl_.index()) {
      case kHpcc: std::get_if<Hpcc>(&impl_)->on_ack(ack, flow); break;
      case kSwift: std::get_if<Swift>(&impl_)->on_ack(ack, flow); break;
      case kDcqcn: std::get_if<Dcqcn>(&impl_)->on_ack(ack, flow); break;
      case kDctcp: std::get_if<Dctcp>(&impl_)->on_ack(ack, flow); break;
      case kTimely: std::get_if<Timely>(&impl_)->on_ack(ack, flow); break;
      case kVirtual: virtual_cc()->on_ack(ack, flow); break;
      default: break;
    }
  }

  const char* name() const {
    switch (impl_.index()) {
      case kHpcc: return std::get_if<Hpcc>(&impl_)->name();
      case kSwift: return std::get_if<Swift>(&impl_)->name();
      case kDcqcn: return std::get_if<Dcqcn>(&impl_)->name();
      case kDctcp: return std::get_if<Dctcp>(&impl_)->name();
      case kTimely: return std::get_if<Timely>(&impl_)->name();
      case kVirtual: return virtual_cc()->name();
      default: return "none";
    }
  }

  /// Earliest controller-internal deadline, or kNoTimer (-1).  Only DCQCN's
  /// recovery machinery is timer-driven; the Host routes the deadline onto
  /// its timing wheel and calls on_timer() when it elapses.
  sim::Time next_timer() const {
    if (const auto* d = std::get_if<Dcqcn>(&impl_)) return d->next_timer();
    return -1;
  }

  void on_timer(sim::Time now, net::FlowView flow) {
    if (auto* d = std::get_if<Dcqcn>(&impl_)) d->on_timer(now, flow);
  }

  /// Typed access for tests and introspection (nullptr on mismatch).
  template <typename T>
  T* get_if() {
    return std::get_if<T>(&impl_);
  }
  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&impl_);
  }

  /// The escape-hatch controller, if that alternative is active.
  CongestionControl* virtual_cc() {
    auto* p = std::get_if<std::unique_ptr<CongestionControl>>(&impl_);
    return p ? p->get() : nullptr;
  }
  const CongestionControl* virtual_cc() const {
    const auto* p = std::get_if<std::unique_ptr<CongestionControl>>(&impl_);
    return p ? p->get() : nullptr;
  }

 private:
  // Indices into the variant below; keep in sync.
  static constexpr std::size_t kHpcc = 1;
  static constexpr std::size_t kSwift = 2;
  static constexpr std::size_t kDcqcn = 3;
  static constexpr std::size_t kDctcp = 4;
  static constexpr std::size_t kTimely = 5;
  static constexpr std::size_t kVirtual = 6;

  std::variant<std::monostate, Hpcc, Swift, Dcqcn, Dctcp, Timely,
               std::unique_ptr<CongestionControl>>
      impl_;
};

static_assert(std::is_move_constructible_v<CcEngine> &&
                  std::is_move_assignable_v<CcEngine>,
              "flow tables move FlowTx (and its engine) on growth");

}  // namespace fastcc::cc
