// HPCC (Li et al., SIGCOMM 2019) with the paper's extensions.
//
// HPCC is a window-based MIMD protocol driven by per-hop INT telemetry.  Each
// ACK yields a normalized inflight estimate U (queue component + rate
// component per link, maximum over hops, EWMA-smoothed); the window is set to
// Wc / (U/eta) + W_AI relative to a reference window Wc that is updated at
// most once per RTT, plus an additive term for fairness.
//
// Extensions implemented for the paper's evaluation:
//  * configurable AI (the "HPCC 1Gbps" baseline),
//  * probabilistic feedback (reference-updating decreases ignored with
//    probability proportional to how far the window is below max),
//  * Sampling Frequency (reference-window decreases every `s` ACKs),
//  * Variable AI (token bank driven by per-RTT max queue depth).
#pragma once

#include <array>
#include <cstdint>

#include "cc/cc.h"
#include "core/sampling_frequency.h"
#include "core/variable_ai.h"
#include "sim/random.h"
#include "util/contracts.h"

namespace fastcc::cc {

struct HpccParams {
  double eta = 0.95;            ///< Target utilization.
  int max_stage = 5;            ///< AI stages before an MIMD recalibration.
  sim::Rate ai_rate = sim::gbps(0.05);  ///< Additive increase (50 Mbps).
  double ewma_weight_cap = 1.0; ///< Cap for tau/T in the U EWMA.

  bool probabilistic_feedback = false;
  int sampling_freq = 0;        ///< ACKs per reference decrease; 0 = per RTT.
  core::VariableAiParams vai;   ///< token_thresh / ai_div in *bytes* of queue.

  double min_window_mtus = 0.1; ///< Floor on W, in MTUs.
};

/// Convenience: the paper's VAI parameterization for HPCC — one token per
/// KByte of queue above `min_bdp_bytes`, bank 1000, cap 100, dampener 8.
core::VariableAiParams hpcc_paper_vai(FASTCC_UNIT_BYTES double min_bdp_bytes);

// Concrete protocols are plain (non-virtual) classes dispatched statically
// through cc::CcEngine (engine.h); deriving from CongestionControl is
// reserved for out-of-tree extensions that accept the indirect-call cost.
class Hpcc {
 public:
  Hpcc(const HpccParams& params, sim::Rng* rng = nullptr)
      : p_(params), vai_(params.vai), sf_(params.sampling_freq), rng_(rng) {}

  void on_flow_start(net::FlowView flow);
  void on_ack(const AckContext& ack, net::FlowView flow);
  const char* name() const { return "hpcc"; }

  // Introspection for tests.
  FASTCC_UNIT_BYTES double reference_window() const { return wc_; }
  double utilization_estimate() const { return u_; }
  int inc_stage() const { return inc_stage_; }
  const core::VariableAi& vai() const { return vai_; }

 private:
  /// HPCC's MeasureInflight: returns the EWMA-updated U, or a negative value
  /// until a previous INT snapshot exists to difference against.
  double measure_inflight(const AckContext& ack, const net::FlowView& flow);

  /// HPCC's ComputeWind.
  double compute_window(double u, bool update_reference, net::FlowView flow);

  void maybe_rtt_boundary(const AckContext& ack, const net::FlowView& flow);

  HpccParams p_;
  core::VariableAi vai_;
  core::SamplingFrequency sf_;
  sim::Rng* rng_;

  FASTCC_UNIT_BYTES double wc_ = 0.0;  ///< Reference window (bytes).
  double u_ = 0.0;   ///< Smoothed normalized inflight.
  int inc_stage_ = 0;
  std::uint64_t last_update_seq_ = 0;  ///< Per-RTT reference gate.

  // Per-RTT trackers for VAI.
  std::uint64_t vai_boundary_seq_ = 0;
  double rtt_max_u_ = 0.0;

  std::array<net::IntRecord, net::kMaxHops> prev_ints_{};
  int prev_hop_count_ = -1;

  /// line_rate * base_rtt (probabilistic law).
  FASTCC_UNIT_BYTES double max_window_ = 0.0;
  /// ai_rate * base_rtt, bytes.
  FASTCC_UNIT_BYTES double w_ai_base_ = 0.0;
};

}  // namespace fastcc::cc
