#include "cc/swift.h"

#include "net/flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastcc::cc {

core::VariableAiParams swift_paper_vai(sim::Time target_delay,
                                       sim::Time base_rtt,
                                       sim::Time min_bdp_delay) {
  core::VariableAiParams vai;
  vai.enabled = true;
  // The paper thresholds the raw RTT at target + min-BDP delay; our measured
  // congestion is queueing delay (rtt - base_rtt), so subtract the base.
  vai.token_thresh = static_cast<double>(
      std::max<sim::Time>(target_delay + min_bdp_delay - base_rtt, 1));
  vai.ai_div = 30.0;  // one token per 30 ns of queueing delay
  vai.bank_cap = 1000.0;
  vai.ai_cap = 100.0;
  vai.dampener_constant = 8.0;
  return vai;
}

void Swift::on_flow_start(net::FlowView flow) {
  max_cwnd_ = flow.line_rate * static_cast<double>(flow.base_rtt) /
              static_cast<double>(flow.mtu);
  // The paper starts Swift flows at line rate to match RDMA peers.
  cwnd_ = max_cwnd_;
  ref_cwnd_ = max_cwnd_;
  ai_pkts_per_rtt_ = p_.ai_rate * static_cast<double>(flow.base_rtt) /
                     static_cast<double>(flow.mtu);
  rtt_ewma_ = flow.base_rtt;
  last_decrease_time_ = -1;
  apply(flow);
}

sim::Time Swift::target_delay(double cwnd_packets, int switch_hops) const {
  sim::Time t = p_.base_target + switch_hops * p_.per_hop_scaling;
  if (p_.use_fbs) {
    // Swift's flow-based scaling: target rises as 1/sqrt(cwnd) between
    // fs_max_cwnd (no extra) and fs_min_cwnd (full fs_range extra).
    const double inv_sqrt_min = 1.0 / std::sqrt(p_.fs_min_cwnd);
    const double inv_sqrt_max = 1.0 / std::sqrt(p_.fs_max_cwnd);
    const double alpha =
        static_cast<double>(p_.fs_range) / (inv_sqrt_min - inv_sqrt_max);
    const double beta_hat = -alpha * inv_sqrt_max;
    const double cwnd = std::max(cwnd_packets, 1e-6);
    double extra = alpha / std::sqrt(cwnd) + beta_hat;
    extra = std::clamp(extra, 0.0, static_cast<double>(p_.fs_range));
    t += static_cast<sim::Time>(extra);
  }
  return t;
}

double Swift::mdf_factor(sim::Time delay, sim::Time target) const {
  // Equation 1: the multiplicative factor shrinks with congestion severity
  // but never drops below max_mdf (0.5 in the paper's setting).
  const double severity = static_cast<double>(delay - target) /
                          static_cast<double>(std::max<sim::Time>(delay, 1));
  return std::max(1.0 - p_.beta * severity, p_.max_mdf);
}

void Swift::apply(net::FlowView flow) {
  cwnd_ = std::clamp(cwnd_, p_.min_cwnd, max_cwnd_);
  flow.window_bytes =
      std::max(cwnd_ * flow.mtu, net::FlowTx::kMinWindowBytes);
  if (cwnd_ >= 1.0) {
    // Window-limited, ack-clocked regime: the NIC sends as fast as the
    // window allows.
    flow.rate = flow.line_rate;
  } else {
    // Sub-packet windows pace one packet per rtt/cwnd, per the Swift paper.
    flow.rate = cwnd_ * static_cast<double>(flow.mtu) /
                static_cast<double>(std::max<sim::Time>(rtt_ewma_, 1));
  }
}

void Swift::maybe_rtt_boundary(const AckContext& ack, const net::FlowView& flow,
                               sim::Time target) {
  if (vai_.enabled()) {
    const sim::Time qdelay = std::max<sim::Time>(ack.rtt - flow.base_rtt, 0);
    vai_.observe(static_cast<double>(qdelay));
  }
  if (ack.rtt > target) congestion_seen_in_rtt_ = true;
  if (ack.ack_seq > vai_boundary_seq_) {
    vai_.on_rtt_boundary(/*no_congestion_entire_rtt=*/!congestion_seen_in_rtt_);
    if (congestion_seen_in_rtt_) {
      quiet_rtt_streak_ = 0;
    } else {
      ++quiet_rtt_streak_;
    }
    congestion_seen_in_rtt_ = false;
    vai_boundary_seq_ = flow.snd_nxt;
  }
}

double Swift::hyper_ai_factor() const {
  return in_hyper_ai() ? p_.hai_multiplier : 1.0;
}

void Swift::on_ack(const AckContext& ack, net::FlowView flow) {
  constexpr double kRttEwma = 0.2;
  rtt_ewma_ = static_cast<sim::Time>((1.0 - kRttEwma) *
                                         static_cast<double>(rtt_ewma_) +
                                     kRttEwma * static_cast<double>(ack.rtt));

  const sim::Time target = target_delay(cwnd_, scaling_hops(flow.path_hops));
  maybe_rtt_boundary(ack, flow, target);

  const bool sf_mode = sf_.enabled() || p_.always_ai;
  const double acked_pkts =
      static_cast<double>(ack.bytes_acked) / static_cast<double>(flow.mtu);

  if (!sf_mode) {
    // ---- Stock Swift ----
    if (ack.rtt < target) {
      // Additive increase, ~ai_pkts_per_rtt_ per RTT spread over ACKs —
      // scaled up in hyper mode after a streak of congestion-free RTTs.
      cwnd_ += hyper_ai_factor() * ai_pkts_per_rtt_ * acked_pkts /
               std::max(cwnd_, 1.0);
    } else if (last_decrease_time_ < 0 ||
               ack.now - last_decrease_time_ >= ack.rtt) {
      bool commit = true;
      if (p_.probabilistic_feedback && rng_ != nullptr) {
        // Linear ignore law: small windows usually disregard the signal.
        const double draw = rng_->uniform(0.0, max_cwnd_);
        if (cwnd_ < draw) commit = false;
      }
      if (commit) {
        cwnd_ *= mdf_factor(ack.rtt, target);
        last_decrease_time_ = ack.now;
      }
    }
    apply(flow);
    return;
  }

  // ---- Sampling-Frequency mode (Section V-B) ----
  // Window recomputed from a reference each ACK, HPCC-style; the reference
  // commits every s ACKs on decreases and once per RTT on increases.  The AI
  // term is always present so Variable AI tokens are always spent.
  const bool decrease_branch = ack.rtt > target;
  const double factor = decrease_branch ? mdf_factor(ack.rtt, target) : 1.0;

  bool update_reference;
  if (decrease_branch) {
    update_reference = sf_.enabled() ? sf_.tick()
                                     : (last_decrease_time_ < 0 ||
                                        ack.now - last_decrease_time_ >= ack.rtt);
  } else {
    update_reference = ack.ack_seq > ref_boundary_seq_;
  }

  if (update_reference && decrease_branch && p_.probabilistic_feedback &&
      rng_ != nullptr) {
    const double draw = rng_->uniform(0.0, max_cwnd_);
    if (ref_cwnd_ < draw) update_reference = false;
  }

  // During persistent congestion a slow flow's s-ACK commit can span many
  // RTTs; accrue the additive increase into the reference once per RTT so
  // increases keep their per-RTT cadence (Section V-B), mirroring HPCC.
  if (decrease_branch && !update_reference &&
      ack.ack_seq > ref_boundary_seq_) {
    // Token-driven surplus only (see the HPCC twin of this block): no-op
    // once the bank is empty, so steady state matches stock Swift.
    const double mult = vai_.ai_multiplier(/*spend=*/true);
    if (mult > 1.0) {
      ref_cwnd_ += ai_pkts_per_rtt_ * (mult - 1.0);
      ref_cwnd_ = std::min(ref_cwnd_, max_cwnd_);
    }
    ref_boundary_seq_ = flow.snd_nxt;
  }

  const double ai_term =
      (p_.always_ai || !decrease_branch)
          ? hyper_ai_factor() * ai_pkts_per_rtt_ *
                vai_.ai_multiplier(/*spend=*/update_reference)
          : 0.0;
  cwnd_ = ref_cwnd_ * factor + ai_term;
  cwnd_ = std::clamp(cwnd_, p_.min_cwnd, max_cwnd_);

  if (update_reference) {
    ref_cwnd_ = cwnd_;
    if (decrease_branch) {
      last_decrease_time_ = ack.now;
    } else {
      ref_boundary_seq_ = flow.snd_nxt;
      sf_.reset();
    }
  }
  apply(flow);
}

}  // namespace fastcc::cc
