// Swift (Kumar et al., SIGCOMM 2020) with the paper's extensions.
//
// Swift is a delay-based AIMD protocol: each ACK's RTT is compared against a
// target delay; below target the congestion window grows additively, above
// target it shrinks by a multiplicative factor scaled with how far delay
// overshoots (Equation 1 of the paper), at most once per RTT.  The target
// itself moves: Topology-based Scaling adds a per-hop term, and Flow-based
// Scaling (FBS) raises the target for flows with small windows to improve
// fairness.
//
// Extensions implemented for the paper's evaluation:
//  * line-rate flow start (the paper's choice to match RDMA protocols),
//  * configurable AI and probabilistic feedback baselines,
//  * Sampling Frequency with an HPCC-style reference window: per-ACK window
//    adjustments are recomputed from a reference that commits every s ACKs
//    on decreases and once per RTT on increases (Section V-B),
//  * "always additive increase" (HPCC-style ever-present AI term) so VAI
//    tokens are always spent (Section V-B),
//  * Variable AI driven by per-RTT max queueing delay.
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/cc.h"
#include "core/sampling_frequency.h"
#include "core/variable_ai.h"
#include "sim/random.h"
#include "util/contracts.h"

namespace fastcc::cc {

struct SwiftParams {
  sim::Rate ai_rate = sim::gbps(0.05);  ///< Additive increase (50 Mbps).
  double beta = 0.8;            ///< MD aggressiveness (Equation 1).
  double max_mdf = 0.5;         ///< Floor of the multiplicative factor in
                                ///< Equation 1 (0.5 = at most halving).
  sim::Time base_target = 5 * sim::kMicrosecond;
  sim::Time per_hop_scaling = 2 * sim::kMicrosecond;  ///< Topology scaling.

  // Flow-based scaling (FBS).
  bool use_fbs = true;
  double fs_min_cwnd = 0.1;     ///< Packets.
  double fs_max_cwnd = 100.0;   ///< Packets (paper lowers to 50 on the star).
  sim::Time fs_range = 4 * sim::kMicrosecond;  ///< Max extra target delay.

  double min_cwnd = 0.01;       ///< Packets.

  bool probabilistic_feedback = false;
  int sampling_freq = 0;        ///< ACKs per committed decrease; 0 = per RTT.
  bool always_ai = false;       ///< HPCC-style AI term on every update.

  // Hyper additive increase (the paper's Section VI-B future-work idea,
  // borrowed from TIMELY): after `hai_threshold` consecutive congestion-free
  // RTTs the AI step is multiplied, letting flows grab freed bandwidth
  // quickly — the fix for Swift's slow median-FCT recovery in Figure 12.
  bool use_hyper_ai = false;
  int hai_threshold = 5;        ///< Quiet RTTs before hyper mode.
  double hai_multiplier = 4.0;  ///< AI scale while in hyper mode.
  core::VariableAiParams vai;   ///< token_thresh / ai_div in *ns* of
                                ///< queueing delay (rtt - base_rtt).
};

/// The paper's VAI parameterization for Swift: one token per 30 ns of
/// queueing delay; threshold = (target - base_rtt) + the delay of one
/// minimum-BDP queue (4 us at 100 Gbps for 50 KB), bank 1000 / cap 100 /
/// dampener 8.
core::VariableAiParams swift_paper_vai(sim::Time target_delay,
                                       sim::Time base_rtt,
                                       sim::Time min_bdp_delay);

class Swift {
 public:
  Swift(const SwiftParams& params, sim::Rng* rng = nullptr)
      : p_(params), vai_(params.vai), sf_(params.sampling_freq), rng_(rng) {}

  void on_flow_start(net::FlowView flow);
  void on_ack(const AckContext& ack, net::FlowView flow);
  const char* name() const { return "swift"; }

  /// Target delay for a given congestion window and number of *switch* hops
  /// (the paper's topology-based scaling unit; a star path has 1, the
  /// fat-tree worst case 5).  Exposed for tests.
  sim::Time target_delay(FASTCC_DIMENSIONLESS double cwnd_packets,
                         int switch_hops) const;

  /// Switch hops on a path with `link_hops` links (hosts at both ends).
  static int scaling_hops(int link_hops) { return std::max(link_hops - 1, 0); }

  FASTCC_DIMENSIONLESS double cwnd() const { return cwnd_; }
  FASTCC_DIMENSIONLESS double reference_cwnd() const { return ref_cwnd_; }
  const core::VariableAi& vai() const { return vai_; }
  bool in_hyper_ai() const {
    return p_.use_hyper_ai && quiet_rtt_streak_ >= p_.hai_threshold;
  }

 private:
  double mdf_factor(sim::Time delay, sim::Time target) const;
  double hyper_ai_factor() const;
  void apply(net::FlowView flow);
  void maybe_rtt_boundary(const AckContext& ack, const net::FlowView& flow,
                          sim::Time target);

  SwiftParams p_;
  core::VariableAi vai_;
  core::SamplingFrequency sf_;
  sim::Rng* rng_;

  FASTCC_DIMENSIONLESS double cwnd_ = 0.0;      ///< Packets.
  FASTCC_DIMENSIONLESS double ref_cwnd_ = 0.0;  ///< Reference window (SF).
  FASTCC_DIMENSIONLESS double max_cwnd_ = 0.0;  ///< Line-rate BDP, packets.
  FASTCC_DIMENSIONLESS double ai_pkts_per_rtt_ = 0.0;

  sim::Time last_decrease_time_ = -1;     ///< Per-RTT MD gate (default mode).
  std::uint64_t ref_boundary_seq_ = 0;    ///< Per-RTT reference gate (SF).
  std::uint64_t vai_boundary_seq_ = 0;
  bool congestion_seen_in_rtt_ = false;
  int quiet_rtt_streak_ = 0;
  sim::Time rtt_ewma_ = 0;
};

}  // namespace fastcc::cc
