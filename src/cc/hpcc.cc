#include "cc/hpcc.h"

#include "net/flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastcc::cc {

core::VariableAiParams hpcc_paper_vai(double min_bdp_bytes) {
  core::VariableAiParams vai;
  vai.enabled = true;
  vai.token_thresh = min_bdp_bytes;
  vai.ai_div = 1000.0;  // one token per KByte of queue
  vai.bank_cap = 1000.0;
  vai.ai_cap = 100.0;
  vai.dampener_constant = 8.0;
  return vai;
}

void Hpcc::on_flow_start(net::FlowView flow) {
  // RDMA flows start at line rate: W = line-rate BDP (Sec. IV observation 1).
  max_window_ = flow.line_rate * static_cast<double>(flow.base_rtt);
  wc_ = max_window_;
  w_ai_base_ = p_.ai_rate * static_cast<double>(flow.base_rtt);
  flow.window_bytes = max_window_;
  flow.rate = flow.line_rate;
  last_update_seq_ = 0;
  vai_boundary_seq_ = 0;
}

double Hpcc::measure_inflight(const AckContext& ack, const net::FlowView& flow) {
  const int hops = static_cast<int>(ack.ints.size());
  if (hops == 0) return -1.0;
  if (prev_hop_count_ != hops) {
    // First ACK on this path (or a reroute): snapshot and wait for the next.
    for (int i = 0; i < hops; ++i) prev_ints_[i] = ack.ints[i];
    prev_hop_count_ = hops;
    return -1.0;
  }

  const double T = static_cast<double>(flow.base_rtt);
  double u_max = 0.0;
  double tau = T;
  for (int i = 0; i < hops; ++i) {
    const net::IntRecord& cur = ack.ints[i];
    const net::IntRecord& prev = prev_ints_[i];
    const double dt = static_cast<double>(cur.timestamp - prev.timestamp);
    if (dt <= 0.0) continue;  // two ACKs surveyed the same egress event
    const double tx_rate =
        static_cast<double>(cur.tx_bytes - prev.tx_bytes) / dt;
    const double qlen = static_cast<double>(
        std::min(cur.qlen_bytes, prev.qlen_bytes));
    const double u_link = qlen / (cur.bandwidth * T) + tx_rate / cur.bandwidth;
    if (u_link > u_max) {
      u_max = u_link;
      tau = dt;
    }
  }
  for (int i = 0; i < hops; ++i) prev_ints_[i] = ack.ints[i];

  tau = std::min(tau, T);
  const double w = std::min(tau / T, p_.ewma_weight_cap);
  u_ = (1.0 - w) * u_ + w * u_max;
  return u_;
}

void Hpcc::maybe_rtt_boundary(const AckContext& ack, const net::FlowView& flow) {
  rtt_max_u_ = std::max(rtt_max_u_, u_);
  if (vai_.enabled()) {
    // Measured congestion for HPCC's VAI is the max per-hop queue depth.
    double max_q = 0.0;
    for (const auto& rec : ack.ints) {
      max_q = std::max(max_q, static_cast<double>(rec.qlen_bytes));
    }
    vai_.observe(max_q);
  }
  if (ack.ack_seq > vai_boundary_seq_) {
    // "No congestion" for HPCC: the multiplicative factor stayed in increase
    // territory (max U < eta) for the whole RTT.
    vai_.on_rtt_boundary(/*no_congestion_entire_rtt=*/rtt_max_u_ < p_.eta);
    rtt_max_u_ = 0.0;
    vai_boundary_seq_ = flow.snd_nxt;
  }
}

double Hpcc::compute_window(double u, bool update_reference,
                            net::FlowView flow) {
  const double w_ai =
      w_ai_base_ * vai_.ai_multiplier(/*spend=*/update_reference);
  double w;
  if (u >= p_.eta || inc_stage_ >= p_.max_stage) {
    // Multiplicative adjustment toward eta utilization.
    w = wc_ / (u / p_.eta) + w_ai;
    if (update_reference) {
      inc_stage_ = 0;
      wc_ = w;
    }
  } else {
    // Additive increase stage.
    w = wc_ + w_ai;
    if (update_reference) {
      ++inc_stage_;
      wc_ = w;
    }
  }
  const double min_w = p_.min_window_mtus * flow.mtu;
  return std::clamp(w, min_w, max_window_);
}

void Hpcc::on_ack(const AckContext& ack, net::FlowView flow) {
  const double u = measure_inflight(ack, flow);
  maybe_rtt_boundary(ack, flow);
  if (u < 0.0) return;  // no measurement yet

  const bool decrease_branch = (u >= p_.eta || inc_stage_ >= p_.max_stage);

  // Reference-update gate.  Default HPCC: once per RTT (ack passed the
  // sequence snapshot taken at the previous update).  With Sampling
  // Frequency, *decreases* commit every s ACKs instead; increases keep the
  // per-RTT schedule (Section V-B).  Because HPCC's reference update couples
  // the multiplicative recalibration with the +W_AI term, SF mode also
  // accrues W_AI into the reference once per RTT during persistent
  // congestion — otherwise slow flows (whose s ACKs span many RTTs) would
  // see their additive increase starve, the opposite of the paper's intent
  // that "rate increases still happen once per-RTT".
  bool update_reference;
  const bool rtt_elapsed = ack.ack_seq > last_update_seq_;
  if (sf_.enabled() && decrease_branch) {
    update_reference = sf_.tick();
  } else {
    update_reference = rtt_elapsed;
  }

  // Probabilistic feedback (Section III-D): a reference-updating decrease is
  // ignored when the per-RTT window is small — rand() % maxW above the
  // current reference window means "disregard this congestion signal".
  if (update_reference && decrease_branch && p_.probabilistic_feedback &&
      rng_ != nullptr) {
    const double draw = rng_->uniform(0.0, max_window_);
    if (wc_ < draw) update_reference = false;
  }

  if (sf_.enabled() && decrease_branch && !update_reference && rtt_elapsed) {
    // Token-driven surplus only: while the bank holds tokens (the network is
    // recovering from a new-flow join), slow flows whose s ACKs span many
    // RTTs still collect their elevated AI once per RTT.  With an empty bank
    // the multiplier is 1 and this adds nothing, so steady-state behaviour
    // matches stock HPCC.
    const double mult = vai_.ai_multiplier(/*spend=*/true);
    if (mult > 1.0) {
      wc_ += w_ai_base_ * (mult - 1.0);
      wc_ = std::min(wc_, max_window_);
    }
    last_update_seq_ = flow.snd_nxt;
  }

  const double w = compute_window(u, update_reference, flow);
  if (update_reference) {
    last_update_seq_ = flow.snd_nxt;
    if (!decrease_branch) sf_.reset();
  }

  flow.window_bytes = std::max(w, net::FlowTx::kMinWindowBytes);
  flow.rate = flow.window_bytes / static_cast<double>(flow.base_rtt);
}

}  // namespace fastcc::cc
