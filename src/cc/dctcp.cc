#include "cc/dctcp.h"

#include "net/flow.h"

#include <algorithm>

namespace fastcc::cc {

void Dctcp::on_flow_start(net::FlowView flow) {
  max_cwnd_ = flow.line_rate * static_cast<double>(flow.base_rtt) /
              static_cast<double>(flow.mtu);
  cwnd_ = max_cwnd_;  // line-rate start, consistent with the RDMA peers
  window_end_seq_ = 0;
  apply(flow);
}

void Dctcp::apply(net::FlowView flow) {
  cwnd_ = std::clamp(cwnd_, p_.min_cwnd_packets, max_cwnd_);
  flow.window_bytes = cwnd_ * flow.mtu;
  flow.rate = flow.line_rate;  // ack-clocked; the window does the limiting
}

void Dctcp::on_ack(const AckContext& ack, net::FlowView flow) {
  if (window_end_seq_ == 0) {
    // First ACK establishes the observation-window horizon (like HPCC's
    // first-telemetry snapshot); no reaction yet.
    window_end_seq_ = flow.snd_nxt;
  } else if (ack.ack_seq > window_end_seq_) {
    // The previous window is fully acknowledged: fold its marked fraction
    // into alpha and react exactly once.
    const double fraction =
        acked_in_window_ == 0
            ? 0.0
            : static_cast<double>(marked_in_window_) /
                  static_cast<double>(acked_in_window_);
    alpha_ = (1.0 - p_.g) * alpha_ + p_.g * fraction;
    if (marked_in_window_ > 0) {
      cwnd_ *= 1.0 - alpha_ / 2.0;
    } else {
      cwnd_ += p_.ai_packets_per_rtt;
    }
    acked_in_window_ = 0;
    marked_in_window_ = 0;
    window_end_seq_ = flow.snd_nxt;
    apply(flow);
  }
  acked_in_window_ += ack.bytes_acked;
  if (ack.ecn) marked_in_window_ += ack.bytes_acked;
}

}  // namespace fastcc::cc
