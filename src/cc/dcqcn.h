// DCQCN (Zhu et al., SIGCOMM 2015).
//
// The paper's background protocol and fairness reference: RED/ECN marking at
// switches is probabilistic, so flows holding more bandwidth receive
// congestion notifications more often — the property the paper's mechanisms
// graft onto HPCC and Swift.  This is a faithful rate-based implementation:
// CNP-driven multiplicative decrease with an EWMA severity estimate (alpha),
// and timer/byte-counter driven recovery through fast-recovery, additive and
// hyper increase stages.
#pragma once

#include <cstdint>

#include "cc/cc.h"
#include "net/flow.h"
#include "sim/simulator.h"

namespace fastcc::cc {

struct DcqcnParams {
  double g = 1.0 / 256.0;       ///< Alpha EWMA gain.
  sim::Time alpha_update_interval = 55 * sim::kMicrosecond;
  sim::Time rate_increase_timer = 55 * sim::kMicrosecond;
  std::uint64_t byte_counter = 10'000'000;  ///< Bytes per BC increase event.
  int fast_recovery_stages = 5;             ///< F.
  sim::Rate rate_ai = sim::gbps(0.04);      ///< Additive increase step.
  sim::Rate rate_hai = sim::gbps(0.4);      ///< Hyper increase step.
  sim::Rate min_rate = sim::gbps(0.1);
};

class Dcqcn final : public CongestionControl {
 public:
  Dcqcn(const DcqcnParams& params, sim::Simulator& simulator)
      : p_(params), sim_(simulator) {}

  void on_flow_start(net::FlowTx& flow) override;
  void on_ack(const AckContext& ack, net::FlowTx& flow) override;
  const char* name() const override { return "dcqcn"; }

  double alpha() const { return alpha_; }
  sim::Rate current_rate() const { return rc_; }
  sim::Rate target_rate() const { return rt_; }

 private:
  void cut_rate(net::FlowTx& flow);
  void increase(net::FlowTx& flow);
  void arm_alpha_timer(net::FlowTx* flow);
  void arm_increase_timer(net::FlowTx* flow);
  void apply(net::FlowTx& flow);

  DcqcnParams p_;
  sim::Simulator& sim_;

  double alpha_ = 1.0;
  sim::Rate rc_ = 0.0;  ///< Current rate.
  sim::Rate rt_ = 0.0;  ///< Target rate.
  int t_stage_ = 0;
  int bc_stage_ = 0;
  std::uint64_t bytes_since_increase_ = 0;
  bool alpha_timer_armed_ = false;
  bool increase_timer_armed_ = false;
  std::uint64_t alpha_epoch_ = 0;     ///< Invalidates stale alpha timers.
  std::uint64_t increase_epoch_ = 0;  ///< Invalidates stale increase timers.
};

}  // namespace fastcc::cc
