// DCQCN (Zhu et al., SIGCOMM 2015).
//
// The paper's background protocol and fairness reference: RED/ECN marking at
// switches is probabilistic, so flows holding more bandwidth receive
// congestion notifications more often — the property the paper's mechanisms
// graft onto HPCC and Swift.  This is a faithful rate-based implementation:
// CNP-driven multiplicative decrease with an EWMA severity estimate (alpha),
// and timer/byte-counter driven recovery through fast-recovery, additive and
// hyper increase stages.
//
// Timers are expressed as *deadlines*, not self-scheduled simulator events:
// next_timer() reports the earliest pending deadline (kNoTimer when the
// machinery is quiescent) and the owner — the Host's per-node timing wheel,
// or a test harness — calls on_timer() when it elapses.  This keeps the
// controller simulator-free (so it can live inside CcEngine's variant and be
// moved with its flow) and avoids the dangling-capture hazard of closures
// holding FlowTx pointers into relocatable flow tables.
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/cc.h"

namespace fastcc::cc {

struct DcqcnParams {
  double g = 1.0 / 256.0;       ///< Alpha EWMA gain.
  sim::Time alpha_update_interval = 55 * sim::kMicrosecond;
  sim::Time rate_increase_timer = 55 * sim::kMicrosecond;
  std::uint64_t byte_counter = 10'000'000;  ///< Bytes per BC increase event.
  int fast_recovery_stages = 5;             ///< F.
  sim::Rate rate_ai = sim::gbps(0.04);      ///< Additive increase step.
  sim::Rate rate_hai = sim::gbps(0.4);      ///< Hyper increase step.
  sim::Rate min_rate = sim::gbps(0.1);
};

class Dcqcn {
 public:
  explicit Dcqcn(const DcqcnParams& params) : p_(params) {}

  void on_flow_start(net::FlowView flow);
  void on_ack(const AckContext& ack, net::FlowView flow);
  const char* name() const { return "dcqcn"; }

  /// Earliest pending deadline (alpha decay or rate recovery), or kNoTimer
  /// (-1) when both are quiescent.
  sim::Time next_timer() const {
    if (alpha_deadline_ < 0) return increase_deadline_;
    if (increase_deadline_ < 0) return alpha_deadline_;
    return std::min(alpha_deadline_, increase_deadline_);
  }

  /// Fires every deadline at or before `now` (alpha decay first — the order
  /// the old per-timer events interleaved; the two updates touch disjoint
  /// state, so the order is fixed purely for reproducibility).
  void on_timer(sim::Time now, net::FlowView flow);

  double alpha() const { return alpha_; }
  sim::Rate current_rate() const { return rc_; }
  sim::Rate target_rate() const { return rt_; }

 private:
  void cut_rate(sim::Time now, net::FlowView flow);
  void increase(net::FlowView flow);
  void maybe_arm_alpha(sim::Time now);
  void maybe_arm_increase(sim::Time now, net::FlowView flow);
  void apply(net::FlowView flow);

  DcqcnParams p_;

  double alpha_ = 1.0;
  sim::Rate rc_ = 0.0;  ///< Current rate.
  sim::Rate rt_ = 0.0;  ///< Target rate.
  int t_stage_ = 0;
  int bc_stage_ = 0;
  std::uint64_t bytes_since_increase_ = 0;
  sim::Time alpha_deadline_ = -1;     ///< -1 = alpha decay quiescent.
  sim::Time increase_deadline_ = -1;  ///< -1 = recovery quiescent.
};

}  // namespace fastcc::cc
