// Congestion-control interface.
//
// fastcc models sender-side reaction protocols (the class the paper targets):
// the sender observes per-ACK feedback — RTT, ECN-echo, and the echoed INT
// record stack — and adjusts the flow's window and/or pacing rate.  Concrete
// algorithms (HPCC, Swift, DCQCN) implement this interface; the paper's
// Variable AI and Sampling Frequency mechanisms plug into HPCC and Swift via
// the reusable helpers in src/core.
#pragma once

#include <cstdint>
#include <span>

#include "net/flow_view.h"
#include "net/packet.h"
#include "sim/time.h"

namespace fastcc::cc {

/// Everything a sender learns from one ACK.
struct AckContext {
  sim::Time now = 0;
  sim::Time rtt = 0;             ///< now - echoed send timestamp.
  std::uint64_t ack_seq = 0;     ///< Cumulative acked byte offset.
  std::uint32_t bytes_acked = 0; ///< Newly acknowledged bytes.
  bool ecn = false;              ///< ECN-echo (congestion experienced).
  bool cnp = false;              ///< DCQCN congestion-notification flag.
  std::span<const net::IntRecord> ints;  ///< Echoed per-hop telemetry.
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Initializes per-flow state (e.g. line-rate start window).  The view's
  /// references may point into a FlowSlab or a standalone FlowTx; either
  /// way the controller only sees the hot fields and the path constants.
  virtual void on_flow_start(net::FlowView flow) = 0;

  /// Reacts to one acknowledgement, mutating the flow's window/rate.
  virtual void on_ack(const AckContext& ack, net::FlowView flow) = 0;

  virtual const char* name() const = 0;
};

}  // namespace fastcc::cc
