#include "cc/dcqcn.h"

#include <algorithm>

#include "net/flow.h"

namespace fastcc::cc {

void Dcqcn::on_flow_start(net::FlowView flow) {
  // RDMA flows start at line rate; DCQCN is purely rate-based.
  rc_ = flow.line_rate;
  rt_ = flow.line_rate;
  alpha_ = 1.0;
  flow.window_bytes = net::FlowTx::kUnlimitedWindow;
  apply(flow);
}

void Dcqcn::apply(net::FlowView flow) {
  rc_ = std::clamp(rc_, p_.min_rate, flow.line_rate);
  rt_ = std::clamp(rt_, p_.min_rate, flow.line_rate);
  flow.rate = rc_;
}

void Dcqcn::cut_rate(sim::Time now, net::FlowView flow) {
  alpha_ = std::min(1.0, (1.0 - p_.g) * alpha_ + p_.g);
  rt_ = rc_;
  rc_ = rc_ * (1.0 - alpha_ / 2.0);
  t_stage_ = 0;
  bc_stage_ = 0;
  bytes_since_increase_ = 0;
  apply(flow);
  // Restart both timers relative to this congestion event.
  alpha_deadline_ = -1;
  increase_deadline_ = -1;
  maybe_arm_alpha(now);
  maybe_arm_increase(now, flow);
}

void Dcqcn::increase(net::FlowView flow) {
  if (t_stage_ >= p_.fast_recovery_stages &&
      bc_stage_ >= p_.fast_recovery_stages) {
    rt_ += p_.rate_hai;  // hyper increase
  } else if (t_stage_ >= p_.fast_recovery_stages ||
             bc_stage_ >= p_.fast_recovery_stages) {
    rt_ += p_.rate_ai;   // additive increase
  }
  // Fast recovery (and every stage): close half the gap to the target rate.
  rc_ = (rt_ + rc_) / 2.0;
  apply(flow);
}

void Dcqcn::maybe_arm_alpha(sim::Time now) {
  if (alpha_deadline_ >= 0) return;
  // Once alpha has decayed to noise, snap to zero and go quiescent: the next
  // CNP re-arms the machinery.  Without this, every long-lived flow would
  // keep a deadline alive for hundreds of milliseconds of pointless decay.
  if (alpha_ < 1e-4) {
    alpha_ = 0.0;
    return;
  }
  alpha_deadline_ = now + p_.alpha_update_interval;
}

void Dcqcn::maybe_arm_increase(sim::Time now, net::FlowView flow) {
  if (increase_deadline_ >= 0) return;
  // At (numerically) line rate the recovery machinery is quiescent until the
  // next CNP; snap the asymptotic fast-recovery tail to exactly line rate.
  if (rc_ >= flow.line_rate * (1.0 - 1e-6) && rt_ >= flow.line_rate) {
    rc_ = flow.line_rate;
    flow.rate = rc_;
    return;
  }
  increase_deadline_ = now + p_.rate_increase_timer;
}

void Dcqcn::on_timer(sim::Time now, net::FlowView flow) {
  if (alpha_deadline_ >= 0 && alpha_deadline_ <= now) {
    alpha_deadline_ = -1;
    alpha_ = (1.0 - p_.g) * alpha_;
    maybe_arm_alpha(now);
  }
  if (increase_deadline_ >= 0 && increase_deadline_ <= now) {
    increase_deadline_ = -1;
    ++t_stage_;
    increase(flow);
    maybe_arm_increase(now, flow);
  }
}

void Dcqcn::on_ack(const AckContext& ack, net::FlowView flow) {
  if (ack.cnp) {
    cut_rate(ack.now, flow);
    return;
  }
  // Byte-counter driven increase events.
  bytes_since_increase_ += ack.bytes_acked;
  if (bytes_since_increase_ >= p_.byte_counter) {
    bytes_since_increase_ = 0;
    ++bc_stage_;
    increase(flow);
  }
  maybe_arm_increase(ack.now, flow);
  maybe_arm_alpha(ack.now);
}

}  // namespace fastcc::cc
