#include "cc/dcqcn.h"

#include <algorithm>

namespace fastcc::cc {

void Dcqcn::on_flow_start(net::FlowTx& flow) {
  // RDMA flows start at line rate; DCQCN is purely rate-based.
  rc_ = flow.line_rate;
  rt_ = flow.line_rate;
  alpha_ = 1.0;
  flow.window_bytes = net::FlowTx::kUnlimitedWindow;
  apply(flow);
}

void Dcqcn::apply(net::FlowTx& flow) {
  rc_ = std::clamp(rc_, p_.min_rate, flow.line_rate);
  rt_ = std::clamp(rt_, p_.min_rate, flow.line_rate);
  flow.rate = rc_;
}

void Dcqcn::cut_rate(net::FlowTx& flow) {
  alpha_ = std::min(1.0, (1.0 - p_.g) * alpha_ + p_.g);
  rt_ = rc_;
  rc_ = rc_ * (1.0 - alpha_ / 2.0);
  t_stage_ = 0;
  bc_stage_ = 0;
  bytes_since_increase_ = 0;
  apply(flow);
  // Restart both timers relative to this congestion event.
  ++alpha_epoch_;
  ++increase_epoch_;
  alpha_timer_armed_ = false;
  increase_timer_armed_ = false;
  arm_alpha_timer(&flow);
  arm_increase_timer(&flow);
}

void Dcqcn::increase(net::FlowTx& flow) {
  if (t_stage_ >= p_.fast_recovery_stages &&
      bc_stage_ >= p_.fast_recovery_stages) {
    rt_ += p_.rate_hai;  // hyper increase
  } else if (t_stage_ >= p_.fast_recovery_stages ||
             bc_stage_ >= p_.fast_recovery_stages) {
    rt_ += p_.rate_ai;   // additive increase
  }
  // Fast recovery (and every stage): close half the gap to the target rate.
  rc_ = (rt_ + rc_) / 2.0;
  apply(flow);
}

void Dcqcn::arm_alpha_timer(net::FlowTx* flow) {
  if (alpha_timer_armed_) return;
  // Once alpha has decayed to noise, snap to zero and stop: the next CNP
  // re-arms the machinery.  Without this, every long-lived flow would keep
  // a timer alive for hundreds of milliseconds of pointless decay events.
  if (alpha_ < 1e-4) {
    alpha_ = 0.0;
    return;
  }
  alpha_timer_armed_ = true;
  const std::uint64_t epoch = alpha_epoch_;
  sim_.after(p_.alpha_update_interval, [this, flow, epoch] {
    if (epoch != alpha_epoch_) return;  // superseded by a CNP restart
    alpha_timer_armed_ = false;
    if (flow->finished()) return;
    alpha_ = (1.0 - p_.g) * alpha_;
    arm_alpha_timer(flow);
  });
}

void Dcqcn::arm_increase_timer(net::FlowTx* flow) {
  if (increase_timer_armed_) return;
  // At (numerically) line rate the recovery machinery is quiescent until the
  // next CNP; snap the asymptotic fast-recovery tail to exactly line rate.
  if (rc_ >= flow->line_rate * (1.0 - 1e-6) && rt_ >= flow->line_rate) {
    rc_ = flow->line_rate;
    flow->rate = rc_;
    return;
  }
  increase_timer_armed_ = true;
  const std::uint64_t epoch = increase_epoch_;
  sim_.after(p_.rate_increase_timer, [this, flow, epoch] {
    if (epoch != increase_epoch_) return;
    increase_timer_armed_ = false;
    if (flow->finished()) return;
    ++t_stage_;
    increase(*flow);
    arm_increase_timer(flow);
  });
}

void Dcqcn::on_ack(const AckContext& ack, net::FlowTx& flow) {
  if (ack.cnp) {
    cut_rate(flow);
    return;
  }
  // Byte-counter driven increase events.
  bytes_since_increase_ += ack.bytes_acked;
  if (bytes_since_increase_ >= p_.byte_counter) {
    bytes_since_increase_ = 0;
    ++bc_stage_;
    increase(flow);
  }
  arm_increase_timer(&flow);
  arm_alpha_timer(&flow);
}

}  // namespace fastcc::cc
