// Exact percentile computation (nearest-rank).
//
// Datacenter-tail studies live and die by their percentiles; with the sample
// counts involved here (10^3..10^5 flows) exact selection is cheap, so no
// sketching is used.  The free function selects with std::nth_element (O(n)
// per query); PercentileEstimator amortizes repeated queries — the
// per-size-bucket FCT tables ask for several percentiles of the same sample
// set — by sorting once behind a dirty flag.
#pragma once

#include <span>
#include <vector>

namespace fastcc::stats {

/// Nearest-rank percentile: the smallest value with at least p% of samples
/// at or below it.  `p` in [0, 100]; p=50 is the median, p=100 the max.
/// Precondition: !values.empty().
double percentile(std::span<const double> values, double p);

/// Convenience for repeated queries against the same sample set.  The first
/// percentile query after an add() sorts the samples once; subsequent
/// queries are O(1) rank lookups.
class PercentileEstimator {
 public:
  void add(double v) {
    values_.push_back(v);
    dirty_ = true;
  }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p999() const { return percentile(99.9); }
  double max() const;
  double mean() const;

 private:
  void ensure_sorted() const;

  // Sorted lazily; mutable so const accessors can amortize across queries.
  mutable std::vector<double> values_;
  mutable bool dirty_ = false;
};

}  // namespace fastcc::stats
