// Exact percentile computation (nearest-rank on a sorted copy).
//
// Datacenter-tail studies live and die by their percentiles; with the sample
// counts involved here (10^3..10^5 flows) exact sorting is cheap, so no
// sketching is used.
#pragma once

#include <span>
#include <vector>

namespace fastcc::stats {

/// Nearest-rank percentile: the smallest value with at least p% of samples
/// at or below it.  `p` in [0, 100]; p=50 is the median, p=100 the max.
/// Precondition: !values.empty().
double percentile(std::span<const double> values, double p);

/// Convenience for repeated queries against the same sample set.
class PercentileEstimator {
 public:
  void add(double v) { values_.push_back(v); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p999() const { return percentile(99.9); }
  double max() const;
  double mean() const;

 private:
  std::vector<double> values_;
};

}  // namespace fastcc::stats
