#include "stats/timeseries.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace fastcc::stats {

double TimeSeries::max_value() const {
  assert(!points_.empty());
  return std::max_element(points_.begin(), points_.end(),
                          [](const TimePoint& a, const TimePoint& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::min_value() const {
  assert(!points_.empty());
  return std::min_element(points_.begin(), points_.end(),
                          [](const TimePoint& a, const TimePoint& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::mean_after(sim::Time from) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const TimePoint& p : points_) {
    if (p.t >= from) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

sim::Time TimeSeries::settle_time(double threshold) const {
  sim::Time settled = -1;
  for (const TimePoint& p : points_) {
    if (p.value >= threshold) {
      if (settled < 0) settled = p.t;
    } else {
      settled = -1;
    }
  }
  return settled;
}

void write_csv(std::ostream& os, const std::vector<const TimeSeries*>& series,
               const std::string& time_unit_divisor_label,
               double time_divisor) {
  if (series.empty()) return;
  os << time_unit_divisor_label;
  for (const TimeSeries* s : series) os << ',' << s->label();
  os << '\n';
  const std::size_t rows = series.front()->size();
  for (std::size_t i = 0; i < rows; ++i) {
    os << static_cast<double>(series.front()->points()[i].t) / time_divisor;
    for (const TimeSeries* s : series) {
      os << ',';
      if (i < s->size()) os << s->points()[i].value;
    }
    os << '\n';
  }
}

}  // namespace fastcc::stats
