// Flow-completion-time records and the paper's slowdown tables.
//
// FCT slowdown divides the achieved FCT by the theoretical minimum for the
// flow's path (propagation + serialization, Section VI-B).  The paper's
// Figures 10-13 sort flows by size, chunk them into equal-population groups
// (1% each in the paper), and report a percentile of slowdown per group.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "net/network.h"
#include "sim/time.h"

namespace fastcc::stats {

struct FlowRecord {
  net::FlowId id = 0;
  std::uint64_t size_bytes = 0;
  sim::Time start_time = 0;
  sim::Time fct = 0;        ///< start -> final cumulative ACK at the sender.
  sim::Time ideal_fct = 0;  ///< Unloaded completion time for this path.
  double slowdown() const {
    return static_cast<double>(fct) / static_cast<double>(ideal_fct);
  }
};

/// Unloaded completion time: one base RTT (first packet out + last ACK back,
/// store-and-forward included) plus the remaining bytes serialized at the
/// path bottleneck.  This matches the "propagation delay + serialization
/// delay" minimum the paper divides by.
sim::Time ideal_fct(const net::PathInfo& path, std::uint64_t size_bytes,
                    std::uint32_t mtu);

/// Collects completion records during a run.
class FctRecorder {
 public:
  void record(const net::FlowTx& flow, const net::PathInfo& path);
  const std::vector<FlowRecord>& records() const { return records_; }
  std::size_t count() const { return records_.size(); }

 private:
  std::vector<FlowRecord> records_;
};

/// One row of a Figure 10-13 style table: a flow-size group and the
/// percentile slowdown within it.
struct SlowdownRow {
  std::uint64_t max_size_bytes = 0;  ///< Largest flow in the group.
  double mean_size_bytes = 0.0;
  std::size_t flow_count = 0;
  double slowdown = 0.0;
};

/// Sorts records by flow size, splits them into `groups` equal-population
/// chunks, and reports the p-th percentile slowdown per chunk.
std::vector<SlowdownRow> slowdown_by_size(std::vector<FlowRecord> records,
                                          int groups, double p);

}  // namespace fastcc::stats
