#include "stats/fct.h"

#include <algorithm>
#include <cassert>

#include "stats/percentile.h"

namespace fastcc::stats {

sim::Time ideal_fct(const net::PathInfo& path, std::uint64_t size_bytes,
                    std::uint32_t mtu) {
  assert(path.bottleneck > 0.0 && size_bytes > 0);
  // Unloaded pipeline: all packets but the last stream through the
  // bottleneck while the *last* packet's store-and-forward traversal (plus
  // the final ACK's return) sets the tail.  base_rtt was computed with a
  // full-MTU packet at every hop, so swap in the true last-packet size —
  // a 1-byte tail serializes far faster than an MTU.
  const std::uint64_t full_packets = size_bytes / mtu;
  const std::uint64_t tail = size_bytes - full_packets * mtu;
  const std::uint64_t last_payload = tail > 0 ? tail : mtu;
  const std::uint64_t last_wire = last_payload + net::kHeaderBytes;
  const std::uint64_t packet_count = full_packets + (tail > 0 ? 1 : 0);
  const std::uint64_t total_wire =
      size_bytes + packet_count * net::kHeaderBytes;

  sim::Time t = path.base_rtt +
                sim::serialization_time(
                    static_cast<std::int64_t>(total_wire - last_wire),
                    path.bottleneck);
  const std::int64_t mtu_wire = mtu + net::kHeaderBytes;
  for (const sim::Rate bw : path.link_bandwidths) {
    t -= sim::serialization_time(mtu_wire, bw);
    t += sim::serialization_time(static_cast<std::int64_t>(last_wire), bw);
  }
  return t;
}

void FctRecorder::record(const net::FlowTx& flow, const net::PathInfo& path) {
  assert(flow.finished());
  FlowRecord r;
  r.id = flow.spec.id;
  r.size_bytes = flow.spec.size_bytes;
  r.start_time = flow.spec.start_time;
  r.fct = flow.finish_time - flow.spec.start_time;
  r.ideal_fct = ideal_fct(path, flow.spec.size_bytes, flow.mtu);
  records_.push_back(r);
}

std::vector<SlowdownRow> slowdown_by_size(std::vector<FlowRecord> records,
                                          int groups, double p) {
  assert(groups > 0);
  std::vector<SlowdownRow> rows;
  if (records.empty()) return rows;
  std::sort(records.begin(), records.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.size_bytes < b.size_bytes;
            });
  const std::size_t n = records.size();
  const std::size_t per_group = std::max<std::size_t>(1, n / groups);
  for (std::size_t begin = 0; begin < n; begin += per_group) {
    const std::size_t end = std::min(begin + per_group, n);
    // Fold a tiny trailing remainder into the last full group.
    const bool last = end + per_group > n;
    const std::size_t actual_end = last ? n : end;
    PercentileEstimator est;
    SlowdownRow row;
    double size_sum = 0.0;
    for (std::size_t i = begin; i < actual_end; ++i) {
      est.add(records[i].slowdown());
      row.max_size_bytes = std::max(row.max_size_bytes, records[i].size_bytes);
      size_sum += static_cast<double>(records[i].size_bytes);
    }
    row.flow_count = actual_end - begin;
    row.mean_size_bytes = size_sum / static_cast<double>(row.flow_count);
    row.slowdown = est.percentile(p);
    rows.push_back(row);
    if (last) break;
  }
  return rows;
}

}  // namespace fastcc::stats
