#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

namespace fastcc::stats {

Histogram::Histogram(double min_value, double growth, int max_buckets)
    : min_value_(min_value), growth_(growth) {
  assert(min_value > 0.0 && growth > 1.0 && max_buckets > 1);
  counts_.assign(static_cast<std::size_t>(max_buckets), 0);
}

int Histogram::bucket_of(double value) const {
  if (value < min_value_) return 0;
  const int b =
      1 + static_cast<int>(std::floor(std::log(value / min_value_) /
                                      std::log(growth_)));
  return std::min(b, static_cast<int>(counts_.size()) - 1);
}

double Histogram::lower_bound_of(int bucket) const {
  if (bucket <= 0) return 0.0;
  return min_value_ * std::pow(growth_, bucket - 1);
}

double Histogram::upper_bound_of(int bucket) const {
  if (bucket >= static_cast<int>(counts_.size()) - 1) {
    return std::max(max_seen_, lower_bound_of(bucket) * growth_);
  }
  return min_value_ * std::pow(growth_, bucket);
}

void Histogram::add(double value) {
  assert(value >= 0.0);
  if (count_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[bucket_of(value)];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  assert(count_ > 0);
  assert(p >= 0.0 && p <= 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < static_cast<int>(counts_.size()); ++b) {
    if (counts_[b] == 0) continue;
    const auto next = seen + counts_[b];
    if (static_cast<double>(next) >= target) {
      const double lo = std::max(lower_bound_of(b), min_seen_);
      const double hi = std::min(upper_bound_of(b), max_seen_);
      const double frac =
          counts_[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(counts_[b]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    seen = next;
  }
  return max_seen_;
}

std::uint64_t Histogram::count_below(double value) const {
  std::uint64_t total = 0;
  const int vb = bucket_of(value);
  for (int b = 0; b < vb; ++b) total += counts_[b];
  // Conservatively include the whole owning bucket when the value reaches
  // its upper bound.
  if (value >= upper_bound_of(vb)) total += counts_[vb];
  return total;
}

void Histogram::write_csv(std::ostream& os) const {
  os << "lower,upper,count\n";
  for (int b = 0; b < static_cast<int>(counts_.size()); ++b) {
    if (counts_[b] == 0) continue;
    os << lower_bound_of(b) << ',' << upper_bound_of(b) << ','
       << counts_[b] << '\n';
  }
}

}  // namespace fastcc::stats
