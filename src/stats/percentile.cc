#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fastcc::stats {

namespace {

/// Nearest-rank index for percentile p of n samples: ceil(p/100 * n) - 1,
/// clamped to [0, n-1].
std::size_t rank_index(std::size_t n, double p) {
  if (p <= 0.0) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return std::min(rank, n) - 1;
}

}  // namespace

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 100.0);
  // One-shot query: selection beats a full sort (O(n) vs O(n log n)).
  std::vector<double> scratch(values.begin(), values.end());
  auto nth = scratch.begin() +
             static_cast<std::ptrdiff_t>(rank_index(scratch.size(), p));
  std::nth_element(scratch.begin(), nth, scratch.end());
  return *nth;
}

void PercentileEstimator::ensure_sorted() const {
  if (!dirty_) return;
  std::sort(values_.begin(), values_.end());
  dirty_ = false;
}

double PercentileEstimator::percentile(double p) const {
  assert(!values_.empty());
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  return values_[rank_index(values_.size(), p)];
}

double PercentileEstimator::max() const {
  assert(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double PercentileEstimator::mean() const {
  assert(!values_.empty());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace fastcc::stats
