#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fastcc::stats {

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  // Nearest-rank: ceil(p/100 * n), 1-indexed.
  const auto n = sorted.size();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sorted[std::min(rank, n) - 1];
}

double PercentileEstimator::percentile(double p) const {
  return stats::percentile(values_, p);
}

double PercentileEstimator::max() const {
  assert(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double PercentileEstimator::mean() const {
  assert(!values_.empty());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace fastcc::stats
