// Log-bucketed histogram for long-tailed metrics (FCTs, slowdowns, queue
// depths).  Buckets grow geometrically, so a single histogram covers
// nanosecond RTTs through millisecond tails with bounded relative error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace fastcc::stats {

class Histogram {
 public:
  /// Buckets: [0, min), [min, min*g), [min*g, min*g^2), ...  `growth` > 1.
  explicit Histogram(double min_value = 1.0, double growth = 1.25,
                     int max_buckets = 128);

  void add(double value);

  std::uint64_t count() const { return count_; }
  double min() const { return min_seen_; }
  double max() const { return max_seen_; }
  double sum() const { return sum_; }
  double mean() const;

  /// Percentile estimated by linear interpolation within the owning bucket;
  /// exact at bucket boundaries, bounded by the bucket's relative width
  /// otherwise.  `p` in [0, 100].  Precondition: count() > 0.
  double percentile(double p) const;

  /// Number of samples at or below `value`.
  std::uint64_t count_below(double value) const;

  /// Writes "lower,upper,count" CSV rows for non-empty buckets.
  void write_csv(std::ostream& os) const;

  int bucket_count() const { return static_cast<int>(counts_.size()); }

 private:
  int bucket_of(double value) const;
  double lower_bound_of(int bucket) const;
  double upper_bound_of(int bucket) const;

  double min_value_;
  double growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace fastcc::stats
