// Lightweight (time, value) series with CSV emission, used for the paper's
// Jain-index-over-time and queue-depth-over-time figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace fastcc::stats {

struct TimePoint {
  sim::Time t = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string label) : label_(std::move(label)) {}

  void add(sim::Time t, double value) { points_.push_back({t, value}); }
  const std::vector<TimePoint>& points() const { return points_; }
  const std::string& label() const { return label_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double max_value() const;
  double min_value() const;
  /// Mean of values with t >= from (steady-state summaries).
  double mean_after(sim::Time from) const;
  /// First time the series reaches `threshold` and never drops below it
  /// again (convergence detection); returns -1 if it never settles.
  sim::Time settle_time(double threshold) const;

 private:
  std::string label_;
  std::vector<TimePoint> points_;
};

/// Writes aligned multi-series CSV: time column plus one column per series.
/// Series are sampled on identical clocks in our experiments; rows are
/// emitted per distinct timestamp of the first series.
void write_csv(std::ostream& os, const std::vector<const TimeSeries*>& series,
               const std::string& time_unit_divisor_label = "time_us",
               double time_divisor = 1000.0);

}  // namespace fastcc::stats
