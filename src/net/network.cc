#include "net/network.h"

#include <cassert>
#include <deque>
#include <limits>

namespace fastcc::net {

Network::Network(sim::Simulator& simulator, std::uint64_t seed)
    : sim_(simulator), rng_(seed) {}

Host* Network::add_host(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(sim_, id, name);
  host->set_packet_pool(&pool_);
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  hosts_.push_back(raw);
  return raw;
}

SwitchNode* Network::add_switch(const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<SwitchNode>(sim_, id, name);
  sw->set_packet_pool(&pool_);
  SwitchNode* raw = sw.get();
  nodes_.push_back(std::move(sw));
  switches_.push_back(raw);
  return raw;
}

void Network::connect(Node& a, Node& b, sim::Rate bandwidth,
                      sim::Time prop_delay) {
  assert(!routes_built_ && "topology is frozen after build_routes()");
  const int pa = a.add_port();
  const int pb = b.add_port();
  a.port(pa).connect(&b, pb, bandwidth, prop_delay);
  b.port(pb).connect(&a, pa, bandwidth, prop_delay);
  a.port(pa).set_rng(&rng_);
  b.port(pb).set_rng(&rng_);
}

std::vector<int> Network::hop_distances(NodeId dst) const {
  std::vector<int> dist(nodes_.size(), std::numeric_limits<int>::max());
  std::deque<NodeId> frontier{dst};
  dist[dst] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    const Node& n = *nodes_[cur];
    for (int i = 0; i < n.port_count(); ++i) {
      if (!n.port(i).connected()) continue;
      const NodeId nb = n.port(i).peer()->id();
      if (dist[nb] > dist[cur] + 1) {
        dist[nb] = dist[cur] + 1;
        frontier.push_back(nb);
      }
    }
  }
  return dist;
}

void Network::build_routes() {
  for (Host* dst : hosts_) {
    const std::vector<int> dist = hop_distances(dst->id());
    for (SwitchNode* sw : switches_) {
      if (dist[sw->id()] == std::numeric_limits<int>::max()) continue;
      std::vector<int> candidates;
      for (int i = 0; i < sw->port_count(); ++i) {
        if (!sw->port(i).connected()) continue;
        const NodeId nb = sw->port(i).peer()->id();
        if (dist[nb] == dist[sw->id()] - 1) candidates.push_back(i);
      }
      if (!candidates.empty()) sw->set_routes(dst->id(), std::move(candidates));
    }
  }
  routes_built_ = true;
}

PathInfo Network::path(NodeId src, NodeId dst, std::uint32_t mtu) const {
  assert(src < nodes_.size() && dst < nodes_.size());
  PathInfo info;
  if (src == dst) return info;
  const std::vector<int> dist = hop_distances(dst);
  assert(dist[src] != std::numeric_limits<int>::max() && "no path");
  info.hops = dist[src];
  info.bottleneck = std::numeric_limits<sim::Rate>::max();

  // Walk one shortest path; the topologies here are bandwidth-symmetric
  // across equal-cost paths, so any shortest path yields the same metrics.
  NodeId cur = src;
  while (cur != dst) {
    const Node& n = *nodes_[cur];
    const Port* next = nullptr;
    for (int i = 0; i < n.port_count(); ++i) {
      if (!n.port(i).connected()) continue;
      if (dist[n.port(i).peer()->id()] == dist[cur] - 1) {
        next = &n.port(i);
        break;
      }
    }
    assert(next != nullptr);
    info.one_way_delay += next->propagation_delay() +
                          sim::serialization_time(mtu + kHeaderBytes,
                                                  next->bandwidth());
    info.base_rtt += 2 * next->propagation_delay() +
                     sim::serialization_time(mtu + kHeaderBytes,
                                             next->bandwidth()) +
                     sim::serialization_time(kAckBytes, next->bandwidth());
    info.bottleneck = std::min(info.bottleneck, next->bandwidth());
    info.link_bandwidths.push_back(next->bandwidth());
    cur = next->peer()->id();
  }
  return info;
}

void Network::set_red_all(const RedParams& red) {
  for (SwitchNode* sw : switches_) {
    for (int i = 0; i < sw->port_count(); ++i) sw->port(i).set_red(red);
  }
}

void Network::set_pfc_all(const PfcParams& pfc) {
  for (SwitchNode* sw : switches_) sw->set_pfc(pfc);
}

void Network::set_buffer_limit_all(std::uint64_t bytes) {
  for (SwitchNode* sw : switches_) {
    for (int i = 0; i < sw->port_count(); ++i)
      sw->port(i).set_buffer_limit(bytes);
  }
}

std::uint64_t Network::total_drops() const {
  std::uint64_t drops = 0;
  for (const auto& n : nodes_) {
    for (int i = 0; i < n->port_count(); ++i) drops += n->port(i).drops();
  }
  return drops;
}

}  // namespace fastcc::net
