// Space-parallel sharding: mailboxes and routing for pod-sharded execution.
//
// A sharded run partitions one fat-tree simulation into P logical shards
// (one per pod; spines distributed round-robin), each with its own
// Simulator, PacketPool, and Rng.  Everything inside a shard runs exactly
// as in the serial simulator; only packets crossing a pod boundary leave
// their shard, and they do so through the types in this header:
//
//   Port/Node (egress)  --deposit-->  ShardRouter  --put-->  ShardMailboxes
//                                                               |
//   destination shard  <--take_ready--  publish() at the epoch barrier
//
// Determinism contract: within an epoch each (src, dst) mailbox cell is
// written by exactly one worker (the one running src's shard) in that
// shard's deterministic event order, and stamped with a per-(src, dst)
// transfer sequence number.  The destination drains cells in ascending
// src-shard order and delivers in (arrival time, src shard, seq) order, so
// results are byte-identical for any worker count — the logical partition
// is fixed by the topology, not by the thread schedule.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"
#include "util/contracts.h"

namespace fastcc::net {

/// Node -> shard assignment for a sharded run.  Built once from the
/// topology (see topo::pod_shard_map) and read-only afterwards, so every
/// worker may consult it concurrently.
struct ShardMap {
  FASTCC_SHARD_SHARED_RO std::vector<std::int32_t> shard;  ///< By NodeId.
  int count = 1;                    ///< Number of shards (== pods).

  int of(NodeId id) const {
    assert(id < shard.size());
    return shard[id];
  }
};

/// Ordered-pair lookahead matrix for conservative synchronization.
///
/// between(s, d) is the minimum latency any influence originating in shard
/// s needs to reach shard d — seeded with the minimum propagation delay
/// over the *direct* boundary links s -> d (observe_link) and closed under
/// path composition by seal() (Floyd-Warshall over the shard graph), so it
/// is a sound bound even for shards connected only through intermediaries.
/// kUnreachable marks pairs no chain of links connects.
///
/// The closure matters for safety, not just precision: the epoch planner
/// advances shard d's horizon to min over s of (earliest-work(s) +
/// between(s, d)).  Without the closure a shard with no *direct* inbound
/// link would see no constraint at all and run arbitrarily far ahead of a
/// two-hop influence.  With it, between() satisfies the triangle
/// inequality by construction, which is exactly the induction the
/// conservative-PDES argument needs (DESIGN.md §9.5).
///
/// Built once from the shard map during (serial) setup, read-only during
/// the run.
class ShardLookahead {
 public:
  static constexpr sim::Time kUnreachable = sim::kMaxTime;

  explicit ShardLookahead(int shards)
      : shards_(shards),
        delay_(static_cast<std::size_t>(shards) * shards, kUnreachable) {
    assert(shards >= 1);
    for (int s = 0; s < shards; ++s) delay_[index(s, s)] = 0;
  }

  /// Min-folds one boundary link's propagation delay into the (src, dst)
  /// entry.  Call once per boundary egress port during setup.
  void observe_link(int src, int dst, sim::Time delay) {
    assert(delay > 0 && "conservative sync needs nonzero boundary latency");
    sim::Time& cell = delay_[index(src, dst)];
    cell = std::min(cell, delay);
  }

  /// Closes the matrix under path composition (all-pairs shortest paths).
  /// Must run after the last observe_link and before the first between().
  void seal() {
    for (int via = 0; via < shards_; ++via) {
      for (int s = 0; s < shards_; ++s) {
        const sim::Time first = delay_[index(s, via)];
        if (first == kUnreachable) continue;
        for (int d = 0; d < shards_; ++d) {
          const sim::Time second = delay_[index(via, d)];
          if (second == kUnreachable) continue;
          sim::Time& cell = delay_[index(s, d)];
          cell = std::min(cell, first + second);
        }
      }
    }
    sealed_ = true;
  }

  /// Minimum latency from shard src to shard dst (0 on the diagonal,
  /// kUnreachable when no path of links connects the pair).
  sim::Time between(int src, int dst) const {
    assert(sealed_ && "seal() the matrix before querying it");
    return delay_[index(src, dst)];
  }

  /// Smallest / largest finite off-diagonal entry (observability; both 0
  /// when the matrix has a single shard and therefore no pairs).
  sim::Time min_window() const { return fold_windows().first; }
  sim::Time max_window() const { return fold_windows().second; }

  int shards() const { return shards_; }

 private:
  std::size_t index(int src, int dst) const {
    assert(src >= 0 && src < shards_ && dst >= 0 && dst < shards_);
    return static_cast<std::size_t>(src) * shards_ + dst;
  }

  std::pair<sim::Time, sim::Time> fold_windows() const {
    assert(sealed_);
    sim::Time lo = 0;
    sim::Time hi = 0;
    bool any = false;
    for (int s = 0; s < shards_; ++s) {
      for (int d = 0; d < shards_; ++d) {
        if (s == d || delay_[index(s, d)] == kUnreachable) continue;
        const sim::Time w = delay_[index(s, d)];
        lo = any ? std::min(lo, w) : w;
        hi = any ? std::max(hi, w) : w;
        any = true;
      }
    }
    return {lo, hi};
  }

  int shards_;
  bool sealed_ = false;
  FASTCC_SHARD_SHARED_RO std::vector<sim::Time> delay_;  ///< Row-major.
};

/// A packet serialized out of its source shard's pool, in flight between
/// shards.  Carries everything the destination needs to re-materialize and
/// deliver it: the bytes, the arrival instant (already includes the
/// boundary link's serialization + propagation time), and the ingress
/// (node, port) on the destination side.
struct CrossShardPacket {
  Packet pkt;
  sim::Time arrival = 0;
  NodeId dst_node = kInvalidNode;
  int dst_port = -1;
  int src_shard = -1;
  std::uint64_t seq = 0;  ///< Per-(src, dst) shard-pair transfer counter.
};

/// Abstract destination for packets leaving a shard.  Port::start_tx and
/// Node::send_pfc call deposit() instead of scheduling a local delivery
/// when the egress port is marked as a shard boundary.  The packet must
/// already be out of the source pool (export_release) — deposit() takes the
/// bytes by value, never a handle.
class CrossShardSink {
 public:
  virtual ~CrossShardSink() = default;

  /// Accepts one boundary-crossing packet.  `arrival` is the absolute
  /// simulated time the packet reaches `dst_node` on its `dst_port`.
  FASTCC_XSHARD_SINK virtual void deposit(Packet&& pkt, sim::Time arrival,
                                          NodeId dst_node, int dst_port) = 0;
};

/// P x P matrix of single-writer mailboxes with epoch-barrier publication.
///
/// Threading protocol (the whole reason this class is safe without locks):
///   * During an epoch, cell (s, d) of `pending_` is written only by the
///     worker running shard s.  No one reads it.
///   * publish() runs single-threaded inside the barrier completion step;
///     it moves every pending cell into `ready_`.
///   * During the next epoch, cell (s, d) of `ready_` is read only by the
///     worker running shard d.  No one writes it.
/// The epoch barrier's acquire/release ordering makes each hand-off visible.
///
/// fastcc-shardsafe enforces the protocol statically: the class is the typed
/// FASTCC_XSHARD_CHANNEL, its deposit/drain methods are worker-phase
/// (FASTCC_SHARD_LOCAL) and its publish side is barrier-phase
/// (FASTCC_EPOCH_PUBLISH); the two places where one side legitimately
/// touches the other side's cells carry reasoned allows below.
class FASTCC_XSHARD_CHANNEL ShardMailboxes {
 public:
  explicit ShardMailboxes(int shards)
      : shards_(shards),
        pending_(static_cast<std::size_t>(shards) * shards),
        ready_(static_cast<std::size_t>(shards) * shards),
        ready_release_(static_cast<std::size_t>(shards) * shards,
                       sim::kMaxTime),
        seq_(static_cast<std::size_t>(shards) * shards, 0) {
    assert(shards >= 1);
  }

  /// Appends a transfer to the (src, dst) pending cell and stamps its
  /// sequence number.  Caller must be the worker running shard `src`.
  FASTCC_SHARD_LOCAL void put(int src, int dst, CrossShardPacket&& rec) {
    auto& c = cell(pending_, src, dst);
    rec.src_shard = src;
    rec.seq = seq_[index(src, dst)]++;
    c.push_back(std::move(rec));
  }

  /// Moves every pending cell into the ready side and folds each record's
  /// arrival into the cell's release horizon.  Must run while all workers
  /// are parked at the epoch barrier (single-threaded).
  FASTCC_EPOCH_PUBLISH void publish() {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].empty()) continue;
      auto& r = ready_[i];
      for (auto& rec : pending_[i]) {
        ready_release_[i] = std::min(ready_release_[i], rec.arrival);
        r.push_back(std::move(rec));
      }
      // The publish step is the ownership handoff point: all workers are
      // parked, so draining the worker-side cell here cannot race.
      // lint:allow(epoch-phase-write -- barrier step drains worker cells while all workers are parked)
      pending_[i].clear();
    }
  }

  /// Drains everything published for shard `dst` into `out` (appended in
  /// ascending src-shard order; each cell is already seq-ordered).  Caller
  /// must be the worker running shard `dst`.
  FASTCC_SHARD_LOCAL void take_ready(int dst, std::vector<CrossShardPacket>& out) {
    for (int src = 0; src < shards_; ++src) {
      auto& c = cell(ready_, src, dst);
      for (auto& rec : c) out.push_back(std::move(rec));
      // Single-reader drain: only shard dst's worker touches column (*, dst)
      // of the ready side, and only after the publishing barrier.
      // lint:allow(epoch-phase-write -- reader-owned column drain after the publish barrier)
      c.clear();
      // The drained cell holds nothing, so its release horizon resets; the
      // next publish() re-derives it from whatever lands later.
      // lint:allow(epoch-phase-write -- reader-owned release-horizon reset travels with the column drain)
      ready_release_[index(src, dst)] = sim::kMaxTime;
    }
  }

  /// Release horizon of the (src, dst) ready cell: the earliest arrival
  /// among its published-but-undrained transfers, sim::kMaxTime when the
  /// cell is empty.  This is what lets an idle destination *skip* an epoch
  /// without draining: retained records stay exactly as published, and the
  /// planner consults the horizon instead of the records.
  FASTCC_EPOCH_PUBLISH sim::Time ready_release(int src, int dst) const {
    return ready_release_[index(src, dst)];
  }

  /// Earliest published-but-undrained arrival destined for `dst` over every
  /// source (the destination's inbound release horizon); sim::kMaxTime when
  /// nothing is in flight toward it.  Barrier phase: the epoch planner
  /// reads it to size horizons and pick the active set.
  FASTCC_EPOCH_PUBLISH sim::Time earliest_ready(int dst) const {
    sim::Time earliest = sim::kMaxTime;
    for (int src = 0; src < shards_; ++src) {
      earliest = std::min(earliest, ready_release_[index(src, dst)]);
    }
    return earliest;
  }

  /// True when no transfer is pending or published anywhere.  Part of the
  /// termination condition; must run at the barrier (single-threaded).
  FASTCC_EPOCH_PUBLISH bool all_empty() const {
    for (const auto& c : pending_)
      if (!c.empty()) return false;
    for (const auto& c : ready_)
      if (!c.empty()) return false;
    return true;
  }

  /// Total transfers ever deposited, over all shard pairs (stats).
  std::uint64_t total_transfers() const {
    std::uint64_t n = 0;
    for (const std::uint64_t s : seq_) n += s;
    return n;
  }

  int shards() const { return shards_; }

 private:
  using Cell = std::vector<CrossShardPacket>;

  std::size_t index(int src, int dst) const {
    assert(src >= 0 && src < shards_ && dst >= 0 && dst < shards_);
    return static_cast<std::size_t>(src) * shards_ + dst;
  }
  Cell& cell(std::vector<Cell>& side, int src, int dst) {
    return side[index(src, dst)];
  }

  int shards_;
  FASTCC_SHARD_LOCAL std::vector<Cell> pending_;   ///< Writer-side cells.
  FASTCC_EPOCH_PUBLISH std::vector<Cell> ready_;   ///< Published cells.
  /// Per-cell earliest arrival on the ready side (kMaxTime = empty cell).
  /// Folded by publish(), reset by the owning reader's take_ready().
  FASTCC_EPOCH_PUBLISH std::vector<sim::Time> ready_release_;
  FASTCC_SHARD_LOCAL std::vector<std::uint64_t> seq_;
};

/// The per-source-shard CrossShardSink: looks up the destination's shard in
/// the ShardMap and appends to the matching mailbox cell.  One router per
/// shard; every boundary egress port of that shard points at it, so all
/// writes funnel through the single thread that owns the shard.
class ShardRouter final : public CrossShardSink {
 public:
  ShardRouter(ShardMailboxes* mailboxes, const ShardMap* map, int src_shard)
      : mailboxes_(mailboxes), map_(map), src_shard_(src_shard) {}

  FASTCC_XSHARD_SINK void deposit(Packet&& pkt, sim::Time arrival,
                                  NodeId dst_node, int dst_port) override {
    const int dst_shard = map_->of(dst_node);
    assert(dst_shard != src_shard_ &&
           "cross-shard sink invoked for an intra-shard link");
    CrossShardPacket rec;
    rec.pkt = std::move(pkt);
    rec.arrival = arrival;
    rec.dst_node = dst_node;
    rec.dst_port = dst_port;
    mailboxes_->put(src_shard_, dst_shard, std::move(rec));
  }

 private:
  ShardMailboxes* mailboxes_;
  FASTCC_SHARD_SHARED_RO const ShardMap* map_;
  int src_shard_;
};

}  // namespace fastcc::net
