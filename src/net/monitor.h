// Periodic network monitors: queue-depth and link-utilization sampling.
//
// Experiments attach monitors to ports of interest; each monitor re-arms
// itself on the simulator until stopped (or until its stop predicate fires),
// accumulating a TimeSeries that the stats/bench layers consume.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/port.h"
#include "sim/simulator.h"
#include "util/contracts.h"
#include "sim/timing_wheel.h"
#include "stats/timeseries.h"

namespace fastcc::net {

/// Samples the data backlog of one egress port on a fixed interval.
class QueueMonitor {
 public:
  /// `keep_running` is consulted each sample; returning false stops the
  /// monitor (and no further events are scheduled).
  QueueMonitor(sim::Simulator& simulator, const Port& port,
               sim::Time interval, std::string label,
               std::function<bool()> keep_running = nullptr);

  void start();
  const stats::TimeSeries& series() const { return series_; }

  /// Routes the periodic re-arm through a node's timing wheel (usually the
  /// monitored port's owner), keeping the sampler off the global event
  /// queue.  Call before start().
  void ride_wheel(sim::WheelScheduler* wheel) { wheel_ = wheel; }

 private:
  void sample();
  void arm_next();

  sim::Simulator& sim_;
  const Port& port_;
  sim::Time interval_;
  stats::TimeSeries series_;
  std::function<bool()> keep_running_;
  sim::WheelScheduler* wheel_ = nullptr;
};

/// Samples the delivered throughput (bytes/ns) of one egress port per
/// interval, from the port's cumulative tx counter.
class UtilizationMonitor {
 public:
  UtilizationMonitor(sim::Simulator& simulator, const Port& port,
                     sim::Time interval, std::string label,
                     std::function<bool()> keep_running = nullptr);

  void start();
  /// Fraction of link capacity used per interval, in [0, ~1].
  const stats::TimeSeries& series() const { return series_; }
  /// Mean utilization across all samples so far.
  FASTCC_DIMENSIONLESS double mean_utilization() const;

  /// See QueueMonitor::ride_wheel.
  void ride_wheel(sim::WheelScheduler* wheel) { wheel_ = wheel; }

 private:
  void sample();
  void arm_next();

  sim::Simulator& sim_;
  const Port& port_;
  sim::Time interval_;
  stats::TimeSeries series_;
  std::function<bool()> keep_running_;
  sim::WheelScheduler* wheel_ = nullptr;
  /// Serialized-by-last-sample bytes (tx counter minus the in-flight burst
  /// remainder) — fractional because the remainder is analytic.
  FASTCC_UNIT_BYTES double last_tx_bytes_ = 0.0;
};

}  // namespace fastcc::net
