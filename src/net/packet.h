// Packet model for the fastcc network substrate.
//
// Data packets accumulate one In-band Network Telemetry (INT) record per
// traversed link; receivers echo the full record stack back on per-packet
// ACKs, which is exactly the information HPCC consumes.  RTT-based protocols
// (Swift) use the echoed host timestamp; ECN-based protocols (DCQCN) use the
// echoed congestion-experienced bit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/time.h"
#include "util/contracts.h"

namespace fastcc::net {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Maximum number of links a packet can traverse (fat-tree worst case is 6:
/// host->ToR->Agg->Spine->Agg->ToR->host).
inline constexpr int kMaxHops = 8;

/// Wire overhead added to every data payload (Ethernet + IP + transport).
inline constexpr std::uint32_t kHeaderBytes = 48;
/// On-wire size of an ACK / control packet.
inline constexpr std::uint32_t kAckBytes = 64;
/// Default maximum payload per packet (the paper's MTU).
inline constexpr std::uint32_t kDefaultMtu = 1000;

enum class PacketType : std::uint8_t {
  kData,
  kAck,
  kPfcPause,
  kPfcResume,
};

/// One INT record, stamped by the egress port of each traversed link.
struct IntRecord {
  sim::Time timestamp = 0;      ///< Time the packet began transmission.
  /// Cumulative bytes sent on the link.
  FASTCC_UNIT_BYTES std::uint64_t tx_bytes = 0;
  /// Egress queue backlog left behind.
  FASTCC_UNIT_BYTES std::uint32_t qlen_bytes = 0;
  sim::Rate bandwidth = 0.0;    ///< Link capacity, bytes/ns.
};

struct Packet {
  // Field order is a deliberate data layout (DESIGN.md §11): every field a
  // switch hop touches — type, addressing, sizes, PFC/ingress bookkeeping,
  // the batch chain link, and the INT cursor — packs into the first 64 bytes,
  // ahead of the 256-byte INT stack.  With per-hop fields trailing the array
  // instead, each hop of each packet dragged a second cache line through the
  // core for a one-byte cursor bump and a 4-byte ingress-port store.
  PacketType type = PacketType::kData;
  std::uint8_t int_count = 0;  ///< Populated prefix of `ints`.
  bool ecn = false;       ///< Congestion-experienced mark (set by RED).
  bool cnp = false;       ///< DCQCN congestion-notification flag on ACKs.
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FASTCC_UNIT_BYTES std::uint32_t payload_bytes = 0;
  FASTCC_UNIT_BYTES std::uint32_t wire_bytes = 0;

  /// PFC pause/resume: the port on the *receiving* node whose transmitter
  /// must pause (single priority class).
  std::int32_t pfc_port = -1;

  /// Ingress port at the node currently holding the packet (PFC accounting).
  std::int32_t ingress_port = -1;

  /// Intra-burst delivery chain: the PacketRef bits of the next packet in
  /// the same bulk-drain burst (Port chains back-to-back transmissions to a
  /// coalescing peer into one deliver_batch event).  0xffffffff (an invalid
  /// PacketRef) terminates the chain; the field lives here rather than in a
  /// side vector so batching allocates nothing in steady state.
  std::uint32_t batch_next = 0xffffffffu;

  /// First payload byte offset for data; cumulative-ack offset for ACKs.
  std::uint64_t seq = 0;

  sim::Time host_ts = 0;  ///< Sender timestamp; echoed on the ACK.
  sim::Time ack_ts = 0;   ///< Receiver timestamp when the ACK was generated
                          ///< (0 on data packets); enables one-way/remote
                          ///< delay decomposition at the sender.

  /// INT stack (data: accumulated per hop; ACK: echoed copy).
  std::array<IntRecord, kMaxHops> ints{};

  static_assert(sizeof(IntRecord) == 32, "IntRecord layout drifted");

  void push_int(const IntRecord& rec) {
    if (int_count < kMaxHops) ints[int_count++] = rec;
  }

  bool is_control() const { return type != PacketType::kData; }

  /// Resets every header field to its default without touching the INT
  /// array: records at index >= int_count are never read, so a recycled
  /// pool slot skips the 256-byte wipe.  PacketPool::alloc calls this.
  void reset_header() {
    type = PacketType::kData;
    flow = 0;
    src = kInvalidNode;
    dst = kInvalidNode;
    seq = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    ecn = false;
    cnp = false;
    host_ts = 0;
    ack_ts = 0;
    int_count = 0;
    pfc_port = -1;
    ingress_port = -1;
    batch_next = 0xffffffffu;
  }
};

static_assert(offsetof(Packet, ints) == 64,
              "per-hop header must fill exactly one cache line ahead of the "
              "INT stack (see the field-order comment)");

/// Fills a freshly reset pool packet in place as a data packet for `flow`
/// covering [seq, seq+payload).  Zero-copy counterpart of make_data.
inline void init_data(Packet& p, FlowId flow, NodeId src, NodeId dst,
                      std::uint64_t seq, std::uint32_t payload, sim::Time now) {
  p.type = PacketType::kData;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.payload_bytes = payload;
  p.wire_bytes = payload + kHeaderBytes;
  p.host_ts = now;
}

/// Fills a freshly reset pool packet in place as the ACK for a received data
/// packet (reverse direction), stamped with the receiver's generation time
/// `now`.  Echoes only the populated INT records — the rest of the stack is
/// never read.  Zero-copy counterpart of make_ack.
inline void init_ack(Packet& a, const Packet& data, sim::Time now) {
  a.type = PacketType::kAck;
  a.flow = data.flow;
  a.src = data.dst;
  a.dst = data.src;
  a.seq = data.seq + data.payload_bytes;  // cumulative ack
  a.payload_bytes = 0;
  a.wire_bytes = kAckBytes;
  a.ecn = data.ecn;
  a.host_ts = data.host_ts;  // echo for RTT measurement
  a.ack_ts = now;
  for (std::uint8_t i = 0; i < data.int_count; ++i) a.ints[i] = data.ints[i];
  a.int_count = data.int_count;
}

/// Builds a data packet for `flow` covering [seq, seq+payload).  Convenience
/// for tests and standalone tools; the hot path uses init_data on a pool
/// slot instead.
inline Packet make_data(FlowId flow, NodeId src, NodeId dst, std::uint64_t seq,
                        std::uint32_t payload, sim::Time now) {
  Packet p;
  init_data(p, flow, src, dst, seq, payload, now);
  return p;
}

/// Builds the ACK for a received data packet (reverse direction), stamped
/// with the receiver's generation time `now`.  Convenience for tests; the
/// hot path uses init_ack on a pool slot instead.
inline Packet make_ack(const Packet& data, sim::Time now) {
  Packet a;
  init_ack(a, data, now);
  return a;
}

}  // namespace fastcc::net
