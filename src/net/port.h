// Port: one egress direction of a (bidirectional) link.
//
// A port owns a two-level strict-priority egress queue (control/ACK above
// data), a transmitter that serializes one packet at a time at the link rate,
// RED/ECN marking, INT stamping, and a PFC pause flag that freezes the
// transmitter.  Ports always come in pairs: `peer_port` on the peer node is
// the reverse direction of the same cable, which is what PFC pause frames
// address.
//
// Zero-copy pipeline: queues hold 4-byte PacketRef handles into the shared
// PacketPool, and each transmitted packet costs a single scheduled event —
// the peer's delivery at tx_time + prop_delay — with the next dequeue driven
// by a self-scheduled kick at tx_time only when a backlog exists.
//
// Bulk drain (DESIGN.md §11): while a backlog exists, one transmitter event
// commits up to kMaxBurstPackets back-to-back serializations with a single
// wire-clock update per burst.  Control packets always burst (FIFO within
// the strict-priority class, so ordering and per-packet arrival instants are
// unchanged); data packets extend a burst only toward a peer that coalesces
// deliveries (hosts), keeping switch-to-switch strict-priority preemption
// exact at packet granularity.  Chained packets to a coalescing peer share
// one deliver_batch event at the last arrival instant.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/contracts.h"

namespace fastcc::net {

class Node;
class CrossShardSink;

/// Upper bound on back-to-back transmissions committed per bulk-drain event
/// (and thus on the length of a deliver_batch chain).  Small enough that a
/// committed burst delays a preempting control packet — or a PFC pause — by
/// well under a microsecond at datacenter link rates.
inline constexpr int kMaxBurstPackets = 8;

/// Random Early Detection marking parameters (DCQCN's congestion signal).
struct RedParams {
  bool enabled = false;
  std::uint32_t kmin_bytes = 0;   ///< Below: never mark.
  std::uint32_t kmax_bytes = 0;   ///< Above: always mark.
  double pmax = 0.01;             ///< Mark probability at kmax.
};

class Port {
 public:
  Port(sim::Simulator& simulator, Node* owner, int index);

  /// Wires this port to its destination. `peer_port` is the index of the
  /// reverse-direction port on `peer`.
  void connect(Node* peer, int peer_port, sim::Rate bandwidth,
               sim::Time propagation_delay);

  /// Accepts a pool packet from the owning node for transmission.  Applies
  /// RED marking and buffer accounting, then kicks the transmitter.  On a
  /// tail drop the packet's PFC ingress accounting is released and the
  /// handle returned to the pool.
  FASTCC_SHARD_LOCAL void enqueue(FASTCC_CONSUMES PacketRef ref);

  /// Convenience overload (tests, standalone tools): copies the packet into
  /// a fresh pool slot, then enqueues the handle.
  void enqueue(Packet&& p);

  /// PFC: freezes/unfreezes the transmitter.  An in-flight serialization
  /// always completes (PFC pauses at packet boundaries).
  void set_paused(bool paused);
  bool paused() const { return paused_; }

  void set_red(const RedParams& red) { red_ = red; }
  void set_rng(sim::Rng* rng) { rng_ = rng; }
  void set_packet_pool(PacketPool* pool) { pool_ = pool; }

  /// Marks this port as a shard-boundary egress: instead of scheduling the
  /// peer's delivery on the local event queue, transmitted packets are
  /// serialized out of this shard's pool into `sink` (a per-shard mailbox
  /// router).  Null (the default) restores direct delivery.
  void set_cross_shard_sink(CrossShardSink* sink) { xshard_ = sink; }
  CrossShardSink* cross_shard_sink() const { return xshard_; }

  /// Re-homes the transmitter onto a shard's simulator (see
  /// Node::rebind_shard).  Legal only before the first run.
  void rebind_simulator(sim::Simulator& simulator) {
    assert(!kick_armed_ && "rebind with a dequeue kick outstanding");
    sim_ = &simulator;
  }

  /// Total buffered bytes (both priorities).
  FASTCC_UNIT_BYTES std::uint64_t queue_bytes() const { return queued_bytes_; }
  /// Buffered bytes of data packets only — the quantity INT reports.
  FASTCC_UNIT_BYTES std::uint64_t data_queue_bytes() const {
    return data_queued_bytes_;
  }
  FASTCC_UNIT_BYTES std::uint64_t max_queue_bytes() const {
    return max_queued_bytes_;
  }
  FASTCC_UNIT_BYTES std::uint64_t tx_bytes_total() const { return tx_bytes_; }
  /// Bytes of committed transmissions not yet on the wire at `now`.  The
  /// bulk drain books a whole burst's tx_bytes at its commit event, but the
  /// wire stays continuously busy from that instant to wire_free_time_, so
  /// the unserialized remainder is exactly the residual busy time at line
  /// rate.  Samplers (UtilizationMonitor) subtract this so a window never
  /// reads above link capacity.
  FASTCC_UNIT_BYTES double unserialized_tx_bytes(sim::Time now) const {
    return now >= wire_free_time_
               ? 0.0
               : static_cast<double>(wire_free_time_ - now) * bandwidth_;
  }
  std::uint64_t drops() const { return drops_; }

  /// Hard buffer cap; packets beyond it are dropped (experiments run with
  /// PFC or generous buffers so this should stay untouched — drops() lets
  /// tests assert that).
  void set_buffer_limit(FASTCC_UNIT_BYTES std::uint64_t bytes) {
    buffer_limit_ = bytes;
  }

  sim::Rate bandwidth() const { return bandwidth_; }
  sim::Time propagation_delay() const { return prop_delay_; }
  Node* peer() const { return peer_; }
  int peer_port() const { return peer_port_; }
  int index() const { return index_; }
  bool connected() const { return peer_ != nullptr; }

  /// Clears max-queue statistics (between experiment phases).
  void reset_stats() { max_queued_bytes_ = queued_bytes_; }

 private:
  void maybe_start_tx();
  void start_tx();
  void arm_kick();

  sim::Simulator* sim_;  ///< Never null; a pointer only for shard rebinding.
  Node* owner_;
  int index_;

  Node* peer_ = nullptr;
  int peer_port_ = -1;
  /// Cached peer->coalesces_deliveries(): the peer's type is fixed at
  /// connect(), so the transmitter never pays the virtual call per burst.
  bool peer_coalesces_ = false;
  sim::Rate bandwidth_ = 0.0;
  sim::Time prop_delay_ = 0;

  FASTCC_SHARD_LOCAL PacketPool* pool_ = nullptr;
  FASTCC_SHARD_LOCAL PacketRing high_q_;  // control / ACK
  FASTCC_SHARD_LOCAL PacketRing low_q_;   // data
  FASTCC_SHARD_LOCAL FASTCC_UNIT_BYTES std::uint64_t queued_bytes_ = 0;
  FASTCC_SHARD_LOCAL FASTCC_UNIT_BYTES std::uint64_t data_queued_bytes_ = 0;
  FASTCC_UNIT_BYTES std::uint64_t max_queued_bytes_ = 0;
  FASTCC_UNIT_BYTES std::uint64_t buffer_limit_ = UINT64_MAX;
  FASTCC_UNIT_BYTES std::uint64_t tx_bytes_ = 0;
  std::uint64_t drops_ = 0;

  /// The wire is serializing until this instant; a new transmission may
  /// start at any now >= wire_free_time_.
  sim::Time wire_free_time_ = 0;
  // Memo for start_tx's serialization-time lookup (size -> time at the
  // port's fixed bandwidth); wire sizes repeat heavily per port.
  std::uint32_t last_ser_bytes_ = 0;
  sim::Time last_ser_time_ = 0;
  /// A dequeue kick is already scheduled (at most one outstanding).
  bool kick_armed_ = false;
  bool paused_ = false;

  RedParams red_;
  sim::Rng* rng_ = nullptr;
  CrossShardSink* xshard_ = nullptr;
};

}  // namespace fastcc::net
