// Port: one egress direction of a (bidirectional) link.
//
// A port owns a two-level strict-priority egress queue (control/ACK above
// data), a transmitter that serializes one packet at a time at the link rate,
// RED/ECN marking, INT stamping, and a PFC pause flag that freezes the
// transmitter.  Ports always come in pairs: `peer_port` on the peer node is
// the reverse direction of the same cable, which is what PFC pause frames
// address.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace fastcc::net {

class Node;

/// Random Early Detection marking parameters (DCQCN's congestion signal).
struct RedParams {
  bool enabled = false;
  std::uint32_t kmin_bytes = 0;   ///< Below: never mark.
  std::uint32_t kmax_bytes = 0;   ///< Above: always mark.
  double pmax = 0.01;             ///< Mark probability at kmax.
};

class Port {
 public:
  Port(sim::Simulator& simulator, Node* owner, int index);

  /// Wires this port to its destination. `peer_port` is the index of the
  /// reverse-direction port on `peer`.
  void connect(Node* peer, int peer_port, sim::Rate bandwidth,
               sim::Time propagation_delay);

  /// Accepts a packet from the owning node for transmission.  Applies RED
  /// marking and buffer accounting, then kicks the transmitter.
  void enqueue(Packet&& p);

  /// PFC: freezes/unfreezes the transmitter.  An in-flight serialization
  /// always completes (PFC pauses at packet boundaries).
  void set_paused(bool paused);
  bool paused() const { return paused_; }

  void set_red(const RedParams& red) { red_ = red; }
  void set_rng(sim::Rng* rng) { rng_ = rng; }

  /// Total buffered bytes (both priorities).
  std::uint64_t queue_bytes() const { return queued_bytes_; }
  /// Buffered bytes of data packets only — the quantity INT reports.
  std::uint64_t data_queue_bytes() const { return data_queued_bytes_; }
  std::uint64_t max_queue_bytes() const { return max_queued_bytes_; }
  std::uint64_t tx_bytes_total() const { return tx_bytes_; }
  std::uint64_t drops() const { return drops_; }

  /// Hard buffer cap; packets beyond it are dropped (experiments run with
  /// PFC or generous buffers so this should stay untouched — drops() lets
  /// tests assert that).
  void set_buffer_limit(std::uint64_t bytes) { buffer_limit_ = bytes; }

  sim::Rate bandwidth() const { return bandwidth_; }
  sim::Time propagation_delay() const { return prop_delay_; }
  Node* peer() const { return peer_; }
  int peer_port() const { return peer_port_; }
  int index() const { return index_; }
  bool connected() const { return peer_ != nullptr; }

  /// Clears max-queue statistics (between experiment phases).
  void reset_stats() { max_queued_bytes_ = queued_bytes_; }

 private:
  void maybe_start_tx();
  void finish_tx(Packet&& p);

  sim::Simulator& sim_;
  Node* owner_;
  int index_;

  Node* peer_ = nullptr;
  int peer_port_ = -1;
  sim::Rate bandwidth_ = 0.0;
  sim::Time prop_delay_ = 0;

  std::deque<Packet> high_q_;  // control / ACK
  std::deque<Packet> low_q_;   // data
  std::uint64_t queued_bytes_ = 0;
  std::uint64_t data_queued_bytes_ = 0;
  std::uint64_t max_queued_bytes_ = 0;
  std::uint64_t buffer_limit_ = UINT64_MAX;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t drops_ = 0;

  bool busy_ = false;
  bool paused_ = false;

  RedParams red_;
  sim::Rng* rng_ = nullptr;
};

}  // namespace fastcc::net
