// PacketPool: a per-simulation arena for in-flight packets.
//
// The zero-copy packet pipeline allocates a Packet exactly once, at the
// sending host, and then passes a 4-byte PacketRef handle through port
// queues, scheduler closures, and switch forwarding; the ~300-byte Packet
// itself never moves again.  Ownership rules:
//
//   * Hosts alloc() data packets in try_send and ACKs in handle_data.
//   * Node::send_pfc alloc()s PFC pause/resume frames.
//   * Whoever removes a packet from the pipeline release()s it: the
//     receiving host after processing (Host::receive), Node::deliver for
//     PFC frames, and Port::enqueue on a tail drop.
//
// Handles are generation-checked: release() bumps the slot's generation, so
// a stale PacketRef held past release (a use-after-free in disguise) fails
// the get() assert instead of silently reading a recycled packet.
//
// Aliasing window: the generation counter is 12 bits, so it wraps after
// exactly 4096 release/alloc cycles of one slot.  A stale handle hoarded
// across a full wrap becomes indistinguishable from the slot's current
// incarnation and the generation check silently passes (see
// PacketPool.GenerationWrapsAfter4096Cycles).  In practice a handle's
// lifetime is one pipeline traversal — a few simulated microseconds — while
// a wrap needs 4096 reuses of the same slot, so the check loses none of its
// power against real bugs; the static fastcc-dataflow analysis covers the
// pathological hoarding case.  Storage
// is chunked (fixed-size arrays, never reallocated), so Packet& references
// obtained from get() stay valid across alloc() growth — e.g. a host may
// hold the received data packet while allocating its ACK.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "util/contracts.h"

namespace fastcc::net {

/// 4-byte generation-checked handle into a PacketPool.  Layout: low 20 bits
/// slot index (1M concurrent packets, far above any buffer-bounded
/// simulation), high 12 bits generation.
struct PacketRef {
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kGenMask = 0xfffu;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  std::uint32_t bits = kInvalid;

  static PacketRef make(std::uint32_t slot, std::uint32_t gen) {
    return PacketRef{(gen << kSlotBits) | slot};
  }
  std::uint32_t slot() const { return bits & kSlotMask; }
  std::uint32_t gen() const { return bits >> kSlotBits; }
  bool valid() const { return bits != kInvalid; }
  bool operator==(const PacketRef&) const = default;
};

class FASTCC_SHARD_LOCAL PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Debug-build teardown leak audit (opt-in): a pool destructed with live
  /// packets then fails an assert instead of silently dropping the leak.
  /// Off by default — drivers that stop() mid-flight legitimately destruct
  /// pools with packets still live; the space-parallel runner, which drains
  /// every shard before teardown, turns it on per shard.
  ~PacketPool() {
    assert((!audit_teardown_ || live_ == 0) &&
           "PacketPool destroyed with live packets (cross-shard leak?)");
  }
  void enable_teardown_leak_audit() { audit_teardown_ = true; }

  /// Takes a free slot (growing by one chunk when exhausted) and resets the
  /// packet's header fields.  The INT array is deliberately *not* cleared:
  /// records at index >= int_count are never read, so recycling skips the
  /// 256-byte wipe that dominated the old by-value packet path.
  FASTCC_PRODUCES PacketRef alloc() {
    if (free_.empty()) add_chunk();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    Slot& s = slot_at(slot);
    s.pkt.reset_header();
    ++live_;
    if (live_ > peak_) peak_ = live_;
    return PacketRef::make(slot, s.gen);
  }

  /// Resolves a handle.  The reference stays valid until release(): chunked
  /// storage never moves slots, so nested alloc() calls cannot dangle it.
  Packet& get(FASTCC_BORROWS PacketRef ref) {
    Slot& s = slot_at(ref.slot());
    assert(ref.valid() && s.gen == ref.gen() &&
           "stale PacketRef: packet was already released");
    return s.pkt;
  }
  const Packet& get(FASTCC_BORROWS PacketRef ref) const {
    const Slot& s = slot_at(ref.slot());
    assert(ref.valid() && s.gen == ref.gen() &&
           "stale PacketRef: packet was already released");
    return s.pkt;
  }

  /// Returns the slot to the freelist and invalidates every outstanding
  /// handle to it by bumping the generation.
  void release(FASTCC_CONSUMES PacketRef ref) {
    Slot& s = slot_at(ref.slot());
    assert(ref.valid() && s.gen == ref.gen() &&
           "double release of a PacketRef");
    s.gen = (s.gen + 1) & PacketRef::kGenMask;
    free_.push_back(ref.slot());
    assert(live_ > 0);
    --live_;
  }

  /// Non-asserting staleness probe: true iff the handle names its slot's
  /// current incarnation.  Unlike get(), safe to call on a stale handle —
  /// used by tests and diagnostics.  Subject to the 12-bit generation
  /// aliasing window documented at the top of this file: a handle held
  /// across exactly 4096 release/alloc cycles of its slot reads as current
  /// again.
  bool is_current(PacketRef ref) const {
    if (!ref.valid() || ref.slot() >= capacity_) return false;
    return slot_at(ref.slot()).gen == ref.gen();
  }

  /// Serializes a packet out of this pool for a cross-shard handoff: copies
  /// the bytes and retires the handle (slot to the freelist, generation
  /// bumped, exactly as release()).  The returned value is what crosses the
  /// mailbox; the destination shard re-materializes it via import_packet().
  Packet export_release(FASTCC_CONSUMES_XSHARD PacketRef ref) {
    Packet out = get(ref);
    release(ref);
    return out;
  }

  /// Re-materializes a packet that arrived from another shard's pool:
  /// allocates a fresh slot here and copies the bytes in.  The new handle
  /// is this pool's own — generation checking starts over.
  FASTCC_PRODUCES PacketRef import_packet(const Packet& p) {
    const PacketRef ref = alloc();
    get(ref) = p;
    return ref;
  }

  /// Hints a handle's packet header line into cache without resolving it —
  /// no generation check, no field access, safe on any handle.  The transmit
  /// and delivery loops issue it one packet ahead so the ~320-byte Packet is
  /// in flight while the current one is processed.
  void prefetch(PacketRef ref) const {
    const std::uint32_t slot = ref.slot();
    if (!ref.valid() || slot >= capacity_) return;
    __builtin_prefetch(&chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)]);
  }

  /// Packets currently allocated (leak check: a drained simulation must end
  /// at zero).
  std::uint32_t live_count() const { return live_; }
  /// Legacy spelling of live_count(), kept for existing call sites.
  std::uint32_t live() const { return live_; }
  /// High-water mark of concurrently live packets over the pool's lifetime
  /// (exact, unlike capacity() which rounds up to the chunk size) — the
  /// per-shard memory figure the space-parallel leak audit reports.
  std::uint32_t peak_count() const { return peak_; }
  /// Total slots ever created (high-water mark of concurrent packets,
  /// rounded up to the chunk size).
  std::uint32_t capacity() const { return capacity_; }

 private:
  static constexpr std::uint32_t kChunkShift = 9;  // 512 packets per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct Slot {
    Packet pkt;
    std::uint32_t gen = 0;
  };

  Slot& slot_at(std::uint32_t slot) {
    assert(slot < capacity_ && "PacketRef slot out of range");
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t slot) const {
    assert(slot < capacity_ && "PacketRef slot out of range");
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  void add_chunk() {
    assert(capacity_ + kChunkSize <= (1u << PacketRef::kSlotBits) &&
           "PacketPool exhausted its 20-bit slot space");
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    // Push in reverse so allocation proceeds in ascending slot order.
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      free_.push_back(capacity_ + i);
    }
    capacity_ += kChunkSize;
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t capacity_ = 0;
  std::uint32_t live_ = 0;
  std::uint32_t peak_ = 0;
  bool audit_teardown_ = false;
};

/// Index ring buffer of PacketRef handles — the Port egress queue.  Replaces
/// std::deque<Packet>: 4 bytes per queued packet instead of ~300, contiguous,
/// and allocation-free once grown to the high-water capacity.
class FASTCC_SHARD_LOCAL PacketRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(FASTCC_CONSUMES PacketRef ref) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = ref;
    ++size_;
  }

  /// Peeks the head handle.  Declared FASTCC_PRODUCES because the idiomatic
  /// use is `ref = front(); pop_front();` — the caller assumes ownership of
  /// the returned handle and the ring forgets it.  (A front() not paired
  /// with pop_front() duplicates ownership; intraprocedural analysis cannot
  /// see that, so the pairing is a convention this comment documents.)
  FASTCC_PRODUCES PacketRef front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<PacketRef> bigger(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<PacketRef> buf_;  // power-of-two capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fastcc::net
