#include "net/host.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace fastcc::net {

void Host::start_flow(FlowTx flow) {
  assert(flow.spec.src == id() && "flow must be sourced at this host");
  assert(static_cast<bool>(flow.cc) && "flow needs a congestion controller");
  assert(flow.line_rate > 0 && flow.base_rtt > 0 && flow.mtu > 0);
  const FlowId fid = flow.spec.id;
  auto [slot, inserted] = tx_flows_.try_emplace(fid, std::move(flow));
  assert(inserted && "duplicate flow id");
  (void)inserted;
  FlowTx& f = *slot;
  ++active_flows_;
  if (f.rto == 0) f.rto = std::max<sim::Time>(3 * f.base_rtt, min_rto_);
  f.last_progress_time = sim_->now();
  f.cc.on_flow_start(f);
  sync_rate_contribution(f);
  sync_cc_timer(f);
  f.next_tx_time = sim_->now();
  try_send(f);
}

const FlowTx* Host::flow(FlowId fid) const { return tx_flows_.find(fid); }

FlowTx* Host::mutable_flow(FlowId fid) { return tx_flows_.find(fid); }

sim::Rate Host::total_send_rate_recomputed() const {
  // Flows are visited in start order (insertion order), so this double
  // accumulation is reproducible run to run.
  sim::Rate sum = 0.0;
  for (const auto& [fid, f] : tx_flows_) {
    if (!f.finished()) sum += std::min(f.rate, f.line_rate);
  }
  return sum;
}

void Host::sync_rate_contribution(FlowTx& f) {
  const sim::Rate want = f.finished() ? 0.0 : std::min(f.rate, f.line_rate);
  if (want != f.rate_contribution) {
    rate_sum_ += want - f.rate_contribution;
    f.rate_contribution = want;
  }
}

void Host::receive(FASTCC_CONSUMES PacketRef ref, int in_port) {
  (void)in_port;
  const Packet& p = packet_pool()->get(ref);
  consume(p);  // release PFC ingress accounting: hosts sink packets
  switch (p.type) {
    case PacketType::kData:
      handle_data(p);
      break;
    case PacketType::kAck:
      handle_ack(p);
      break;
    default:
      break;  // PFC frames are handled in Node::deliver
  }
  packet_pool()->release(ref);
}

void Host::handle_data(const Packet& p) {
  assert(p.dst == id());
  RxState& rx = rx_flows_[p.flow];
  rx.bytes_received += p.payload_bytes;
  // Cumulative in-order tracking: a gap (upstream drop) freezes expected_seq
  // and the resulting duplicate ACKs trigger the sender's go-back-N.
  if (p.seq <= rx.expected_seq) {
    rx.expected_seq = std::max<std::uint64_t>(rx.expected_seq,
                                              p.seq + p.payload_bytes);
  }

  // The ACK is born in the pool; `p` stays valid across the alloc (chunked
  // slot storage never relocates).
  const PacketRef ack_ref = packet_pool()->alloc();
  Packet& ack = packet_pool()->get(ack_ref);
  init_ack(ack, p, sim_->now());
  ack.seq = rx.expected_seq;  // cumulative ACK
  // DCQCN: at most one congestion-notification per flow per cnp_interval_.
  if (p.ecn) {
    if (rx.last_cnp_time < 0 ||
        sim_->now() - rx.last_cnp_time >= cnp_interval_) {
      ack.cnp = true;
      rx.last_cnp_time = sim_->now();
    }
  }
  assert(port_count() > 0 && port(0).connected());
  port(0).enqueue(ack_ref);
}

void Host::handle_ack(const Packet& p) {
  FlowTx* fp = tx_flows_.find(p.flow);
  if (fp == nullptr) return;
  FlowTx& f = *fp;
  if (f.finished()) return;
  ++f.acks_received;

  if (p.seq <= f.cum_acked) {
    // Duplicate cumulative ACK: the receiver saw a gap.  Triple-dup triggers
    // fast retransmit (go-back-N), rate-limited to one rewind per RTT so the
    // stale ACKs of an already-rewound window cannot re-trigger it.
    ++f.dup_acks;
    if (f.dup_acks >= 3 && f.snd_nxt > f.cum_acked &&
        (f.last_retransmit_time < 0 ||
         sim_->now() - f.last_retransmit_time >= f.base_rtt)) {
      retransmit_from_cum_ack(f);
      try_send(f);
    }
    return;
  }

  const auto newly = static_cast<std::uint32_t>(p.seq - f.cum_acked);
  f.cum_acked = p.seq;
  f.dup_acks = 0;
  f.last_progress_time = sim_->now();

  cc::AckContext ctx;
  ctx.now = sim_->now();
  ctx.rtt = sim_->now() - p.host_ts;
  ctx.ack_seq = p.seq;
  ctx.bytes_acked = newly;
  ctx.ecn = p.ecn;
  ctx.cnp = p.cnp;
  ctx.ints = std::span<const IntRecord>(p.ints.data(), p.int_count);
  f.cc.on_ack(ctx, f);

  if (f.cum_acked >= f.spec.size_bytes) {
    f.finish_time = sim_->now();
    assert(active_flows_ > 0);
    --active_flows_;
    // The arbiter entry (if one is queued) dies on pop via this flag.
    f.pacing_queued = false;
    if (f.rto_timer_armed) {
      wheel().cancel(f.rto_timer);
      f.rto_timer_armed = false;
    }
    sync_cc_timer(f);          // finished: cancels any pending CC deadline
    sync_rate_contribution(f);  // contribution drops to zero
    if (on_complete_) on_complete_(f);
    return;
  }
  sync_rate_contribution(f);
  sync_cc_timer(f);
  try_send(f);
}

void Host::try_send(FlowTx& f) {
  while (!f.all_sent()) {
    const std::uint32_t payload = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        f.mtu, f.spec.size_bytes - f.snd_nxt));
    // Window gate: always allow one packet in flight so sub-MTU windows make
    // progress (pacing then sets the speed, as in Swift's cwnd < 1 regime).
    const bool window_ok =
        f.inflight_bytes() == 0 ||
        static_cast<double>(f.inflight_bytes() + payload) <= f.window_bytes;
    if (!window_ok) return;  // an ACK will reopen the window
    if (sim_->now() < f.next_tx_time) {
      arm_pacing(f);
      return;
    }
    // Allocate once, here at the sender; downstream the packet travels only
    // as a PacketRef handle.
    const PacketRef ref = packet_pool()->alloc();
    init_data(packet_pool()->get(ref), f.spec.id, f.spec.src, f.spec.dst,
              f.snd_nxt, payload, sim_->now());
    f.snd_nxt += payload;
    // Pace on wire bytes at the flow's current rate (capped at line rate —
    // the NIC cannot serialize faster even if CC asks for more).
    const sim::Rate pace = std::min(f.rate, f.line_rate);
    assert(pace > 0.0);
    f.next_tx_time = std::max(f.next_tx_time, sim_->now()) +
                     sim::serialization_time(payload + kHeaderBytes, pace);
    assert(port_count() > 0 && port(0).connected());
    port(0).enqueue(ref);
    arm_rto_timer(f);
  }
}

void Host::retransmit_from_cum_ack(FlowTx& f) {
  assert(f.snd_nxt > f.cum_acked);
  f.bytes_retransmitted += f.snd_nxt - f.cum_acked;
  ++f.retransmit_events;
  f.dup_acks = 0;
  f.last_retransmit_time = sim_->now();
  f.last_progress_time = sim_->now();  // restart the RTO clock
  f.snd_nxt = f.cum_acked;
  f.next_tx_time = std::max(f.next_tx_time, sim_->now());
}

void Host::arm_rto_timer(FlowTx& f) {
  if (f.rto_timer_armed || f.finished()) return;
  f.rto_timer_armed = true;
  const FlowId fid = f.spec.id;
  const sim::Time deadline =
      std::max(f.last_progress_time + f.rto, sim_->now() + 1);
  f.rto_timer = wheel().arm(deadline, [this, fid] {
    FlowTx* flow_state = mutable_flow(fid);
    if (flow_state == nullptr || flow_state->finished()) return;
    flow_state->rto_timer_armed = false;
    if (flow_state->inflight_bytes() == 0) return;  // re-armed on next send
    if (sim_->now() - flow_state->last_progress_time >= flow_state->rto) {
      retransmit_from_cum_ack(*flow_state);
      try_send(*flow_state);
    }
    arm_rto_timer(*flow_state);
  });
}

void Host::sync_cc_timer(FlowTx& f) {
  const sim::Time want = f.finished() ? -1 : f.cc.next_timer();
  if (want == f.cc_timer_at) return;
  if (f.cc_timer_at >= 0) wheel().cancel(f.cc_timer);
  f.cc_timer_at = want;
  if (want >= 0) {
    const FlowId fid = f.spec.id;
    f.cc_timer = wheel().arm(want, [this, fid] { cc_tick(fid); });
  }
}

void Host::cc_tick(FlowId fid) {
  FlowTx* f = mutable_flow(fid);
  if (f == nullptr || f->finished()) return;
  f->cc_timer_at = -1;  // the armed deadline just fired
  f->cc.on_timer(sim_->now(), *f);
  sync_rate_contribution(*f);
  sync_cc_timer(*f);
}

void Host::arm_pacing(FlowTx& f) {
  if (f.pacing_queued) return;
  f.pacing_queued = true;
  pacing_heap_.push_back(PacingEntry{f.next_tx_time, f.spec.id});
  std::push_heap(pacing_heap_.begin(), pacing_heap_.end());
  // Inside the arbiter's own drain loop the tail re-arm covers new entries.
  if (!in_nic_tick_) arm_nic_timer(f.next_tx_time);
}

void Host::arm_nic_timer(sim::Time at) {
  if (nic_timer_armed_ && nic_timer_at_ <= at) return;
  if (nic_timer_armed_) wheel().cancel(nic_timer_);
  nic_timer_armed_ = true;
  nic_timer_at_ = at;
  nic_timer_ = wheel().arm(at, [this] { nic_tick(); });
}

void Host::nic_tick() {
  nic_timer_armed_ = false;
  nic_timer_at_ = -1;
  in_nic_tick_ = true;
  const sim::Time now = sim_->now();
  while (!pacing_heap_.empty() && pacing_heap_.front().at <= now) {
    std::pop_heap(pacing_heap_.begin(), pacing_heap_.end());
    const PacingEntry e = pacing_heap_.back();
    pacing_heap_.pop_back();
    FlowTx* f = tx_flows_.find(e.id);
    // Entries are hints: skip flows that finished or already got service
    // (their pacing_queued flag was cleared); a flow whose next_tx_time
    // moved later simply re-queues from try_send.
    if (f == nullptr || f->finished() || !f->pacing_queued) continue;
    f->pacing_queued = false;
    try_send(*f);
  }
  in_nic_tick_ = false;
  if (!pacing_heap_.empty()) arm_nic_timer(pacing_heap_.front().at);
}

}  // namespace fastcc::net
