#include "net/host.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace fastcc::net {

void Host::start_flow(FlowTx flow) {
  assert(flow.spec.src == id() && "flow must be sourced at this host");
  assert(static_cast<bool>(flow.cc) && "flow needs a congestion controller");
  assert(flow.line_rate > 0 && flow.base_rtt > 0 && flow.mtu > 0);
  const FlowId fid = flow.spec.id;
  auto [slot, inserted] = tx_flows_.try_emplace(fid, std::move(flow));
  assert(inserted && "duplicate flow id");
  (void)inserted;
  FlowTx& f = *slot;
  ++active_flows_;
  if (f.rto == 0) f.rto = std::max<sim::Time>(3 * f.base_rtt, min_rto_);
  f.last_progress_time = sim_->now();
  const FlowIdx i = slab_.install(f);
  f.cc.on_flow_start(slab_.view(i));
  sync_rate_contribution(i);
  sync_cc_timer(f);
  slab_.next_tx_time[i] = sim_->now();
  try_send(i);
}

const FlowTx* Host::flow(FlowId fid) const {
  const FlowTx* f = tx_flows_.find(fid);
  if (f != nullptr && f->hot_idx != kInvalidFlowIdx) {
    // Live flow: refresh the record from the slab so the caller sees
    // current progress.  The record is the flow's own archive, so this
    // write-back is logically const on the Host.
    slab_.write_back(f->hot_idx, const_cast<FlowTx&>(*f));
  }
  return f;
}

FlowTx* Host::mutable_flow(FlowId fid) {
  FlowTx* f = tx_flows_.find(fid);
  if (f != nullptr && f->hot_idx != kInvalidFlowIdx) {
    slab_.write_back(f->hot_idx, *f);
  }
  return f;
}

sim::Rate Host::total_send_rate_recomputed() const {
  // Flows are visited in start order (insertion order), so this double
  // accumulation is reproducible run to run.  Unfinished flows read their
  // live rate from the slab; finished ones contribute nothing.
  sim::Rate sum = 0.0;
  for (const auto& [fid, f] : tx_flows_) {
    if (f.hot_idx != kInvalidFlowIdx) {
      sum += std::min(slab_.rate[f.hot_idx], slab_.line_rate[f.hot_idx]);
    }
  }
  return sum;
}

void Host::sync_rate_contribution(FlowIdx i) {
  const sim::Rate want = std::min(slab_.rate[i], slab_.line_rate[i]);
  if (want != slab_.rate_contribution[i]) {
    rate_sum_ += want - slab_.rate_contribution[i];
    slab_.rate_contribution[i] = want;
  }
}

void Host::receive(FASTCC_CONSUMES PacketRef ref, int in_port) {
  (void)in_port;
  const Packet& p = packet_pool()->get(ref);
  consume(p);  // release PFC ingress accounting: hosts sink packets
  switch (p.type) {
    case PacketType::kData:
      handle_data(p);
      break;
    case PacketType::kAck: {
      FlowTx* f = ack_apply(p);
      if (f != nullptr) ack_finalize(*f);
      break;
    }
    default:
      break;  // PFC frames are handled in Node::deliver
  }
  packet_pool()->release(ref);
}

FASTCC_SHARD_LOCAL void Host::deliver_batch(FASTCC_CONSUMES PacketRef first,
                                            int in_port) {
  // One pass applies every packet's cheap per-ACK update; the expensive
  // follow-up (completion, rate-sum, CC-timer sync, window/pacing probe,
  // arbiter fix-up) then runs once per touched flow, in first-appearance
  // order.  The chain never exceeds the burst cap, so the dedup scratch is
  // a fixed stack array and the whole path allocates nothing.  Flows are
  // held by id, not pointer: a completion callback may start a new flow,
  // and the flow table relocates records on growth.
  FlowId touched[kMaxBurstPackets];
  int n_touched = 0;
  while (first.valid()) {
    Packet& p = packet_pool()->get(first);
    const PacketRef next{p.batch_next};
    p.batch_next = PacketRef::kInvalid;
    // Replay deliver()'s per-packet ingress bookkeeping (the +/- pair keeps
    // PFC threshold crossings observable exactly as on the unbatched path).
    p.ingress_port = in_port;
    pfc_account(in_port, static_cast<std::int64_t>(p.wire_bytes));
    consume(p);
    switch (p.type) {
      case PacketType::kData:
        handle_data(p);
        break;
      case PacketType::kAck: {
        if (ack_apply(p) != nullptr) {
          bool seen = false;
          for (int t = 0; t < n_touched; ++t) {
            if (touched[t] == p.flow) {
              seen = true;
              break;
            }
          }
          if (!seen) touched[n_touched++] = p.flow;
        }
        break;
      }
      default:
        break;  // PFC frames are never chained (they bypass port queues)
    }
    packet_pool()->release(first);
    first = next;
  }
  for (int t = 0; t < n_touched; ++t) {
    FlowTx* f = tx_flows_.find(touched[t]);
    if (f != nullptr && f->hot_idx != kInvalidFlowIdx) ack_finalize(*f);
  }  // lint:allow(path-leak -- chain cursor: every link was released in the walk; the tail link is kInvalid)
}

void Host::handle_data(const Packet& p) {
  assert(p.dst == id());
  RxState& rx = rx_flows_[p.flow];
  rx.bytes_received += p.payload_bytes;
  // Cumulative in-order tracking: a gap (upstream drop) freezes expected_seq
  // and the resulting duplicate ACKs trigger the sender's go-back-N.
  if (p.seq <= rx.expected_seq) {
    rx.expected_seq = std::max<std::uint64_t>(rx.expected_seq,
                                              p.seq + p.payload_bytes);
  }

  // The ACK is born in the pool; `p` stays valid across the alloc (chunked
  // slot storage never relocates).
  const PacketRef ack_ref = packet_pool()->alloc();
  Packet& ack = packet_pool()->get(ack_ref);
  init_ack(ack, p, sim_->now());
  ack.seq = rx.expected_seq;  // cumulative ACK
  // DCQCN: at most one congestion-notification per flow per cnp_interval_.
  if (p.ecn) {
    if (rx.last_cnp_time < 0 ||
        sim_->now() - rx.last_cnp_time >= cnp_interval_) {
      ack.cnp = true;
      rx.last_cnp_time = sim_->now();
    }
  }
  assert(port_count() > 0 && port(0).connected());
  port(0).enqueue(ack_ref);
}

FlowTx* Host::ack_apply(const Packet& p) {
  FlowTx* fp = tx_flows_.find(p.flow);
  if (fp == nullptr) return nullptr;
  const FlowIdx i = fp->hot_idx;
  if (i == kInvalidFlowIdx) return nullptr;  // already finished
  // Fully-acked flow still awaiting its deferred finalize (completion landed
  // earlier in this same batch): absorb trailing ACKs exactly as the
  // unbatched path absorbed post-finish ones.
  if (slab_.cum_acked[i] >= slab_.size_bytes[i]) return nullptr;
  ++slab_.acks_received[i];

  if (p.seq <= slab_.cum_acked[i]) {
    on_dup_ack(*fp, i);
    return nullptr;
  }

  const auto newly = static_cast<std::uint32_t>(p.seq - slab_.cum_acked[i]);
  slab_.cum_acked[i] = p.seq;
  slab_.last_progress_time[i] = sim_->now();

  cc::AckContext ctx;
  ctx.now = sim_->now();
  ctx.rtt = sim_->now() - p.host_ts;
  ctx.ack_seq = p.seq;
  ctx.bytes_acked = newly;
  ctx.ecn = p.ecn;
  ctx.cnp = p.cnp;
  ctx.ints = std::span<const IntRecord>(p.ints.data(), p.int_count);
  fp->cc.on_ack(ctx, slab_.view(i));
  return fp;
}

void Host::on_dup_ack(FlowTx& f, FlowIdx i) {
  // Duplicate cumulative ACK: the receiver saw a gap.  The dup counter
  // resets lazily — any progress moved cum_acked, so a stale dup_base means
  // "first dup of a new stall" (this keeps the in-order ACK path free of
  // cold-field writes).  Triple-dup triggers fast retransmit (go-back-N),
  // rate-limited to one rewind per RTT so the stale ACKs of an already-
  // rewound window cannot re-trigger it.
  if (f.dup_base != slab_.cum_acked[i]) {
    f.dup_base = slab_.cum_acked[i];
    f.dup_acks = 0;
  }
  ++f.dup_acks;
  if (f.dup_acks >= 3 && slab_.snd_nxt[i] > slab_.cum_acked[i] &&
      (f.last_retransmit_time < 0 ||
       sim_->now() - f.last_retransmit_time >= f.base_rtt)) {
    retransmit_from_cum_ack(f, i);
    try_send(i);
  }
}

void Host::ack_finalize(FlowTx& f) {
  const FlowIdx i = f.hot_idx;
  assert(i != kInvalidFlowIdx);
  if (slab_.cum_acked[i] >= slab_.size_bytes[i]) {
    finish_flow(f, i);
    return;
  }
  sync_rate_contribution(i);
  sync_cc_timer(f);
  try_send(i);
}

void Host::finish_flow(FlowTx& f, FlowIdx i) {
  // The arbiter entry (if one is queued) dies on pop: the compacted slot no
  // longer resolves to this flow.
  slab_.pacing_queued[i] = 0;
  slab_.write_back(i, f);  // final hot values become the archive
  f.finish_time = sim_->now();
  assert(active_flows_ > 0);
  --active_flows_;
  if (f.rto_timer_armed) {
    wheel().cancel(f.rto_timer);
    f.rto_timer_armed = false;
  }
  sync_cc_timer(f);  // finished: cancels any pending CC deadline
  // Contribution drops to zero.
  rate_sum_ -= f.rate_contribution;
  f.rate_contribution = 0.0;
  const auto [moved, moved_id] = slab_.compact(i);
  f.hot_idx = kInvalidFlowIdx;
  if (moved) {
    FlowTx* m = tx_flows_.find(moved_id);
    assert(m != nullptr);
    m->hot_idx = i;
  }
  if (on_complete_) on_complete_(f);
}

void Host::try_send(FlowIdx i) {
  // Slab-complete send loop: every load below hits the hot or constant
  // lanes; the cold record is touched only by arm_rto_timer afterwards,
  // and only when a packet actually left.
  bool sent = false;
  while (!slab_.all_sent(i)) {
    const std::uint32_t payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(slab_.mtu[i],
                                slab_.size_bytes[i] - slab_.snd_nxt[i]));
    // Window gate: always allow one packet in flight so sub-MTU windows make
    // progress (pacing then sets the speed, as in Swift's cwnd < 1 regime).
    const std::uint64_t inflight = slab_.inflight_bytes(i);
    const bool window_ok =
        inflight == 0 ||
        static_cast<double>(inflight + payload) <= slab_.window_bytes[i];
    if (!window_ok) break;  // an ACK will reopen the window
    if (sim_->now() < slab_.next_tx_time[i]) {
      arm_pacing(i);
      break;
    }
    // Allocate once, here at the sender; downstream the packet travels only
    // as a PacketRef handle.
    const PacketRef ref = packet_pool()->alloc();
    init_data(packet_pool()->get(ref), slab_.flow_id[i], id(), slab_.dst[i],
              slab_.snd_nxt[i], payload, sim_->now());
    slab_.snd_nxt[i] += payload;
    // Pace on wire bytes at the flow's current rate (capped at line rate —
    // the NIC cannot serialize faster even if CC asks for more).
    const sim::Rate pace = std::min(slab_.rate[i], slab_.line_rate[i]);
    assert(pace > 0.0);
    slab_.next_tx_time[i] =
        std::max(slab_.next_tx_time[i], sim_->now()) +
        sim::serialization_time(payload + kHeaderBytes, pace);
    assert(port_count() > 0 && port(0).connected());
    port(0).enqueue(ref);
    sent = true;
  }
  if (sent) {
    FlowTx* f = tx_flows_.find(slab_.flow_id[i]);
    assert(f != nullptr);
    arm_rto_timer(*f);
  }
}

void Host::retransmit_from_cum_ack(FlowTx& f, FlowIdx i) {
  assert(slab_.snd_nxt[i] > slab_.cum_acked[i]);
  f.bytes_retransmitted += slab_.snd_nxt[i] - slab_.cum_acked[i];
  ++f.retransmit_events;
  f.dup_acks = 0;
  f.last_retransmit_time = sim_->now();
  slab_.last_progress_time[i] = sim_->now();  // restart the RTO clock
  slab_.snd_nxt[i] = slab_.cum_acked[i];
  slab_.next_tx_time[i] = std::max(slab_.next_tx_time[i], sim_->now());
}

void Host::arm_rto_timer(FlowTx& f) {
  if (f.rto_timer_armed || f.hot_idx == kInvalidFlowIdx) return;
  f.rto_timer_armed = true;
  const FlowId fid = f.spec.id;
  const sim::Time deadline = std::max(
      slab_.last_progress_time[f.hot_idx] + f.rto, sim_->now() + 1);
  f.rto_timer = wheel().arm(deadline, [this, fid] {
    FlowTx* flow_state = tx_flows_.find(fid);
    if (flow_state == nullptr || flow_state->hot_idx == kInvalidFlowIdx) {
      return;
    }
    flow_state->rto_timer_armed = false;
    const FlowIdx i = flow_state->hot_idx;
    if (slab_.inflight_bytes(i) == 0) return;  // re-armed on next send
    if (sim_->now() - slab_.last_progress_time[i] >= flow_state->rto) {
      retransmit_from_cum_ack(*flow_state, i);
      try_send(i);
    }
    arm_rto_timer(*flow_state);
  });
}

void Host::sync_cc_timer(FlowTx& f) {
  const sim::Time want = f.finished() ? -1 : f.cc.next_timer();
  if (want == f.cc_timer_at) return;
  if (f.cc_timer_at >= 0) wheel().cancel(f.cc_timer);
  f.cc_timer_at = want;
  if (want >= 0) {
    const FlowId fid = f.spec.id;
    f.cc_timer = wheel().arm(want, [this, fid] { cc_tick(fid); });
  }
}

void Host::cc_tick(FlowId fid) {
  FlowTx* f = tx_flows_.find(fid);
  if (f == nullptr || f->hot_idx == kInvalidFlowIdx) return;
  f->cc_timer_at = -1;  // the armed deadline just fired
  const FlowIdx i = f->hot_idx;
  f->cc.on_timer(sim_->now(), slab_.view(i));
  sync_rate_contribution(i);
  sync_cc_timer(*f);
}

void Host::arm_pacing(FlowIdx i) {
  if (slab_.pacing_queued[i] != 0) return;
  slab_.pacing_queued[i] = 1;
  pacing_heap_.push_back(
      PacingEntry{slab_.next_tx_time[i], slab_.flow_id[i], i});
  std::push_heap(pacing_heap_.begin(), pacing_heap_.end());
  // Inside the arbiter's own drain loop the tail re-arm covers new entries.
  if (!in_nic_tick_) arm_nic_timer(slab_.next_tx_time[i]);
}

void Host::arm_nic_timer(sim::Time at) {
  if (nic_timer_armed_ && nic_timer_at_ <= at) return;
  if (nic_timer_armed_) wheel().cancel(nic_timer_);
  nic_timer_armed_ = true;
  nic_timer_at_ = at;
  nic_timer_ = wheel().arm(at, [this] { nic_tick(); });
}

FlowIdx Host::resolve_idx(FlowId fid, FlowIdx hint) const {
  if (hint < slab_.size() && slab_.flow_id[hint] == fid) return hint;
  // Compaction moved (or removed) the flow since the hint was cached: fall
  // back to the cold record's authoritative hot_idx.  A finished flow
  // resolves to kInvalidFlowIdx — the caller skips it.
  const FlowTx* f = tx_flows_.find(fid);
  return f != nullptr ? f->hot_idx : kInvalidFlowIdx;
}

void Host::nic_tick() {
  nic_timer_armed_ = false;
  nic_timer_at_ = -1;
  in_nic_tick_ = true;
  const sim::Time now = sim_->now();
  while (!pacing_heap_.empty() && pacing_heap_.front().at <= now) {
    std::pop_heap(pacing_heap_.begin(), pacing_heap_.end());
    const PacingEntry e = pacing_heap_.back();
    pacing_heap_.pop_back();
    const FlowIdx i = resolve_idx(e.id, e.idx);
    // Entries are hints: skip flows that finished or already got service
    // (their pacing_queued lane was cleared); a flow whose next_tx_time
    // moved later simply re-queues from try_send.
    if (i == kInvalidFlowIdx || slab_.pacing_queued[i] == 0) continue;
    slab_.pacing_queued[i] = 0;
    try_send(i);
  }
  in_nic_tick_ = false;
  if (!pacing_heap_.empty()) arm_nic_timer(pacing_heap_.front().at);
}

}  // namespace fastcc::net
