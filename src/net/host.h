// Host: an end-host with an RDMA-style NIC.
//
// The sender combines window limiting (in-flight bytes < window) with token-
// bucket pacing (one packet per payload/rate interval), which covers all
// three protocol families: window+pacing (HPCC: R = W/T), window/ack-clocked
// (Swift), and pure rate (DCQCN, window unlimited).  Receivers generate one
// ACK per data packet carrying the echoed INT stack, RTT timestamp, ECN echo,
// and (rate-limited) DCQCN CNP flag.
//
// All per-flow timers live on the node's timing wheel, not the global event
// queue: a single NIC arbiter wakeup serves every pacing-blocked flow
// (earliest next_tx_time first, FlowId tie-break), and RTO / CC-recovery
// deadlines are wheel entries.  The simulator sees at most one pending
// event per host.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow.h"
#include "net/node.h"
#include "util/contracts.h"
#include "util/ordered_map.h"

namespace fastcc::net {

class Host : public Node {
 public:
  /// Invoked when the sender observes the final cumulative ACK.
  using CompletionCallback = std::function<void(const FlowTx&)>;

  Host(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {}

  /// Installs and immediately starts a flow sourced at this host.  `flow.cc`
  /// must be set; path constants (line_rate, base_rtt, path_hops) must be
  /// filled in.  Transmission begins now.
  void start_flow(FlowTx flow);

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Minimum interval between CNP-flagged ACKs per flow (DCQCN: 50 us).
  void set_cnp_interval(sim::Time t) { cnp_interval_ = t; }

  /// Lower bound on the per-flow retransmission timeout (flows derive
  /// rto = max(3 x base_rtt, this) unless FlowTx.rto is preset).  The
  /// default (1 ms) matches datacenter transports and sits far above any
  /// PFC-bounded queueing delay, so lossless runs never time out spuriously.
  void set_min_rto(sim::Time t) { min_rto_ = t; }

  const FlowTx* flow(FlowId id) const;
  FlowTx* mutable_flow(FlowId id);
  std::size_t active_flow_count() const { return active_flows_; }

  /// Sum of current pacing rates of unfinished flows (fairness sampling).
  /// O(1): maintained incrementally via FlowTx::rate_contribution.
  sim::Rate total_send_rate() const { return rate_sum_; }

  /// The O(n) reference sum, retained for the equivalence test that pins the
  /// incremental bookkeeping to the definition.
  sim::Rate total_send_rate_recomputed() const;

 protected:
  FASTCC_SHARD_LOCAL void receive(FASTCC_CONSUMES PacketRef ref,
                                  int in_port) override;

 private:
  void handle_data(const Packet& p);
  void handle_ack(const Packet& p);
  void try_send(FlowTx& f);
  /// Queues `f` with the NIC arbiter for service at f.next_tx_time.
  void arm_pacing(FlowTx& f);
  /// Ensures the arbiter's wheel timer covers a wakeup at `at`.
  void arm_nic_timer(sim::Time at);
  /// NIC arbiter wakeup: serves every due pacing-blocked flow in
  /// (next_tx_time, FlowId) order, then re-arms for the next one.
  void nic_tick();
  void arm_rto_timer(FlowTx& f);
  /// Mirrors the controller's internal deadline (if any) onto the wheel.
  void sync_cc_timer(FlowTx& f);
  void cc_tick(FlowId fid);
  /// Re-derives f.rate_contribution after any controller callout and folds
  /// the delta into rate_sum_.
  void sync_rate_contribution(FlowTx& f);
  /// Go-back-N: rewinds snd_nxt to the cumulative ACK point.
  void retransmit_from_cum_ack(FlowTx& f);

  struct RxState {
    std::uint64_t bytes_received = 0;  ///< Raw arrivals (incl. duplicates).
    std::uint64_t expected_seq = 0;    ///< Next in-order byte (cumulative).
    sim::Time last_cnp_time = -1;
  };

  /// NIC arbiter ready-queue entry.  Entries are scheduling *hints*: a
  /// flow's next_tx_time may move later after its entry was pushed (the
  /// entry then wakes the arbiter early and the flow simply re-queues), and
  /// a finished flow's entry is skipped on pop via the pacing_queued flag.
  struct PacingEntry {
    sim::Time at = 0;
    FlowId id = 0;
    /// std::push/pop_heap build a max-heap; invert to serve the earliest
    /// (next_tx_time, FlowId) first — the deterministic tie-break.
    bool operator<(const PacingEntry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  // Insertion-ordered so that aggregate walks (the equivalence recompute's
  // double accumulation) visit flows in start order, not hash order.
  FASTCC_SHARD_LOCAL util::InsertionOrderedMap<FlowId, FlowTx> tx_flows_;
  FASTCC_SHARD_LOCAL util::InsertionOrderedMap<FlowId, RxState> rx_flows_;
  std::size_t active_flows_ = 0;
  sim::Rate rate_sum_ = 0.0;
  FASTCC_SHARD_LOCAL std::vector<PacingEntry> pacing_heap_;
  sim::TimerId nic_timer_ = 0;
  sim::Time nic_timer_at_ = -1;
  bool nic_timer_armed_ = false;
  bool in_nic_tick_ = false;
  CompletionCallback on_complete_;
  sim::Time cnp_interval_ = 50 * sim::kMicrosecond;
  sim::Time min_rto_ = 1 * sim::kMillisecond;
};

}  // namespace fastcc::net
