// Host: an end-host with an RDMA-style NIC.
//
// The sender combines window limiting (in-flight bytes < window) with token-
// bucket pacing (one packet per payload/rate interval), which covers all
// three protocol families: window+pacing (HPCC: R = W/T), window/ack-clocked
// (Swift), and pure rate (DCQCN, window unlimited).  Receivers generate one
// ACK per data packet carrying the echoed INT stack, RTT timestamp, ECN echo,
// and (rate-limited) DCQCN CNP flag.
#pragma once

#include <cstdint>
#include <functional>

#include "net/flow.h"
#include "net/node.h"
#include "util/contracts.h"
#include "util/ordered_map.h"

namespace fastcc::net {

class Host : public Node {
 public:
  /// Invoked when the sender observes the final cumulative ACK.
  using CompletionCallback = std::function<void(const FlowTx&)>;

  Host(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {}

  /// Installs and immediately starts a flow sourced at this host.  `flow.cc`
  /// must be set; path constants (line_rate, base_rtt, path_hops) must be
  /// filled in.  Transmission begins now.
  void start_flow(FlowTx flow);

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Minimum interval between CNP-flagged ACKs per flow (DCQCN: 50 us).
  void set_cnp_interval(sim::Time t) { cnp_interval_ = t; }

  /// Lower bound on the per-flow retransmission timeout (flows derive
  /// rto = max(3 x base_rtt, this) unless FlowTx.rto is preset).  The
  /// default (1 ms) matches datacenter transports and sits far above any
  /// PFC-bounded queueing delay, so lossless runs never time out spuriously.
  void set_min_rto(sim::Time t) { min_rto_ = t; }

  const FlowTx* flow(FlowId id) const;
  FlowTx* mutable_flow(FlowId id);
  std::size_t active_flow_count() const { return active_flows_; }

  /// Sum of current pacing rates of unfinished flows (fairness sampling).
  sim::Rate total_send_rate() const;

 protected:
  void receive(FASTCC_CONSUMES PacketRef ref, int in_port) override;

 private:
  void handle_data(const Packet& p);
  void handle_ack(const Packet& p);
  void try_send(FlowTx& f);
  void arm_pacing_timer(FlowTx& f, sim::Time when);
  void arm_rto_timer(FlowTx& f);
  /// Go-back-N: rewinds snd_nxt to the cumulative ACK point.
  void retransmit_from_cum_ack(FlowTx& f);

  struct RxState {
    std::uint64_t bytes_received = 0;  ///< Raw arrivals (incl. duplicates).
    std::uint64_t expected_seq = 0;    ///< Next in-order byte (cumulative).
    sim::Time last_cnp_time = -1;
  };

  // Insertion-ordered so that aggregate walks (total_send_rate's double
  // accumulation) visit flows in start order, not hash order.
  util::InsertionOrderedMap<FlowId, FlowTx> tx_flows_;
  util::InsertionOrderedMap<FlowId, RxState> rx_flows_;
  std::size_t active_flows_ = 0;
  CompletionCallback on_complete_;
  sim::Time cnp_interval_ = 50 * sim::kMicrosecond;
  sim::Time min_rto_ = 1 * sim::kMillisecond;
};

}  // namespace fastcc::net
