// Host: an end-host with an RDMA-style NIC.
//
// The sender combines window limiting (in-flight bytes < window) with token-
// bucket pacing (one packet per payload/rate interval), which covers all
// three protocol families: window+pacing (HPCC: R = W/T), window/ack-clocked
// (Swift), and pure rate (DCQCN, window unlimited).  Receivers generate one
// ACK per data packet carrying the echoed INT stack, RTT timestamp, ECN echo,
// and (rate-limited) DCQCN CNP flag.
//
// All per-flow timers live on the node's timing wheel, not the global event
// queue: a single NIC arbiter wakeup serves every pacing-blocked flow
// (earliest next_tx_time first, FlowId tie-break), and RTO / CC-recovery
// deadlines are wheel entries.  The simulator sees at most one pending
// event per host.
//
// Data layout (DESIGN.md §11): the per-ACK hot half of every unfinished
// flow lives in a struct-of-arrays FlowSlab; the insertion-ordered flow
// table keeps only the cold remainder (FlowSpec, loss recovery, timers, the
// CC engine) plus the archive of finished flows.  Hosts coalesce chained
// deliver_batch() arrivals: all ACKs of one wire burst fold into a single
// per-flow CC/arbiter update pass (one window/pacing/heap fix-up per flow
// per batch instead of per ACK).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow.h"
#include "net/flow_slab.h"
#include "net/node.h"
#include "util/contracts.h"
#include "util/ordered_map.h"

namespace fastcc::net {

class Host : public Node {
 public:
  /// Invoked when the sender observes the final cumulative ACK.
  using CompletionCallback = std::function<void(const FlowTx&)>;

  Host(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {}

  /// Installs and immediately starts a flow sourced at this host.  `flow.cc`
  /// must be set; path constants (line_rate, base_rtt, path_hops) must be
  /// filled in.  Transmission begins now.
  void start_flow(FlowTx flow);

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Minimum interval between CNP-flagged ACKs per flow (DCQCN: 50 us).
  void set_cnp_interval(sim::Time t) { cnp_interval_ = t; }

  /// Lower bound on the per-flow retransmission timeout (flows derive
  /// rto = max(3 x base_rtt, this) unless FlowTx.rto is preset).  The
  /// default (1 ms) matches datacenter transports and sits far above any
  /// PFC-bounded queueing delay, so lossless runs never time out spuriously.
  void set_min_rto(sim::Time t) { min_rto_ = t; }

  /// Read access to a flow's state record.  For a still-running flow the
  /// slab's current hot values are written back into the record first, so
  /// mid-run queries (progress sampling) observe live state.
  const FlowTx* flow(FlowId id) const;
  /// Mutable variant (tests).  The same write-back applies; mutating *hot*
  /// fields of an unfinished flow through the record is not supported — the
  /// slab copy is authoritative until the flow finishes.
  FlowTx* mutable_flow(FlowId id);
  std::size_t active_flow_count() const { return active_flows_; }

  /// Sum of current pacing rates of unfinished flows (fairness sampling).
  /// O(1): maintained incrementally via the slab's rate_contribution lane.
  sim::Rate total_send_rate() const { return rate_sum_; }

  /// The O(n) reference sum, retained for the equivalence test that pins the
  /// incremental bookkeeping to the definition.
  sim::Rate total_send_rate_recomputed() const;

  /// Hosts terminate flows, so they accept burst-coalesced deliveries (see
  /// Node::coalesces_deliveries).
  bool coalesces_deliveries() const override { return true; }

  /// Batched arrival: one pass over the chain applies every ACK's hot-state
  /// update, then each touched flow gets exactly one completion / pacing /
  /// arbiter follow-up.
  FASTCC_SHARD_LOCAL void deliver_batch(FASTCC_CONSUMES PacketRef first,
                                        int in_port) override;

 protected:
  FASTCC_SHARD_LOCAL void receive(FASTCC_CONSUMES PacketRef ref,
                                  int in_port) override;

 private:
  void handle_data(const Packet& p);
  /// Per-ACK hot-state update (progress, AckContext, CC callout).  Returns
  /// the flow's cold record when it needs an ack_finalize() follow-up, null
  /// when the ACK was absorbed (unknown/finished flow, duplicate).
  FlowTx* ack_apply(const Packet& p);
  /// Once per touched flow per delivery: completion check, rate-sum and CC
  /// timer sync, and the (single) send/arbiter follow-up.
  void ack_finalize(FlowTx& f);
  /// Duplicate-cumulative-ACK path: dup counting against the slab's current
  /// cum_acked and (rate-limited) go-back-N fast retransmit.
  void on_dup_ack(FlowTx& f, FlowIdx i);
  /// Completion: final hot values written back to the cold record, timers
  /// cancelled, the slab slot swap-compacted away.
  void finish_flow(FlowTx& f, FlowIdx i);
  void try_send(FlowIdx i);
  /// Queues slab slot `i` with the NIC arbiter for service at its
  /// next_tx_time.
  void arm_pacing(FlowIdx i);
  /// Ensures the arbiter's wheel timer covers a wakeup at `at`.
  void arm_nic_timer(sim::Time at);
  /// NIC arbiter wakeup: serves every due pacing-blocked flow in
  /// (next_tx_time, FlowId) order, then re-arms for the next one.
  void nic_tick();
  /// Revalidates a (FlowId, FlowIdx-hint) pair against the slab; falls back
  /// to the flow table when compaction moved or removed the slot.
  FlowIdx resolve_idx(FlowId fid, FlowIdx hint) const;
  void arm_rto_timer(FlowTx& f);
  /// Mirrors the controller's internal deadline (if any) onto the wheel.
  void sync_cc_timer(FlowTx& f);
  void cc_tick(FlowId fid);
  /// Re-derives slot `i`'s rate contribution after any controller callout
  /// and folds the delta into rate_sum_.
  void sync_rate_contribution(FlowIdx i);
  /// Go-back-N: rewinds snd_nxt to the cumulative ACK point.
  void retransmit_from_cum_ack(FlowTx& f, FlowIdx i);

  struct RxState {
    std::uint64_t bytes_received = 0;  ///< Raw arrivals (incl. duplicates).
    std::uint64_t expected_seq = 0;    ///< Next in-order byte (cumulative).
    sim::Time last_cnp_time = -1;
  };

  /// NIC arbiter ready-queue entry.  Entries are scheduling *hints*: a
  /// flow's next_tx_time may move later after its entry was pushed (the
  /// entry then wakes the arbiter early and the flow simply re-queues), a
  /// finished flow's entry dies on pop, and `idx` is only a cache of the
  /// slab slot at push time — compaction may have moved the flow since, so
  /// pops revalidate through resolve_idx().
  struct PacingEntry {
    sim::Time at = 0;
    FlowId id = 0;
    FlowIdx idx = kInvalidFlowIdx;
    /// std::push/pop_heap build a max-heap; invert to serve the earliest
    /// (next_tx_time, FlowId) first — the deterministic tie-break.
    bool operator<(const PacingEntry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  /// Hot per-flow state of unfinished flows (struct-of-arrays).
  FASTCC_SHARD_LOCAL FlowSlab slab_;
  // Cold records + finished-flow archive.  Insertion-ordered so that
  // aggregate walks (the equivalence recompute's double accumulation) visit
  // flows in start order, not hash order.
  FASTCC_SHARD_LOCAL util::InsertionOrderedMap<FlowId, FlowTx> tx_flows_;
  FASTCC_SHARD_LOCAL util::InsertionOrderedMap<FlowId, RxState> rx_flows_;
  std::size_t active_flows_ = 0;
  sim::Rate rate_sum_ = 0.0;
  FASTCC_SHARD_LOCAL std::vector<PacingEntry> pacing_heap_;
  sim::TimerId nic_timer_ = 0;
  sim::Time nic_timer_at_ = -1;
  bool nic_timer_armed_ = false;
  bool in_nic_tick_ = false;
  CompletionCallback on_complete_;
  sim::Time cnp_interval_ = 50 * sim::kMicrosecond;
  sim::Time min_rto_ = 1 * sim::kMillisecond;
};

}  // namespace fastcc::net
