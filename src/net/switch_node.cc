#include "net/switch_node.h"

#include <cassert>
#include <utility>

namespace fastcc::net {

const std::vector<int> SwitchNode::kNoRoutes{};

namespace {
// splitmix64: cheap, well-mixed 64-bit hash for ECMP selection.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

void SwitchNode::set_routes(NodeId dst, std::vector<int> ports) {
  if (routes_by_dst_.size() <= dst) routes_by_dst_.resize(dst + 1);
  if (route_ref_.size() <= dst) route_ref_.resize(dst + 1, 0);
  assert(ports.size() < 256 && "ECMP fan-out exceeds the flat table's count byte");
  assert(flat_ports_.size() + ports.size() < (1u << 24) &&
         "flat route storage exceeds the 24-bit offset");
  route_ref_[dst] = (static_cast<std::uint32_t>(ports.size()) << 24) |
                    static_cast<std::uint32_t>(flat_ports_.size());
  for (const int p : ports) flat_ports_.push_back(static_cast<std::int16_t>(p));
  routes_by_dst_[dst] = std::move(ports);
}

const std::vector<int>& SwitchNode::routes(NodeId dst) const {
  if (dst >= routes_by_dst_.size()) return kNoRoutes;
  return routes_by_dst_[dst];
}

int SwitchNode::select_port(NodeId dst, FlowId flow, NodeId src) const {
  assert(dst < route_ref_.size() && (route_ref_[dst] >> 24) != 0 &&
         "no route to destination");
  const std::uint32_t ref = route_ref_[dst];
  const std::uint32_t n = ref >> 24;
  const std::int16_t* candidates = flat_ports_.data() + (ref & 0xffffffu);
  if (n == 1) return candidates[0];
  const std::uint64_t key = (static_cast<std::uint64_t>(flow) << 32) ^
                            (static_cast<std::uint64_t>(src) << 16) ^ dst;
  // Salt with the switch id so consecutive tiers don't make correlated picks.
  const std::uint64_t h = mix64(key ^ (static_cast<std::uint64_t>(id()) << 48));
  // Lemire range reduction: (h * n) >> 64 maps the well-mixed hash onto
  // [0, n) without the per-packet 64-bit modulo.
  const auto pick =
      static_cast<std::size_t>((static_cast<unsigned __int128>(h) * n) >> 64);
  return candidates[pick];
}

void SwitchNode::forward(FASTCC_CONSUMES PacketRef ref, int in_port) {
  (void)in_port;
  const Packet& p = packet_pool()->get(ref);
  const int out = select_port(p.dst, p.flow, p.src);
  port(out).enqueue(ref);
}

void SwitchNode::receive(FASTCC_CONSUMES PacketRef ref, int in_port) {
  forward(ref, in_port);
}

}  // namespace fastcc::net
