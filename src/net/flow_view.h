// FlowView: the controller-facing window onto one flow's sender state.
//
// The data-layout pass (DESIGN.md §11) split per-flow sender state in two:
// the per-ACK hot quartet-plus (snd_nxt, cum_acked, window_bytes, rate,
// next_tx_time, ...) lives in the per-host struct-of-arrays FlowSlab, while
// the cold remainder (FlowSpec, loss recovery, timers, the CC engine itself)
// stays in the FlowTx record.  Congestion controllers never see either
// container: they receive a FlowView — a bundle of references into the hot
// arrays plus the per-flow path constants by value — so the same controller
// code runs against a slab-resident flow (simulation) or a standalone FlowTx
// (unit tests), and the hot members keep their historical field names
// (`flow.window_bytes = ...` reads as before).
//
// Lifetime: a FlowView borrows; it must not outlive the statement batch it
// was created for.  In particular, FlowSlab::install() may reallocate the
// hot arrays, so no view may be held across a flow installation.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "util/contracts.h"

namespace fastcc::net {

struct FlowTx;

/// Dense per-host slab index of an unfinished flow.  Assigned at
/// Host::start_flow, recycled (swap-compaction) when the flow finishes.
using FlowIdx = std::uint32_t;
inline constexpr FlowIdx kInvalidFlowIdx = 0xffffffffu;

struct FlowView {
  // ---- Hot state: references into the FlowSlab arrays (or into a
  // standalone FlowTx's own members). ----
  std::uint64_t& snd_nxt;     ///< Next payload byte to send.
  std::uint64_t& cum_acked;   ///< Highest cumulatively acked byte.
  FASTCC_UNIT_BYTES double& window_bytes;
  sim::Rate& rate;
  sim::Time& next_tx_time;

  // ---- Per-flow path constants, by value (immutable after install). ----
  const sim::Rate line_rate;
  const sim::Time base_rtt;
  FASTCC_UNIT_BYTES const std::uint32_t mtu;
  const int path_hops;

  FlowView(std::uint64_t& snd_nxt_ref, std::uint64_t& cum_acked_ref,
           double& window_ref, sim::Rate& rate_ref, sim::Time& next_tx_ref,
           sim::Rate line_rate_v, sim::Time base_rtt_v, std::uint32_t mtu_v,
           int path_hops_v)
      : snd_nxt(snd_nxt_ref),
        cum_acked(cum_acked_ref),
        window_bytes(window_ref),
        rate(rate_ref),
        next_tx_time(next_tx_ref),
        line_rate(line_rate_v),
        base_rtt(base_rtt_v),
        mtu(mtu_v),
        path_hops(path_hops_v) {}

  /// A view over a standalone FlowTx record's own hot members (unit tests,
  /// pre-install records).  Implicit by design so `cc.on_ack(ctx, flow)`
  /// keeps reading naturally at direct-call sites; defined inline in
  /// net/flow.h once FlowTx is complete.
  FlowView(FlowTx& f);  // NOLINT
};

}  // namespace fastcc::net
