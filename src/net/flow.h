// Flow specification and per-flow sender state.
#pragma once

#include <cstdint>
#include <limits>

#include "cc/engine.h"
#include "net/flow_view.h"
#include "net/packet.h"
#include "sim/time.h"
#include "sim/timing_wheel.h"

namespace fastcc::net {

/// Immutable description of a flow: who talks to whom, how much, and when.
struct FlowSpec {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t size_bytes = 0;
  sim::Time start_time = 0;
};

/// Sender-side state record for one flow.  Congestion control mutates
/// `window_bytes` and `rate`; the host NIC enforces both (a packet is
/// released only when in-flight bytes fit the window *and* the pacing clock
/// allows it).  The controller itself lives inline (cc::CcEngine), so the
/// whole per-flow sender state is one contiguous, heap-free block.
///
/// Slab residency (DESIGN.md §11): inside a Host, this record is the *cold*
/// half of the flow.  At start_flow the hot fields (snd_nxt, cum_acked,
/// window_bytes, rate, next_tx_time, pacing_queued, rate_contribution, the
/// progress counters) are copied into the host's FlowSlab struct-of-arrays
/// and `hot_idx` points at the slab slot; the members here then hold the
/// *install-time* values until the flow finishes (or Host::flow() is
/// queried), at which point the slab writes the final values back and the
/// record becomes the self-contained archive the completion callback and
/// post-run queries read.  Standalone records (unit tests driving a
/// controller directly) never enter a slab and behave exactly as before.
struct FlowTx {
  FlowSpec spec;

  std::uint64_t snd_nxt = 0;     ///< Next payload byte to send.
  std::uint64_t cum_acked = 0;   ///< Highest cumulatively acked byte.

  double window_bytes = 0.0;
  sim::Rate rate = 0.0;

  // Path constants, filled in by the experiment when the flow is installed.
  sim::Rate line_rate = 0.0;     ///< Host NIC speed.
  sim::Time base_rtt = 0;        ///< Unloaded RTT along the flow's path.
  std::uint32_t mtu = kDefaultMtu;
  int path_hops = 0;             ///< Forward-path link count (host->...->host).

  sim::Time finish_time = -1;    ///< Sender saw the final cumulative ACK.
  bool finished() const { return finish_time >= 0; }

  std::uint64_t acks_received = 0;

  // ---- Loss recovery (go-back-N) ----
  // The paper's experiments are lossless (PFC / deep buffers), but the
  // simulator is complete for lossy configurations: receivers ACK
  // cumulatively, and the sender rewinds snd_nxt on triple-duplicate ACKs or
  // on a retransmission timeout.
  std::uint64_t bytes_retransmitted = 0;
  std::uint32_t retransmit_events = 0;
  std::uint32_t dup_acks = 0;
  /// cum_acked value the dup_acks count was taken against.  Lets the dup
  /// counter reset lazily on the (rare) duplicate path instead of writing a
  /// cold field on every in-order ACK: any progress changes cum_acked, so a
  /// mismatch here means "first dup of a new stall".
  std::uint64_t dup_base = 0;
  sim::Time rto = 0;               ///< 0 = derive as 3 x base_rtt at start.
  sim::Time last_progress_time = 0;
  sim::Time last_retransmit_time = -1;
  sim::TimerId rto_timer = 0;      ///< On the host's timing wheel.
  bool rto_timer_armed = false;

  // Pacing bookkeeping (owned by Host).  A flow waiting out its pacing gap
  // holds one entry in the host NIC arbiter's ready queue instead of a
  // per-flow timer event; `pacing_queued` guards that at most one entry per
  // flow exists.
  sim::Time next_tx_time = 0;
  bool pacing_queued = false;

  // Controller-internal deadline (DCQCN recovery), mirrored onto the host
  // wheel; cc_timer_at caches the armed deadline so unchanged deadlines
  // skip the cancel/re-arm round trip.
  sim::TimerId cc_timer = 0;
  sim::Time cc_timer_at = -1;

  /// This flow's current contribution to Host::total_send_rate(): its
  /// min(rate, line_rate) while unfinished, else 0.  Maintained by the Host
  /// wherever the controller can change `rate` (see sync_rate_contribution).
  sim::Rate rate_contribution = 0.0;

  cc::CcEngine cc;

  /// Slab slot while the flow is in flight inside a Host; kInvalidFlowIdx
  /// for standalone records and once the flow has finished (the slot is
  /// swap-compacted away and the final values live here again).
  FlowIdx hot_idx = kInvalidFlowIdx;

  std::uint64_t inflight_bytes() const { return snd_nxt - cum_acked; }
  bool all_sent() const { return snd_nxt >= spec.size_bytes; }

  /// Window of at least one MTU is always grantable so flows cannot stall
  /// permanently at a zero window.
  static constexpr double kMinWindowBytes = 1.0;
  /// "Unlimited" window for pure rate-based protocols (DCQCN).
  static constexpr double kUnlimitedWindow =
      std::numeric_limits<double>::max() / 4;
};

/// View over a standalone record's own members (declared in flow_view.h;
/// defined here where FlowTx is complete).
inline FlowView::FlowView(FlowTx& f)
    : FlowView(f.snd_nxt, f.cum_acked, f.window_bytes, f.rate, f.next_tx_time,
               f.line_rate, f.base_rtt, f.mtu, f.path_hops) {}

}  // namespace fastcc::net
