// SwitchNode: an output-queued switch with ECMP forwarding.
//
// Routing tables are populated by Network::build_routes() with every
// equal-cost next-hop port per destination; a deterministic per-flow hash
// picks among them, so a flow's path is stable (no packet reordering) while
// distinct flows spread across the fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "util/contracts.h"

namespace fastcc::net {

class SwitchNode : public Node {
 public:
  SwitchNode(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {
    mark_as_switch();
  }

  /// Replaces the candidate egress ports toward `dst`.
  void set_routes(NodeId dst, std::vector<int> ports);

  /// ECMP choice this switch would make for the given flow (exposed for
  /// path-tracing and tests).
  int select_port(NodeId dst, FlowId flow, NodeId src) const;

  const std::vector<int>& routes(NodeId dst) const;

  /// Forwarding body, reachable without a vtable hop (see Node::deliver).
  FASTCC_SHARD_LOCAL void forward(FASTCC_CONSUMES PacketRef ref, int in_port);

 protected:
  void receive(FASTCC_CONSUMES PacketRef ref, int in_port) override;

 private:
  /// Built by Network::build_routes() before the run; read-only afterwards
  /// (ECMP lookups happen concurrently from every shard's worker).
  FASTCC_SHARD_SHARED_RO std::vector<std::vector<int>> routes_by_dst_;
  /// Forwarding-path mirror of routes_by_dst_: one dense word per
  /// destination (candidate count in the top byte, offset into flat_ports_
  /// below) so the per-packet lookup is two dependent loads into arrays a
  /// few hundred bytes long — L1-resident — instead of chasing a
  /// vector-of-vectors through two cold lines.  set_routes() appends the
  /// new candidate list and repoints the word; a re-set destination strands
  /// its old range (routes are built once per topology, so the waste is
  /// bytes, not growth).
  FASTCC_SHARD_SHARED_RO std::vector<std::uint32_t> route_ref_;
  FASTCC_SHARD_SHARED_RO std::vector<std::int16_t> flat_ports_;
  static const std::vector<int> kNoRoutes;
};

}  // namespace fastcc::net
