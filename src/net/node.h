// Node: common base for switches and hosts.
//
// A node owns its egress ports and the PFC ingress accounting shared by all
// node types.  Packet arrival flows through deliver(), which updates PFC
// state and hands the packet to the subclass via receive().  Packets live in
// a shared PacketPool (owned by the Network, or bound explicitly in tests)
// and travel as 4-byte PacketRef handles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "sim/timing_wheel.h"
#include "util/contracts.h"

namespace fastcc::net {

/// Priority Flow Control thresholds, in bytes of per-ingress-port backlog.
/// Pause fires when backlog exceeds `pause_bytes`; resume when it drops back
/// below `resume_bytes`.  Disabled when pause_bytes == 0.
struct PfcParams {
  std::uint64_t pause_bytes = 0;
  std::uint64_t resume_bytes = 0;
  bool enabled() const { return pause_bytes > 0; }
};

class Node {
 public:
  Node(sim::Simulator& simulator, NodeId id, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Creates a new (unconnected) egress port and returns its index.
  int add_port();
  Port& port(int i) { return *ports_[i]; }
  const Port& port(int i) const { return *ports_[i]; }
  int port_count() const { return static_cast<int>(ports_.size()); }

  void set_pfc(const PfcParams& pfc) { pfc_ = pfc; }

  /// Binds the shared packet arena.  Every node wired into the same fabric
  /// must share one pool — handles cross node boundaries.  Network does this
  /// automatically; standalone test harnesses bind explicitly.
  void set_packet_pool(PacketPool* pool);
  PacketPool* packet_pool() { return pool_; }

  /// Re-homes this node (and its ports and timing wheel) onto a shard's
  /// private simulator and packet pool.  Space-parallel execution builds the
  /// topology against one simulator, then rebinds each node to the event
  /// queue of the shard that owns it.  Legal only before the first run:
  /// no event, timer, or live packet may be outstanding.
  void rebind_shard(sim::Simulator& simulator, PacketPool* pool);

  /// Entry point for packets arriving off the wire.  `in_port` is the index
  /// of this node's reverse-direction port for the arrival link.  Worker
  /// phase: runs only on the thread currently advancing this node's shard.
  FASTCC_SHARD_LOCAL void deliver(FASTCC_CONSUMES PacketRef ref, int in_port);

  /// Batched arrival: `first` heads an intra-burst chain linked through
  /// Packet::batch_next, all transmitted back-to-back on the same link and
  /// delivered in one event at the *last* packet's arrival instant (NIC
  /// interrupt coalescing: causal, never early).  The base implementation
  /// simply walks the chain through deliver(); Host overrides it to
  /// coalesce the chain's ACKs into a single per-flow CC / arbiter pass.
  FASTCC_SHARD_LOCAL virtual void deliver_batch(FASTCC_CONSUMES PacketRef first,
                                                int in_port);

  /// True when this node wants chained deliver_batch() arrivals.  Ports
  /// consult the *peer* node: switches keep exact per-packet arrival events
  /// (store-and-forward timing must stay per-packet so forwarding decisions
  /// see each arrival; egress priority is still re-evaluated at every burst
  /// boundary — see Port's bulk drain), hosts opt in — they terminate
  /// flows, so quantizing intra-burst arrival times to the burst end only
  /// perturbs RTT samples by sub-burst noise.
  virtual bool coalesces_deliveries() const { return false; }

  /// True while any ingress port of this node has a PFC pause outstanding
  /// upstream.  The bulk drain stops burst formation after one packet in
  /// that state so resume timing (driven by departure accounting) stays
  /// exactly per-packet while PFC is actively throttling an upstream.
  bool any_ingress_paused() const { return paused_ingress_count_ > 0; }

  /// Called by a Port when a packet starts serialization (or dies in a tail
  /// drop) and thus leaves the node's buffer: releases the PFC ingress
  /// accounting.
  void on_packet_departed(const Packet& p);

  sim::Simulator& simulator() { return *sim_; }

  /// This node's timing wheel: however many local timers (pacing, RTO,
  /// CC recovery, monitor sampling) are pending, the global event queue
  /// carries at most one entry for this node.
  sim::WheelScheduler& wheel() { return wheel_; }

 protected:
  /// Subclass packet handling (forwarding for switches, host protocol).
  /// The callee owns the handle: forward it or release it.  Worker phase.
  FASTCC_SHARD_LOCAL virtual void receive(FASTCC_CONSUMES PacketRef ref,
                                          int in_port) = 0;

  /// Set once by SwitchNode's constructor: deliver() dispatches forwarding
  /// statically (a predictable branch) instead of through the vtable — the
  /// majority of deliveries in a multi-hop fabric land on switches, and the
  /// indirect call's target otherwise alternates per event.
  void mark_as_switch() { is_switch_ = true; }

  /// Consumes a packet at this node (hosts): releases PFC accounting.
  void consume(const Packet& p);

  /// Ingress PFC accounting (exposed to Host's deliver_batch override,
  /// which replays deliver()'s accounting per chained packet).
  void pfc_account(int in_port, std::int64_t delta_bytes);

  sim::Simulator* sim_;  ///< Never null; a pointer only so rebind_shard works.

 private:
  FASTCC_SHARD_LOCAL sim::WheelScheduler wheel_{*sim_};

  void send_pfc(int in_port, bool pause);

  NodeId id_;
  std::string name_;
  FASTCC_SHARD_LOCAL std::vector<std::unique_ptr<Port>> ports_;
  FASTCC_SHARD_LOCAL PacketPool* pool_ = nullptr;

  bool is_switch_ = false;
  PfcParams pfc_;
  FASTCC_SHARD_LOCAL std::vector<std::uint64_t> ingress_bytes_;
  FASTCC_SHARD_LOCAL std::vector<bool> ingress_paused_;  // pause sent upstream
  FASTCC_SHARD_LOCAL int paused_ingress_count_ = 0;      // popcount of above
};

}  // namespace fastcc::net
