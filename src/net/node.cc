#include "net/node.h"

#include <cassert>
#include <utility>

#include "net/shard.h"
#include "net/switch_node.h"

namespace fastcc::net {

Node::Node(sim::Simulator& simulator, NodeId id, std::string name)
    : sim_(&simulator), id_(id), name_(std::move(name)) {}

int Node::add_port() {
  const int idx = static_cast<int>(ports_.size());
  ports_.push_back(std::make_unique<Port>(*sim_, this, idx));
  ports_.back()->set_packet_pool(pool_);
  ingress_bytes_.push_back(0);
  ingress_paused_.push_back(false);
  return idx;
}

void Node::set_packet_pool(PacketPool* pool) {
  pool_ = pool;
  for (auto& p : ports_) p->set_packet_pool(pool);
}

void Node::rebind_shard(sim::Simulator& simulator, PacketPool* pool) {
  sim_ = &simulator;
  wheel_.rebind(simulator);
  set_packet_pool(pool);
  for (auto& p : ports_) p->rebind_simulator(simulator);
}

FASTCC_SHARD_LOCAL void Node::deliver(FASTCC_CONSUMES PacketRef ref,
                                      int in_port) {
  assert(in_port >= 0 && in_port < port_count());
  assert(pool_ != nullptr && "node has no packet pool bound");
  Packet& p = pool_->get(ref);
  // PFC control frames act directly on the reverse-direction transmitter and
  // never enter queues; their pool slot is recycled on the spot.
  if (p.type == PacketType::kPfcPause || p.type == PacketType::kPfcResume) {
    assert(p.pfc_port >= 0 && p.pfc_port < port_count());
    ports_[p.pfc_port]->set_paused(p.type == PacketType::kPfcPause);
    // PFC control frames bypass queues and are never ingress-accounted —
    // pfc_account() runs only on the data/ACK path below this branch — so
    // there is no accounting to discharge before recycling the slot.
    // lint:allow(unbalanced-pfc -- PFC frames are never ingress-accounted)
    pool_->release(ref);
    return;
  }
  p.ingress_port = in_port;
  pfc_account(in_port, static_cast<std::int64_t>(p.wire_bytes));
  if (is_switch_) {
    static_cast<SwitchNode*>(this)->forward(ref, in_port);
  } else {
    receive(ref, in_port);
  }
}

FASTCC_SHARD_LOCAL void Node::deliver_batch(FASTCC_CONSUMES PacketRef first,
                                            int in_port) {
  while (first.valid()) {
    // Read the link *before* deliver(): the callee may forward or release
    // the packet, recycling the slot (and with it batch_next).
    Packet& p = pool_->get(first);
    const PacketRef next{p.batch_next};
    p.batch_next = PacketRef::kInvalid;
    // The chain's next packet is known now; fetch it under this delivery.
    if (next.valid()) pool_->prefetch(next);
    deliver(first, in_port);
    first = next;
  }  // lint:allow(path-leak -- chain cursor: every link was transferred to deliver; the tail link is kInvalid)
}

FASTCC_SHARD_LOCAL void Node::on_packet_departed(const Packet& p) {
  if (p.ingress_port >= 0) {
    pfc_account(p.ingress_port, -static_cast<std::int64_t>(p.wire_bytes));
  }
}

void Node::consume(const Packet& p) {
  if (p.ingress_port >= 0) {
    pfc_account(p.ingress_port, -static_cast<std::int64_t>(p.wire_bytes));
  }
}

void Node::pfc_account(int in_port, std::int64_t delta_bytes) {
  if (!pfc_.enabled()) return;
  auto& bytes = ingress_bytes_[in_port];
  assert(delta_bytes >= 0 ||
         bytes >= static_cast<std::uint64_t>(-delta_bytes));
  bytes = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(bytes) + delta_bytes);
  if (!ingress_paused_[in_port] && bytes > pfc_.pause_bytes) {
    ingress_paused_[in_port] = true;
    ++paused_ingress_count_;
    send_pfc(in_port, /*pause=*/true);
  } else if (ingress_paused_[in_port] && bytes <= pfc_.resume_bytes) {
    ingress_paused_[in_port] = false;
    --paused_ingress_count_;
    send_pfc(in_port, /*pause=*/false);
  }
}

FASTCC_SHARD_LOCAL void Node::send_pfc(int in_port, bool pause) {
  Port& reverse = *ports_[in_port];
  if (!reverse.connected()) return;
  // PFC frames are tiny and sent at highest priority; model them as arriving
  // after one propagation delay without consuming queue space.  The frame is
  // pool-allocated (chunked storage: any Packet& the caller holds across
  // this alloc stays valid) and released by the peer's deliver().
  const PacketRef ref = pool_->alloc();
  Packet& frame = pool_->get(ref);
  frame.type = pause ? PacketType::kPfcPause : PacketType::kPfcResume;
  frame.wire_bytes = 64;
  frame.pfc_port = reverse.peer_port();
  Node* peer = reverse.peer();
  const int arrival_port = reverse.peer_port();  // valid index on peer
  if (CrossShardSink* sink = reverse.cross_shard_sink()) {
    // The pause/resume frame crosses a shard boundary: like data in
    // Port::start_tx, it is serialized out of this shard's pool into the
    // mailbox and re-materialized by the owner of the peer node.
    sink->deposit(pool_->export_release(ref),
                  sim_->now() + reverse.propagation_delay(), peer->id(),
                  arrival_port);
    return;
  }
  auto arrive = [peer, ref, arrival_port] { peer->deliver(ref, arrival_port); };
  static_assert(
      sizeof(arrive) <= 24 && sim::UniqueFunction::fits_inline<decltype(arrive)>,
      "PFC delivery must stay a handle-sized inline closure");
  sim_->after(reverse.propagation_delay(), std::move(arrive));
}

}  // namespace fastcc::net
