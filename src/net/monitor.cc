#include "net/monitor.h"

#include <utility>

namespace fastcc::net {

QueueMonitor::QueueMonitor(sim::Simulator& simulator, const Port& port,
                           sim::Time interval, std::string label,
                           std::function<bool()> keep_running)
    : sim_(simulator),
      port_(port),
      interval_(interval),
      series_(std::move(label)),
      keep_running_(std::move(keep_running)) {}

void QueueMonitor::arm_next() {
  if (wheel_ != nullptr) {
    wheel_->arm(sim_.now() + interval_, [this] { sample(); });
  } else {
    sim_.after(interval_, [this] { sample(); });
  }
}

void QueueMonitor::start() { arm_next(); }

void QueueMonitor::sample() {
  series_.add(sim_.now(), static_cast<double>(port_.data_queue_bytes()));
  if (keep_running_ == nullptr || keep_running_()) arm_next();
}

UtilizationMonitor::UtilizationMonitor(sim::Simulator& simulator,
                                       const Port& port, sim::Time interval,
                                       std::string label,
                                       std::function<bool()> keep_running)
    : sim_(simulator),
      port_(port),
      interval_(interval),
      series_(std::move(label)),
      keep_running_(std::move(keep_running)) {}

void UtilizationMonitor::arm_next() {
  if (wheel_ != nullptr) {
    wheel_->arm(sim_.now() + interval_, [this] { sample(); });
  } else {
    sim_.after(interval_, [this] { sample(); });
  }
}

void UtilizationMonitor::start() {
  last_tx_bytes_ = static_cast<double>(port_.tx_bytes_total()) -
                   port_.unserialized_tx_bytes(sim_.now());
  arm_next();
}

void UtilizationMonitor::sample() {
  // The bulk drain books a burst's tx counter at its commit event; subtract
  // the still-serializing remainder so per-window readings stay <= capacity.
  const double tx = static_cast<double>(port_.tx_bytes_total()) -
                    port_.unserialized_tx_bytes(sim_.now());
  const double sent = tx - last_tx_bytes_;
  last_tx_bytes_ = tx;
  const double capacity =
      port_.bandwidth() * static_cast<double>(interval_);
  series_.add(sim_.now(), capacity > 0.0 ? sent / capacity : 0.0);
  if (keep_running_ == nullptr || keep_running_()) arm_next();
}

double UtilizationMonitor::mean_utilization() const {
  if (series_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : series_.points()) sum += p.value;
  return sum / static_cast<double>(series_.size());
}

}  // namespace fastcc::net
