// FlowSlab: per-host struct-of-arrays storage for the per-ACK hot half of
// every unfinished flow.
//
// Motivation (DESIGN.md §11): FlowTx is a ~250-byte AoS record whose per-ACK
// hot fields shared cache lines with loss-recovery and timer bookkeeping, so
// the NIC arbiter heap and the window/pacing gates dragged cold lines into
// L1 on every packet.  The slab moves the hot fields into dense parallel
// arrays indexed by a slab-local FlowIdx: the arbiter drain and
// Host::try_send now touch only hot lines, and flows that finish are
// swap-compacted out so the arrays stay dense for the flows still flying.
//
// Ownership and the FlowIdx <-> FlowId mapping:
//   * The Host's insertion-ordered flow table owns the cold FlowTx records
//     forever (post-run queries read them); the slab owns only the hot
//     arrays and the per-slot replicated constants.
//   * FlowTx::hot_idx points record -> slot; flow_id[idx] points slot ->
//     flow.  compact() moves the tail slot into the freed hole, so a
//     FlowIdx is stable only until the next flow finishes — long-lived
//     structures (the arbiter heap) carry (FlowId, FlowIdx-hint) pairs and
//     revalidate the hint against flow_id[] before trusting it.
//   * install() may grow (reallocate) the arrays: never hold a FlowView or
//     an element reference across a flow installation.
//
// The per-flow constants (size_bytes, mtu, line_rate, base_rtt, dst,
// flow_id) are deliberately replicated out of the cold record so the send
// loop is slab-complete: try_send reads nothing but these arrays.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "net/flow_view.h"
#include "util/contracts.h"

namespace fastcc::net {

class FASTCC_SHARD_LOCAL FlowSlab {
 public:
  FlowIdx size() const { return static_cast<FlowIdx>(flow_id.size()); }
  bool empty() const { return flow_id.empty(); }

  /// Appends a slot seeded from `cold`'s install-time values and stamps
  /// cold.hot_idx.  Invalidates outstanding views/references (growth).
  FlowIdx install(FlowTx& cold) {
    const FlowIdx idx = size();
    snd_nxt.push_back(cold.snd_nxt);
    cum_acked.push_back(cold.cum_acked);
    window_bytes.push_back(cold.window_bytes);
    rate.push_back(cold.rate);
    next_tx_time.push_back(cold.next_tx_time);
    rate_contribution.push_back(cold.rate_contribution);
    acks_received.push_back(cold.acks_received);
    last_progress_time.push_back(cold.last_progress_time);
    pacing_queued.push_back(cold.pacing_queued ? 1 : 0);
    size_bytes.push_back(cold.spec.size_bytes);
    mtu.push_back(cold.mtu);
    line_rate.push_back(cold.line_rate);
    base_rtt.push_back(cold.base_rtt);
    path_hops.push_back(cold.path_hops);
    dst.push_back(cold.spec.dst);
    flow_id.push_back(cold.spec.id);
    cold.hot_idx = idx;
    return idx;
  }

  /// Snapshots slot `i`'s current values back into the cold record (the
  /// archive the completion callback and Host::flow() expose).
  void write_back(FlowIdx i, FlowTx& cold) const {
    assert(i < size() && cold.hot_idx == i);
    cold.snd_nxt = snd_nxt[i];
    cold.cum_acked = cum_acked[i];
    cold.window_bytes = window_bytes[i];
    cold.rate = rate[i];
    cold.next_tx_time = next_tx_time[i];
    cold.rate_contribution = rate_contribution[i];
    cold.acks_received = acks_received[i];
    cold.last_progress_time = last_progress_time[i];
    cold.pacing_queued = pacing_queued[i] != 0;
  }

  /// Frees slot `i` by moving the tail slot into it (swap compaction) and
  /// shrinking every array by one.  Returns the FlowId that now lives at
  /// `i` (the former tail) so the caller can re-stamp that record's
  /// hot_idx, or kInvalidNode-like 0-sized result when `i` was the tail.
  /// The freed record's own hot_idx must be cleared by the caller.
  std::pair<bool, FlowId> compact(FlowIdx i) {
    assert(i < size());
    const FlowIdx last = size() - 1;
    bool moved = false;
    FlowId moved_id = 0;
    if (i != last) {
      snd_nxt[i] = snd_nxt[last];
      cum_acked[i] = cum_acked[last];
      window_bytes[i] = window_bytes[last];
      rate[i] = rate[last];
      next_tx_time[i] = next_tx_time[last];
      rate_contribution[i] = rate_contribution[last];
      acks_received[i] = acks_received[last];
      last_progress_time[i] = last_progress_time[last];
      pacing_queued[i] = pacing_queued[last];
      size_bytes[i] = size_bytes[last];
      mtu[i] = mtu[last];
      line_rate[i] = line_rate[last];
      base_rtt[i] = base_rtt[last];
      path_hops[i] = path_hops[last];
      dst[i] = dst[last];
      flow_id[i] = flow_id[last];
      moved = true;
      moved_id = flow_id[i];
    }
    snd_nxt.pop_back();
    cum_acked.pop_back();
    window_bytes.pop_back();
    rate.pop_back();
    next_tx_time.pop_back();
    rate_contribution.pop_back();
    acks_received.pop_back();
    last_progress_time.pop_back();
    pacing_queued.pop_back();
    size_bytes.pop_back();
    mtu.pop_back();
    line_rate.pop_back();
    base_rtt.pop_back();
    path_hops.pop_back();
    dst.pop_back();
    flow_id.pop_back();
    return {moved, moved_id};
  }

  /// Controller-facing view of slot `i`.  Borrow only: dies with the next
  /// install().
  FlowView view(FlowIdx i) {
    assert(i < size());
    return FlowView(snd_nxt[i], cum_acked[i], window_bytes[i], rate[i],
                    next_tx_time[i], line_rate[i], base_rtt[i], mtu[i],
                    path_hops[i]);
  }

  std::uint64_t inflight_bytes(FlowIdx i) const {
    return snd_nxt[i] - cum_acked[i];
  }
  bool all_sent(FlowIdx i) const { return snd_nxt[i] >= size_bytes[i]; }

  // ---- Hot per-flow state (parallel arrays, indexed by FlowIdx). ----
  std::vector<std::uint64_t> snd_nxt;
  std::vector<std::uint64_t> cum_acked;
  std::vector<double> window_bytes;
  std::vector<sim::Rate> rate;
  std::vector<sim::Time> next_tx_time;
  std::vector<sim::Rate> rate_contribution;
  std::vector<std::uint64_t> acks_received;
  std::vector<sim::Time> last_progress_time;
  std::vector<std::uint8_t> pacing_queued;

  // ---- Replicated per-flow constants (immutable after install). ----
  std::vector<std::uint64_t> size_bytes;
  std::vector<std::uint32_t> mtu;
  std::vector<sim::Rate> line_rate;
  std::vector<sim::Time> base_rtt;
  std::vector<int> path_hops;
  std::vector<NodeId> dst;
  std::vector<FlowId> flow_id;
};

}  // namespace fastcc::net
