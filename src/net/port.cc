#include "net/port.h"

#include <cassert>
#include <optional>
#include <utility>

#include "net/node.h"

namespace fastcc::net {

Port::Port(sim::Simulator& simulator, Node* owner, int index)
    : sim_(simulator), owner_(owner), index_(index) {}

void Port::connect(Node* peer, int peer_port, sim::Rate bandwidth,
                   sim::Time propagation_delay) {
  assert(peer != nullptr && bandwidth > 0.0 && propagation_delay >= 0);
  peer_ = peer;
  peer_port_ = peer_port;
  bandwidth_ = bandwidth;
  prop_delay_ = propagation_delay;
}

void Port::enqueue(Packet&& p) {
  assert(connected() && "enqueue on unconnected port");
  if (queued_bytes_ + p.wire_bytes > buffer_limit_) {
    ++drops_;
    return;
  }
  // RED/ECN marking happens against the *data* backlog at enqueue time, the
  // same instantaneous-queue rule the DCQCN deployment paper describes.
  if (p.type == PacketType::kData && red_.enabled) {
    const std::uint64_t q = data_queued_bytes_;
    if (q >= red_.kmax_bytes) {
      p.ecn = true;
    } else if (q > red_.kmin_bytes && rng_ != nullptr) {
      const double span = static_cast<double>(red_.kmax_bytes - red_.kmin_bytes);
      const double prob =
          red_.pmax * static_cast<double>(q - red_.kmin_bytes) / span;
      if (rng_->chance(prob)) p.ecn = true;
    }
  }
  queued_bytes_ += p.wire_bytes;
  if (p.type == PacketType::kData) {
    data_queued_bytes_ += p.wire_bytes;
    if (data_queued_bytes_ > max_queued_bytes_)
      max_queued_bytes_ = data_queued_bytes_;
  }
  if (p.is_control()) {
    high_q_.push_back(std::move(p));
  } else {
    low_q_.push_back(std::move(p));
  }
  maybe_start_tx();
}

void Port::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (!paused_) maybe_start_tx();
}

void Port::maybe_start_tx() {
  if (busy_ || paused_) return;
  if (high_q_.empty() && low_q_.empty()) return;

  // Dequeue at transmission *start* so a control packet arriving mid-
  // serialization cannot displace the packet already on the wire.
  std::deque<Packet>& next_q = !high_q_.empty() ? high_q_ : low_q_;
  Packet p = std::move(next_q.front());
  next_q.pop_front();
  queued_bytes_ -= p.wire_bytes;
  if (p.type == PacketType::kData) data_queued_bytes_ -= p.wire_bytes;
  tx_bytes_ += p.wire_bytes;

  // INT stamp: backlog left behind on this port, cumulative tx including this
  // packet, at the moment serialization begins.
  if (p.type == PacketType::kData) {
    IntRecord rec;
    rec.timestamp = sim_.now();
    rec.tx_bytes = tx_bytes_;
    rec.qlen_bytes = static_cast<std::uint32_t>(data_queued_bytes_);
    rec.bandwidth = bandwidth_;
    p.push_int(rec);
  }

  // The packet has left this node's buffer: release PFC accounting.
  owner_->on_packet_departed(p);

  busy_ = true;
  const sim::Time tx_time = sim::serialization_time(p.wire_bytes, bandwidth_);
  auto done = [this, pkt = std::move(p)]() mutable { finish_tx(std::move(pkt)); };
  static_assert(sim::UniqueFunction::fits_inline<decltype(done)>,
                "per-hop tx closure must stay within the scheduler's inline "
                "buffer; grow UniqueFunction::kInlineSize if Packet grew");
  sim_.after(tx_time, std::move(done));
}

void Port::finish_tx(Packet&& p) {
  assert(busy_);
  // Hand the packet to the wire: it arrives after the propagation delay.
  Node* peer = peer_;
  const int in_port = peer_port_;
  auto arrive = [peer, in_port, pkt = std::move(p)]() mutable {
    peer->deliver(std::move(pkt), in_port);
  };
  static_assert(sim::UniqueFunction::fits_inline<decltype(arrive)>,
                "propagation closure must stay within the scheduler's inline "
                "buffer; grow UniqueFunction::kInlineSize if Packet grew");
  sim_.after(prop_delay_, std::move(arrive));

  busy_ = false;
  maybe_start_tx();
}

}  // namespace fastcc::net
