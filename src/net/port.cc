#include "net/port.h"

#include <cassert>
#include <utility>

#include "net/node.h"
#include "net/shard.h"

namespace fastcc::net {
namespace {

/// Burst chain bound for one coalescing peer: appended handles ride in
/// Packet::batch_next — ownership moves *into the chain* here, and the head
/// handle is handed to the single deliver/deliver_batch closure at commit.
struct BurstChain {
  PacketRef head;
  Packet* tail = nullptr;
  sim::Time arrival = 0;
  int count = 0;

  void chain_take(FASTCC_CONSUMES PacketRef ref, Packet& p, sim::Time at) {
    if (count == 0) {
      head = ref;
    } else {
      tail->batch_next = ref.bits;
    }
    tail = &p;
    arrival = at;
    // lint:allow(path-leak -- ownership moved into the chain: the handle stays reachable via head/batch_next)
    ++count;
  }
};

}  // namespace

Port::Port(sim::Simulator& simulator, Node* owner, int index)
    : sim_(&simulator), owner_(owner), index_(index) {}

void Port::connect(Node* peer, int peer_port, sim::Rate bandwidth,
                   sim::Time propagation_delay) {
  assert(peer != nullptr && bandwidth > 0.0 && propagation_delay >= 0);
  peer_ = peer;
  peer_port_ = peer_port;
  peer_coalesces_ = peer->coalesces_deliveries();
  bandwidth_ = bandwidth;
  prop_delay_ = propagation_delay;
}

void Port::enqueue(FASTCC_CONSUMES PacketRef ref) {
  assert(connected() && "enqueue on unconnected port");
  assert(pool_ != nullptr && "port has no packet pool bound");
  Packet& p = pool_->get(ref);
  if (queued_bytes_ + p.wire_bytes > buffer_limit_) {
    ++drops_;
    // The packet dies here, so its PFC ingress accounting must be released
    // with it — otherwise the upstream port stays paused forever once the
    // leaked bytes pin the count above the resume threshold.
    owner_->on_packet_departed(p);
    pool_->release(ref);
    return;
  }
  // RED/ECN marking happens against the *data* backlog at enqueue time, the
  // same instantaneous-queue rule the DCQCN deployment paper describes.
  if (p.type == PacketType::kData && red_.enabled) {
    const std::uint64_t q = data_queued_bytes_;
    if (q >= red_.kmax_bytes) {
      p.ecn = true;
    } else if (q > red_.kmin_bytes && rng_ != nullptr) {
      const double span = static_cast<double>(red_.kmax_bytes - red_.kmin_bytes);
      const double prob =
          red_.pmax * static_cast<double>(q - red_.kmin_bytes) / span;
      if (rng_->chance(prob)) p.ecn = true;
    }
  }
  queued_bytes_ += p.wire_bytes;
  if (p.type == PacketType::kData) {
    data_queued_bytes_ += p.wire_bytes;
    if (data_queued_bytes_ > max_queued_bytes_)
      max_queued_bytes_ = data_queued_bytes_;
  }
  (p.is_control() ? high_q_ : low_q_).push_back(ref);
  maybe_start_tx();
}

void Port::enqueue(Packet&& p) {
  assert(pool_ != nullptr && "port has no packet pool bound");
  const PacketRef ref = pool_->alloc();
  pool_->get(ref) = std::move(p);
  enqueue(ref);
}

void Port::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (!paused_) maybe_start_tx();
}

void Port::maybe_start_tx() {
  if (paused_) return;
  if (high_q_.empty() && low_q_.empty()) return;
  if (sim_->now() < wire_free_time_) {
    // A packet is still serializing; re-check the moment the wire frees up.
    arm_kick();
    return;
  }
  start_tx();
}

void Port::arm_kick() {
  if (kick_armed_) return;
  kick_armed_ = true;
  auto kick = [this] {
    kick_armed_ = false;
    maybe_start_tx();
  };
  static_assert(sizeof(kick) <= 24 && sim::UniqueFunction::fits_inline<decltype(kick)>,
                "dequeue kick must stay a handle-sized inline closure");
  sim_->at(wire_free_time_, std::move(kick));
}

void Port::start_tx() {
  // Bulk drain: commit up to kMaxBurstPackets back-to-back serializations in
  // this one event, each packet dequeued and accounted at its *analytic*
  // serialization-start instant (`start`), with one wire-clock update per
  // packet but no intermediate kick events.  Priority is resolved at burst
  // boundaries: every burst begins at a wire-free instant, so a control
  // packet queued by then still overtakes all queued data; one that arrives
  // *mid-burst* waits for the burst to end — at most kMaxBurstPackets-1
  // serializations, the standard store-and-forward slack a batching
  // transmitter exhibits.  (DESIGN.md §11: this boundary is what lets a
  // backlogged port run one event per burst instead of one kick per packet.)
  const bool coalesce = peer_coalesces_;
  Node* const peer = peer_;
  const int in_port = peer_port_;
  sim::Time start = sim_->now();

  BurstChain chain;

  for (int k = 0; k < kMaxBurstPackets; ++k) {
    const bool is_data = high_q_.empty();
    if (is_data && low_q_.empty()) break;
    PacketRing& next_q = is_data ? low_q_ : high_q_;
    const PacketRef ref = next_q.front();
    next_q.pop_front();
    // Overlap the next committed packet's header fetch with this one's
    // serialization bookkeeping (INT stamp, PFC release, wire-clock math).
    if (!next_q.empty()) pool_->prefetch(next_q.front());
    Packet& p = pool_->get(ref);
    queued_bytes_ -= p.wire_bytes;
    if (p.type == PacketType::kData) data_queued_bytes_ -= p.wire_bytes;
    tx_bytes_ += p.wire_bytes;

    // INT stamp: backlog left behind on this port, cumulative tx including
    // this packet, at the moment its serialization begins.
    if (p.type == PacketType::kData) {
      IntRecord rec;
      rec.timestamp = start;
      rec.tx_bytes = tx_bytes_;
      rec.qlen_bytes = static_cast<std::uint32_t>(data_queued_bytes_);
      rec.bandwidth = bandwidth_;
      p.push_int(rec);
    }

    // The packet has left this node's buffer: release PFC accounting.
    owner_->on_packet_departed(p);

    // A port sees a handful of wire sizes (full-MTU data, ACKs), so memoize
    // the last size -> serialization-time mapping and skip the FP division
    // on the streak.  Bandwidth is fixed after connect(), so size keys it.
    if (p.wire_bytes != last_ser_bytes_) {
      last_ser_bytes_ = p.wire_bytes;
      last_ser_time_ = sim::serialization_time(p.wire_bytes, bandwidth_);
    }
    wire_free_time_ = start + last_ser_time_;
    const sim::Time arrival = wire_free_time_ + prop_delay_;

    if (xshard_ != nullptr) {
      // Shard-boundary link: the peer lives on another worker's simulator,
      // so a handle into *this* pool is meaningless there.  Serialize the
      // packet out of the pool (export_release copies the bytes and retires
      // the handle) into the mailbox; the destination shard re-materializes
      // it in its own pool and schedules the delivery at the same arrival
      // instant.  Never chained: exact per-packet arrivals keep the
      // conservative-sync horizon math untouched.
      xshard_->deposit(pool_->export_release(ref), arrival, peer->id(),
                       in_port);
    } else if (coalesce) {
      chain.chain_take(ref, p, arrival);
    } else {
      // Fused per-hop event: the peer's delivery is scheduled directly at
      // start + tx_time + prop_delay — the packet rides as a 4-byte handle,
      // and no separate end-of-serialization event exists.
      auto arrive = [peer, ref, in_port] { peer->deliver(ref, in_port); };
      static_assert(
          sizeof(arrive) <= 24 &&
              sim::UniqueFunction::fits_inline<decltype(arrive)>,
          "per-hop delivery must stay a handle-sized inline closure (node "
          "pointer + PacketRef + port), never a by-value Packet");
      sim_->at(arrival, std::move(arrive));
    }

    start = wire_free_time_;
    // While this node holds a PFC pause against an upstream, departure
    // accounting must stay per-packet — resume timing hangs off it — so the
    // burst stops growing here.
    if (owner_->any_ingress_paused()) break;
  }

  if (chain.count == 1) {
    const PacketRef ref = chain.head;
    auto arrive = [peer, ref, in_port] { peer->deliver(ref, in_port); };
    static_assert(sizeof(arrive) <= 24 &&
                      sim::UniqueFunction::fits_inline<decltype(arrive)>,
                  "per-hop delivery must stay a handle-sized inline closure");
    sim_->at(chain.arrival, std::move(arrive));
  } else if (chain.count > 1) {
    // One event for the whole chain, at the last packet's arrival instant
    // (causal for every chained packet; the receiver coalesces).
    const PacketRef ref = chain.head;
    auto arrive = [peer, ref, in_port] { peer->deliver_batch(ref, in_port); };
    static_assert(sizeof(arrive) <= 24 &&
                      sim::UniqueFunction::fits_inline<decltype(arrive)>,
                  "batched delivery must stay a handle-sized inline closure");
    sim_->at(chain.arrival, std::move(arrive));
  }

  // Self-schedule the next dequeue at the end of this burst — but only when
  // there is already a backlog to drain.  An idle port costs no kick event;
  // a later enqueue re-arms it via maybe_start_tx.
  if (!high_q_.empty() || !low_q_.empty()) arm_kick();
}

}  // namespace fastcc::net
