#include "net/port.h"

#include <cassert>
#include <utility>

#include "net/node.h"
#include "net/shard.h"

namespace fastcc::net {

Port::Port(sim::Simulator& simulator, Node* owner, int index)
    : sim_(&simulator), owner_(owner), index_(index) {}

void Port::connect(Node* peer, int peer_port, sim::Rate bandwidth,
                   sim::Time propagation_delay) {
  assert(peer != nullptr && bandwidth > 0.0 && propagation_delay >= 0);
  peer_ = peer;
  peer_port_ = peer_port;
  bandwidth_ = bandwidth;
  prop_delay_ = propagation_delay;
}

void Port::enqueue(FASTCC_CONSUMES PacketRef ref) {
  assert(connected() && "enqueue on unconnected port");
  assert(pool_ != nullptr && "port has no packet pool bound");
  Packet& p = pool_->get(ref);
  if (queued_bytes_ + p.wire_bytes > buffer_limit_) {
    ++drops_;
    // The packet dies here, so its PFC ingress accounting must be released
    // with it — otherwise the upstream port stays paused forever once the
    // leaked bytes pin the count above the resume threshold.
    owner_->on_packet_departed(p);
    pool_->release(ref);
    return;
  }
  // RED/ECN marking happens against the *data* backlog at enqueue time, the
  // same instantaneous-queue rule the DCQCN deployment paper describes.
  if (p.type == PacketType::kData && red_.enabled) {
    const std::uint64_t q = data_queued_bytes_;
    if (q >= red_.kmax_bytes) {
      p.ecn = true;
    } else if (q > red_.kmin_bytes && rng_ != nullptr) {
      const double span = static_cast<double>(red_.kmax_bytes - red_.kmin_bytes);
      const double prob =
          red_.pmax * static_cast<double>(q - red_.kmin_bytes) / span;
      if (rng_->chance(prob)) p.ecn = true;
    }
  }
  queued_bytes_ += p.wire_bytes;
  if (p.type == PacketType::kData) {
    data_queued_bytes_ += p.wire_bytes;
    if (data_queued_bytes_ > max_queued_bytes_)
      max_queued_bytes_ = data_queued_bytes_;
  }
  (p.is_control() ? high_q_ : low_q_).push_back(ref);
  maybe_start_tx();
}

void Port::enqueue(Packet&& p) {
  assert(pool_ != nullptr && "port has no packet pool bound");
  const PacketRef ref = pool_->alloc();
  pool_->get(ref) = std::move(p);
  enqueue(ref);
}

void Port::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (!paused_) maybe_start_tx();
}

void Port::maybe_start_tx() {
  if (paused_) return;
  if (high_q_.empty() && low_q_.empty()) return;
  if (sim_->now() < wire_free_time_) {
    // A packet is still serializing; re-check the moment the wire frees up.
    arm_kick();
    return;
  }
  start_tx();
}

void Port::arm_kick() {
  if (kick_armed_) return;
  kick_armed_ = true;
  auto kick = [this] {
    kick_armed_ = false;
    maybe_start_tx();
  };
  static_assert(sizeof(kick) <= 24 && sim::UniqueFunction::fits_inline<decltype(kick)>,
                "dequeue kick must stay a handle-sized inline closure");
  sim_->at(wire_free_time_, std::move(kick));
}

void Port::start_tx() {
  // Dequeue at transmission *start* so a control packet arriving mid-
  // serialization cannot displace the packet already on the wire.
  PacketRing& next_q = !high_q_.empty() ? high_q_ : low_q_;
  const PacketRef ref = next_q.front();
  next_q.pop_front();
  Packet& p = pool_->get(ref);
  queued_bytes_ -= p.wire_bytes;
  if (p.type == PacketType::kData) data_queued_bytes_ -= p.wire_bytes;
  tx_bytes_ += p.wire_bytes;

  // INT stamp: backlog left behind on this port, cumulative tx including this
  // packet, at the moment serialization begins.
  if (p.type == PacketType::kData) {
    IntRecord rec;
    rec.timestamp = sim_->now();
    rec.tx_bytes = tx_bytes_;
    rec.qlen_bytes = static_cast<std::uint32_t>(data_queued_bytes_);
    rec.bandwidth = bandwidth_;
    p.push_int(rec);
  }

  // The packet has left this node's buffer: release PFC accounting.
  owner_->on_packet_departed(p);

  // A port sees a handful of wire sizes (full-MTU data, ACKs), so memoize
  // the last size -> serialization-time mapping and skip the FP division on
  // the streak.  Bandwidth is fixed after connect(), so size alone keys it.
  if (p.wire_bytes != last_ser_bytes_) {
    last_ser_bytes_ = p.wire_bytes;
    last_ser_time_ = sim::serialization_time(p.wire_bytes, bandwidth_);
  }
  const sim::Time tx_time = last_ser_time_;
  wire_free_time_ = sim_->now() + tx_time;

  if (xshard_ != nullptr) {
    // Shard-boundary link: the peer lives on another worker's simulator, so
    // a handle into *this* pool is meaningless there.  Serialize the packet
    // out of the pool (export_release copies the bytes and retires the
    // handle) into the mailbox; the destination shard re-materializes it in
    // its own pool and schedules the delivery at the same arrival instant.
    xshard_->deposit(pool_->export_release(ref),
                     sim_->now() + tx_time + prop_delay_, peer_->id(),
                     peer_port_);
  } else {
    // Fused per-hop event: the peer's delivery is scheduled directly at
    // tx_time + prop_delay — the packet rides as a 4-byte handle, and no
    // separate end-of-serialization event exists.
    Node* peer = peer_;
    const int in_port = peer_port_;
    auto arrive = [peer, ref, in_port] { peer->deliver(ref, in_port); };
    static_assert(
        sizeof(arrive) <= 24 &&
            sim::UniqueFunction::fits_inline<decltype(arrive)>,
        "per-hop delivery must stay a handle-sized inline closure (node "
        "pointer + PacketRef + port), never a by-value Packet");
    sim_->after(tx_time + prop_delay_, std::move(arrive));
  }

  // Self-schedule the next dequeue at the end of this serialization — but
  // only when there is already a backlog to drain.  An idle port costs no
  // kick event; a later enqueue re-arms it via maybe_start_tx.
  if (!high_q_.empty() || !low_q_.empty()) arm_kick();
}

}  // namespace fastcc::net
