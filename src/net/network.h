// Network: owns nodes and wiring, builds ECMP routing tables, and answers
// path queries (base RTT, bottleneck bandwidth, hop count) that congestion
// control and the FCT-slowdown metric need.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/packet_pool.h"
#include "net/switch_node.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace fastcc::net {

/// Unloaded path properties between two hosts along a shortest path.
struct PathInfo {
  sim::Time base_rtt = 0;      ///< MTU data out + ACK back, no queueing.
  sim::Rate bottleneck = 0.0;  ///< Minimum link bandwidth on the path.
  int hops = 0;                ///< Forward-direction link count.
  sim::Time one_way_delay = 0; ///< Propagation + per-hop MTU serialization.
  /// Per-link bandwidths in path order (exact ideal-FCT computation).
  std::vector<sim::Rate> link_bandwidths;
};

class Network {
 public:
  explicit Network(sim::Simulator& simulator, std::uint64_t seed = 1);

  Host* add_host(const std::string& name);
  SwitchNode* add_switch(const std::string& name);

  /// Creates a full-duplex link: one egress port on each side, symmetric
  /// bandwidth and propagation delay.
  void connect(Node& a, Node& b, sim::Rate bandwidth, sim::Time prop_delay);

  /// Populates every switch's ECMP tables with all equal-cost shortest-path
  /// next hops toward every host.  Call once after wiring the topology.
  void build_routes();

  /// Computes unloaded path properties (shortest path, ECMP-independent for
  /// the symmetric topologies used here).
  PathInfo path(NodeId src, NodeId dst, std::uint32_t mtu = kDefaultMtu) const;

  Node* node(NodeId id) { return nodes_[id].get(); }
  const Node* node(NodeId id) const { return nodes_[id].get(); }
  std::size_t node_count() const { return nodes_.size(); }

  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<SwitchNode*>& switches() const { return switches_; }

  /// Applies RED marking parameters to every switch egress port (DCQCN).
  void set_red_all(const RedParams& red);
  /// Applies PFC thresholds to every switch.
  void set_pfc_all(const PfcParams& pfc);
  /// Applies a hard buffer cap to every switch egress port.
  void set_buffer_limit_all(std::uint64_t bytes);

  /// Total packets dropped across all ports (should be zero in the paper's
  /// lossless setting; experiments assert on it).
  std::uint64_t total_drops() const;

  sim::Rng& rng() { return rng_; }
  sim::Simulator& simulator() { return sim_; }

  /// The shared packet arena every node in this network allocates from.
  /// Exposed for leak checks (a drained simulation must have live() == 0).
  PacketPool& packet_pool() { return pool_; }
  const PacketPool& packet_pool() const { return pool_; }

 private:
  /// BFS distances (in hops) from `dst` over the undirected link graph.
  std::vector<int> hop_distances(NodeId dst) const;

  sim::Simulator& sim_;
  sim::Rng rng_;
  PacketPool pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Host*> hosts_;
  std::vector<SwitchNode*> switches_;
  bool routes_built_ = false;
};

}  // namespace fastcc::net
