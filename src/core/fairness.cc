#include "core/fairness.h"

namespace fastcc::core {

double jain_index(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(allocations.size());
  return (sum * sum) / (n * sum_sq);
}

double JainSampler::sample(sim::Time window_start, sim::Time now) {
  std::vector<double> throughput;
  throughput.reserve(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const net::FlowTx& f = *flows_[i];
    const std::uint64_t acked = f.cum_acked;
    const std::uint64_t delta = acked - last_acked_[i];
    last_acked_[i] = acked;
    const bool started = f.spec.start_time <= now;
    const bool finished_before_window =
        f.finished() && f.finish_time < window_start;
    if (!started || finished_before_window) continue;
    throughput.push_back(static_cast<double>(delta));
  }
  if (throughput.empty()) return -1.0;
  return jain_index(throughput);
}

}  // namespace fastcc::core
