// Sampling Frequency (Section IV-B / V-B).
//
// Instead of reacting to at most one congestion signal per RTT, a protocol
// using Sampling Frequency commits a rate *decrease* every `s` ACKs.  Flows
// with more bandwidth receive more ACKs and therefore decrease more often,
// which is precisely the per-signal fairness effect that once-per-RTT
// reaction destroys (Section III-B).  Rate increases stay on the per-RTT
// schedule — increasing per ACK would favour fast flows and undo the gain.
#pragma once

namespace fastcc::core {

class SamplingFrequency {
 public:
  /// `acks_per_decrease` == 0 disables SF (protocol falls back to per-RTT).
  explicit SamplingFrequency(int acks_per_decrease = 0)
      : s_(acks_per_decrease) {}

  bool enabled() const { return s_ > 0; }
  int period() const { return s_; }

  /// Counts one ACK; returns true when a decrease-commit is due.
  bool tick() {
    if (!enabled()) return false;
    if (++count_ >= s_) {
      count_ = 0;
      return true;
    }
    return false;
  }

  void reset() { count_ = 0; }
  int acks_since_commit() const { return count_; }

 private:
  int s_;
  int count_ = 0;
};

}  // namespace fastcc::core
