// Jain fairness index and windowed per-flow throughput sampling.
//
// The paper plots Jain's index over time during incast: at each sample the
// index is computed over the *delivered* throughput of every flow that was
// active in the window (bytes cumulatively acked during the window / window
// length).  Using delivered bytes rather than the sender's configured rate
// keeps the metric protocol-agnostic (ack-clocked Swift has no explicit
// rate).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"

namespace fastcc::core {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 is a
/// perfectly equal allocation.  Zero-valued entries count toward n.
/// Returns 1.0 for empty or all-zero input (vacuously fair).
double jain_index(std::span<const double> allocations);

/// Samples throughput of a fixed set of flows over consecutive windows.
class JainSampler {
 public:
  /// `flows` must outlive the sampler.
  explicit JainSampler(std::vector<const net::FlowTx*> flows)
      : flows_(std::move(flows)), last_acked_(flows_.size(), 0) {}

  /// Computes the Jain index over throughput since the previous sample.
  /// Flows are included if they were active at any point in the window
  /// (started before `now` and not finished before the window began).
  /// Returns -1 when no flow was active (caller usually skips the point).
  double sample(sim::Time window_start, sim::Time now);

 private:
  std::vector<const net::FlowTx*> flows_;
  std::vector<std::uint64_t> last_acked_;
};

}  // namespace fastcc::core
