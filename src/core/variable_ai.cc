#include "core/variable_ai.h"

namespace fastcc::core {

void VariableAi::on_rtt_boundary(bool no_congestion_entire_rtt) {
  if (!p_.enabled) return;
  const double measured = rtt_max_congestion_;

  // Algorithm 1, lines 2-4: mint tokens proportional to congestion beyond
  // the threshold (a queue roughly one path-BDP deep implies a new sender).
  if (measured > p_.token_thresh) {
    bank_ = std::min(measured / p_.ai_div + bank_, p_.bank_cap);
  }

  // Algorithm 1, lines 5-13: dampener bookkeeping.  The dampener climbs with
  // congestion severity and only unwinds once the bank has drained.
  if (measured > p_.token_thresh) {
    dampener_ += measured / p_.token_thresh;
  } else if (bank_ == 0.0) {
    if (no_congestion_entire_rtt) {
      dampener_ = 0.0;
    } else if (measured < p_.token_thresh) {
      dampener_ = std::max(dampener_ - 1.0, 0.0);
    }
  }

  rtt_max_congestion_ = 0.0;  // Algorithm 1, line 14
}

double VariableAi::ai_multiplier(bool spend) {
  if (!p_.enabled) return 1.0;
  // Algorithm 2.
  double tokens = std::min(p_.ai_cap, bank_);
  if (spend) {
    bank_ = std::max(bank_ - tokens, 0.0);
  }
  const double divisor = dampener_ / p_.dampener_constant + 1.0;
  tokens = std::max(tokens / divisor, 1.0);
  return tokens;
}

}  // namespace fastcc::core
