#include "core/convergence.h"

#include <algorithm>

namespace fastcc::core {

ConvergenceSummary summarize_convergence(const stats::TimeSeries& jain,
                                         double threshold) {
  ConvergenceSummary s;
  const auto& pts = jain.points();
  if (pts.empty()) return s;

  s.settle_time = jain.settle_time(threshold);
  double sum = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double v = pts[i].value;
    sum += v;
    if (s.first_reach_time < 0 && v >= threshold) {
      s.first_reach_time = pts[i].t;
    }
    if (i > 0) {
      const double dt = static_cast<double>(pts[i].t - pts[i - 1].t);
      const double deficit =
          (1.0 - pts[i].value + 1.0 - pts[i - 1].value) / 2.0;
      s.unfairness_integral_ns += std::max(deficit, 0.0) * dt;
      s.worst_index = std::min(s.worst_index, v);
    }
  }
  s.mean_index = sum / static_cast<double>(pts.size());
  return s;
}

}  // namespace fastcc::core
