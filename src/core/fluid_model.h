// Fluid model of multiplicative decrease cadence (Section IV-B, Figure 4).
//
// The paper compares two MD schedules for flows sharing a congested link:
//   per s ACKs:  S_i'(t) = -beta * S_i(t)^2 / (s * MTU)
//   per RTT:     R_i'(t) = -beta * R_i(t) / r
// Both admit closed forms; a generic RK4 integrator is provided as well so
// tests can cross-validate the two.  Fairness of a two-flow system is the
// rate gap (fast minus slow); Figure 4 plots the *difference* of the two
// schedules' gaps, (R1-R0) - (S1-S0), which is positive whenever Sampling
// Frequency has converged further.
#pragma once

#include <vector>

#include "sim/time.h"

namespace fastcc::core {

struct FluidModelParams {
  double beta = 0.5;        ///< MD strength per decrease interval.
  double rtt_ns = 30000.0;  ///< r: observed RTT driving the per-RTT schedule.
  double mtu_bytes = 1000.0;
  double s_acks = 30.0;     ///< Sampling Frequency (ACKs per decrease).
};

/// Closed-form per-s-ACK rate: 1/S(t) = 1/S0 + beta t / (s MTU).
double sampling_frequency_rate(double s0_bytes_per_ns, double t_ns,
                               const FluidModelParams& p);

/// Closed-form per-RTT rate: R(t) = R0 exp(-beta t / r).
double per_rtt_rate(double r0_bytes_per_ns, double t_ns,
                    const FluidModelParams& p);

/// Numerically integrates both ODEs with classic RK4 from the same initial
/// rate; returned pair is (sampling-frequency rate, per-RTT rate) at t_ns.
struct FluidRates {
  double sf_rate;
  double rtt_rate;
};
FluidRates integrate_rk4(double initial_rate, double t_ns, double dt_ns,
                         const FluidModelParams& p);

/// One point of the Figure 4 series.
struct FairnessPoint {
  double t_ns;
  double sf_gap;        ///< S1(t) - S0(t), bytes/ns.
  double rtt_gap;       ///< R1(t) - R0(t), bytes/ns.
  double difference;    ///< rtt_gap - sf_gap (positive: SF is fairer).
};

/// Generates the Figure 4 series for two flows with the given initial rates
/// (the paper uses 100 Gbps and 50 Gbps), sampled every `step_ns` until
/// `horizon_ns`.
std::vector<FairnessPoint> fairness_difference_series(
    double fast_rate, double slow_rate, double horizon_ns, double step_ns,
    const FluidModelParams& p);

/// The paper's analytic convergence condition: the SF schedule closes the
/// gap faster at t=0 iff 1/r < (C1 + C0) / (s * MTU).
bool sf_converges_faster(double fast_rate, double slow_rate,
                         const FluidModelParams& p);

}  // namespace fastcc::core
