// Fluid model of multiplicative decrease cadence (Section IV-B, Figure 4).
//
// The paper compares two MD schedules for flows sharing a congested link:
//   per s ACKs:  S_i'(t) = -beta * S_i(t)^2 / (s * MTU)
//   per RTT:     R_i'(t) = -beta * R_i(t) / r
// Both admit closed forms; a generic RK4 integrator is provided as well so
// tests can cross-validate the two.  Fairness of a two-flow system is the
// rate gap (fast minus slow); Figure 4 plots the *difference* of the two
// schedules' gaps, (R1-R0) - (S1-S0), which is positive whenever Sampling
// Frequency has converged further.
#pragma once

#include <vector>

#include "sim/time.h"
#include "util/contracts.h"

namespace fastcc::core {

struct FluidModelParams {
  double beta = 0.5;        ///< MD strength per decrease interval.
  /// r: observed RTT driving the per-RTT schedule.
  FASTCC_UNIT_NS double rtt_ns = 30000.0;
  FASTCC_UNIT_BYTES double mtu_bytes = 1000.0;
  double s_acks = 30.0;     ///< Sampling Frequency (ACKs per decrease).
};

/// Closed-form per-s-ACK rate: 1/S(t) = 1/S0 + beta t / (s MTU).
FASTCC_UNIT_BPNS double sampling_frequency_rate(
    FASTCC_UNIT_BPNS double s0_bytes_per_ns, FASTCC_UNIT_NS double t_ns,
    const FluidModelParams& p);

/// Closed-form per-RTT rate: R(t) = R0 exp(-beta t / r).
FASTCC_UNIT_BPNS double per_rtt_rate(FASTCC_UNIT_BPNS double r0_bytes_per_ns,
                                     FASTCC_UNIT_NS double t_ns,
                                     const FluidModelParams& p);

/// Numerically integrates both ODEs with classic RK4 from the same initial
/// rate; returned pair is (sampling-frequency rate, per-RTT rate) at t_ns.
struct FluidRates {
  FASTCC_UNIT_BPNS double sf_rate;
  FASTCC_UNIT_BPNS double rtt_rate;
};
FluidRates integrate_rk4(FASTCC_UNIT_BPNS double initial_rate,
                         FASTCC_UNIT_NS double t_ns,
                         FASTCC_UNIT_NS double dt_ns,
                         const FluidModelParams& p);

/// One point of the Figure 4 series.
struct FairnessPoint {
  FASTCC_UNIT_NS double t_ns;
  FASTCC_UNIT_BPNS double sf_gap;   ///< S1(t) - S0(t), bytes/ns.
  FASTCC_UNIT_BPNS double rtt_gap;  ///< R1(t) - R0(t), bytes/ns.
  double difference;    ///< rtt_gap - sf_gap (positive: SF is fairer).
};

/// Generates the Figure 4 series for two flows with the given initial rates
/// (the paper uses 100 Gbps and 50 Gbps), sampled every `step_ns` until
/// `horizon_ns`.
std::vector<FairnessPoint> fairness_difference_series(
    FASTCC_UNIT_BPNS double fast_rate, FASTCC_UNIT_BPNS double slow_rate,
    FASTCC_UNIT_NS double horizon_ns, FASTCC_UNIT_NS double step_ns,
    const FluidModelParams& p);

/// The paper's analytic convergence condition: the SF schedule closes the
/// gap faster at t=0 iff 1/r < (C1 + C0) / (s * MTU).
bool sf_converges_faster(FASTCC_UNIT_BPNS double fast_rate,
                         FASTCC_UNIT_BPNS double slow_rate,
                         const FluidModelParams& p);

}  // namespace fastcc::core
