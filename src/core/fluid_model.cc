#include "core/fluid_model.h"

#include <cassert>
#include <cmath>

namespace fastcc::core {

double sampling_frequency_rate(double s0_bytes_per_ns, double t_ns,
                               const FluidModelParams& p) {
  assert(s0_bytes_per_ns > 0.0);
  const double inv = 1.0 / s0_bytes_per_ns +
                     p.beta * t_ns / (p.s_acks * p.mtu_bytes);
  return 1.0 / inv;
}

double per_rtt_rate(double r0_bytes_per_ns, double t_ns,
                    const FluidModelParams& p) {
  return r0_bytes_per_ns * std::exp(-p.beta * t_ns / p.rtt_ns);
}

namespace {
double sf_derivative(double rate, const FluidModelParams& p) {
  return -p.beta * rate * rate / (p.s_acks * p.mtu_bytes);
}
double rtt_derivative(double rate, const FluidModelParams& p) {
  return -p.beta * rate / p.rtt_ns;
}

template <typename Deriv>
double rk4(double y0, double t_end, double dt, Deriv f) {
  double y = y0;
  double t = 0.0;
  while (t < t_end) {
    const double h = std::min(dt, t_end - t);
    const double k1 = f(y);
    const double k2 = f(y + 0.5 * h * k1);
    const double k3 = f(y + 0.5 * h * k2);
    const double k4 = f(y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t += h;
  }
  return y;
}
}  // namespace

FluidRates integrate_rk4(double initial_rate, double t_ns, double dt_ns,
                         const FluidModelParams& p) {
  FluidRates out;
  out.sf_rate =
      rk4(initial_rate, t_ns, dt_ns, [&p](double y) { return sf_derivative(y, p); });
  out.rtt_rate = rk4(initial_rate, t_ns, dt_ns,
                     [&p](double y) { return rtt_derivative(y, p); });
  return out;
}

std::vector<FairnessPoint> fairness_difference_series(
    double fast_rate, double slow_rate, double horizon_ns, double step_ns,
    const FluidModelParams& p) {
  std::vector<FairnessPoint> series;
  for (double t = 0.0; t <= horizon_ns; t += step_ns) {
    FairnessPoint pt;
    pt.t_ns = t;
    pt.sf_gap = sampling_frequency_rate(fast_rate, t, p) -
                sampling_frequency_rate(slow_rate, t, p);
    pt.rtt_gap = per_rtt_rate(fast_rate, t, p) - per_rtt_rate(slow_rate, t, p);
    pt.difference = pt.rtt_gap - pt.sf_gap;
    series.push_back(pt);
  }
  return series;
}

bool sf_converges_faster(double fast_rate, double slow_rate,
                         const FluidModelParams& p) {
  return 1.0 / p.rtt_ns < (fast_rate + slow_rate) / (p.s_acks * p.mtu_bytes);
}

}  // namespace fastcc::core
