// Convergence-to-fairness metrics (the paper's "third metric", Section I).
//
// The paper argues latency and throughput are not enough: how *fast* an
// unfair allocation becomes fair determines long-flow tails.  These helpers
// condense a Jain-index time series into comparable scalars.
#pragma once

#include "sim/time.h"
#include "stats/timeseries.h"

namespace fastcc::core {

struct ConvergenceSummary {
  /// First time the index reaches `threshold` (and never drops below it
  /// again); -1 if it never settles.
  sim::Time settle_time = -1;
  /// First time the index touches `threshold` at all; -1 if never.
  sim::Time first_reach_time = -1;
  /// Integral of (1 - index) dt over the series: the total "unfairness debt"
  /// accumulated during the run (lower is better).  Trapezoidal.
  double unfairness_integral_ns = 0.0;
  /// Mean index over the series.
  double mean_index = 0.0;
  /// Lowest index observed after the first sample (depth of the unfair dip).
  double worst_index = 1.0;
};

/// Summarizes a Jain-index series against a fairness threshold.
ConvergenceSummary summarize_convergence(const stats::TimeSeries& jain,
                                         double threshold = 0.9);

}  // namespace fastcc::core
