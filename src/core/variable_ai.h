// Variable Additive Increase (the paper's Algorithm 1 + Algorithm 2).
//
// VAI turns observed congestion into "AI tokens": when the per-RTT measured
// congestion exceeds Token_Thresh (evidence that a new flow joined), tokens
// accumulate in a bank; each rate update may spend up to AI_Cap tokens, each
// multiplying the protocol's base additive-increase step.  A dampener divides
// the effective tokens when congestion persists, breaking the
// AI->congestion->AI feedback loop; it only resets once the bank is empty
// *and* a full RTT passes with no congestion.
//
// Units of "measured congestion" are protocol-specific: bytes of switch queue
// for HPCC, nanoseconds of queueing delay for Swift.  The class is agnostic —
// Token_Thresh and AI_DIV are expressed in the caller's units.
#pragma once

#include <algorithm>

#include "util/contracts.h"

namespace fastcc::core {

struct VariableAiParams {
  bool enabled = false;
  double token_thresh = 0.0;      ///< Congestion level that mints tokens.
  double ai_div = 1.0;            ///< Congestion units per minted token.
  double bank_cap = 1000.0;       ///< Max banked tokens (Bank_Cap).
  double ai_cap = 100.0;          ///< Max tokens spent per update (AI_Cap).
  double dampener_constant = 8.0; ///< Dampener divisor scale.
};

class VariableAi {
 public:
  explicit VariableAi(const VariableAiParams& params) : p_(params) {}

  bool enabled() const { return p_.enabled; }

  /// Records one congestion sample (per ACK); the per-RTT "Measured
  /// Congestion" of Algorithm 1 is the maximum sample in the RTT.
  void observe(double measured_congestion) {
    rtt_max_congestion_ = std::max(rtt_max_congestion_, measured_congestion);
  }

  /// Algorithm 1, run once per RTT.  `no_congestion_entire_rtt` is the
  /// protocol's judgement (HPCC: max U < eta all RTT; Swift: no RTT sample
  /// above target) and gates the dampener reset.
  void on_rtt_boundary(bool no_congestion_entire_rtt);

  /// Algorithm 2: multiplier to apply to the base AI step.  Returns >= 1.
  /// `spend` must be true on reference-rate updates (which consume banked
  /// tokens) and false for intermediate per-ACK computations.
  FASTCC_DIMENSIONLESS double ai_multiplier(bool spend);

  double bank() const { return bank_; }
  double dampener() const { return dampener_; }
  const VariableAiParams& params() const { return p_; }

 private:
  VariableAiParams p_;
  double bank_ = 0.0;
  double dampener_ = 0.0;
  double rtt_max_congestion_ = 0.0;
};

}  // namespace fastcc::core
