// Ownership contract annotations for pool-handle APIs.
//
// The zero-copy packet pipeline threads 4-byte PacketRef handles through
// multi-branch drop/PFC/ECN logic; its correctness rests entirely on
// ownership discipline (alloc once, transfer or release exactly once, never
// touch a handle after giving it up).  These macros declare that discipline
// at the API boundary so that one source of truth serves three readers:
//
//   * humans, who see the contract in the signature,
//   * `tools/fastcc-dataflow`, whose token-mode parser reads the macro names
//     directly from headers and checks every call site and every definition
//     body against the declared contract,
//   * clang tooling, because under clang the macros expand to
//     [[clang::annotate]] attributes that survive into the AST.
//
// Semantics (see DESIGN.md §6 "Ownership contracts & dataflow analysis"):
//
//   FASTCC_CONSUMES  on a PacketRef parameter: the callee assumes ownership.
//                    After the call the caller's handle is dead — any
//                    further get()/release()/re-transfer is a
//                    use-after-release.
//   FASTCC_PRODUCES  on a function returning PacketRef: the caller receives
//                    ownership of a live handle and must transfer or release
//                    it on every path to return (else: path-leak).
//   FASTCC_BORROWS   on a PacketRef parameter: the callee may resolve or
//                    inspect the handle but ownership stays with the caller;
//                    the callee must not release or retain it.
//
//   FASTCC_CONSUMES_XSHARD  on a PacketRef parameter: the callee consumes
//                    the handle by serializing the packet *out of its pool*
//                    for a cross-shard handoff (PacketPool::export_release).
//                    The handle ends in the `transferred-cross-shard` state:
//                    it is dead in this shard, and the bytes continue life
//                    in another shard's pool under a new handle.
//   FASTCC_XSHARD_SINK  on a function taking a serialized packet across a
//                    shard boundary (a mailbox deposit).  fastcc-dataflow
//                    requires every live PacketRef reaching a sink call to
//                    be wrapped in a FASTCC_CONSUMES_XSHARD serialization —
//                    a raw handle in a sink argument is a blocking
//                    `raw-cross-shard-handoff` finding, because handles are
//                    meaningless in the destination pool.
//
// Unannotated PacketRef parameters are treated as borrows; a body that
// releases or transfers such a parameter is a contract violation.
//
// ---------------------------------------------------------------------------
// Shard-affinity contracts (see DESIGN.md §10 "Shard-affinity contracts &
// epoch-phase analysis").  The space-parallel runner is only correct if each
// shard touches exclusively shard-owned state during an epoch and all
// cross-shard traffic flows through the typed mailbox handoff.  These macros
// declare that isolation discipline; `tools/fastcc-shardsafe` verifies it
// statically (escape analysis + barrier-phase discipline), complementing the
// schedule-dependent coverage TSan gives at runtime.
//
//   FASTCC_SHARD_LOCAL  on a field or class: the state belongs to exactly one
//                    shard and may only be touched by the worker currently
//                    running that shard (the "worker phase").  A pointer or
//                    reference into shard-local state must never reach a
//                    mailbox cell, a global, or another shard — only values
//                    serialized through FASTCC_CONSUMES_XSHARD may cross.
//                    On a method: the method runs in the worker phase.
//   FASTCC_SHARD_SHARED_RO  on a field: built during (serial) setup, strictly
//                    read-only during the run; every worker may read it
//                    concurrently.  Any worker- or barrier-phase write is a
//                    blocking finding.
//   FASTCC_EPOCH_PUBLISH  on a field: written only inside the barrier
//                    completion step (single-threaded, all workers parked),
//                    relying on the barrier's release ordering for
//                    visibility.  On a method: the method IS barrier
//                    completion-step code.
//   FASTCC_XSHARD_CHANNEL  on a class: the typed conduit for cross-shard
//                    traffic (ShardMailboxes).  Its worker-phase methods
//                    (deposit/drain side) must not be called from barrier
//                    code and its publish-side methods must not be called
//                    from worker code.
//
// ---------------------------------------------------------------------------
// Unit-dimension contracts (see DESIGN.md §12 "Dimensional analysis").
// `sim::Time` and `sim::Rate` are bare arithmetic aliases, so a field or
// parameter declared `double`/`std::uint64_t` carries its physical unit only
// in its name.  These macros make the unit machine-readable;
// `tools/fastcc-units` seeds its dimension lattice from them (alongside the
// declared Time/Rate types) and then checks every expression's arithmetic:
// adding a Time to a Rate, squaring a Time into a Time sink, raw *8/*1000
// conversion factors outside sim/time.h's helpers, and casts that launder a
// dimension are all blocking findings.
//
//   FASTCC_UNIT_NS       the value is a time in nanoseconds (Time-dimension)
//   FASTCC_UNIT_BPNS     the value is a rate in bytes per nanosecond
//                        (Rate-dimension; 12.5 B/ns == 100 Gbps)
//   FASTCC_UNIT_BYTES    the value is a byte count (Bytes-dimension);
//                        Bytes / Time = Rate, Rate x Time = Bytes
//   FASTCC_DIMENSIONLESS the value is a pure number (ratio, multiplier,
//                        count); storing a Time/Rate-dimensioned value into
//                        it is a unit-mix finding
//
// Place the macro at the start of the declaration (field, parameter, or
// function return), e.g. `FASTCC_UNIT_BYTES double& window_bytes;` or
// `FASTCC_UNIT_BPNS double total_send_rate() const;`.
#pragma once

#if defined(__clang__)
#define FASTCC_CONSUMES [[clang::annotate("fastcc::consumes")]]
#define FASTCC_PRODUCES [[clang::annotate("fastcc::produces")]]
#define FASTCC_BORROWS [[clang::annotate("fastcc::borrows")]]
#define FASTCC_CONSUMES_XSHARD [[clang::annotate("fastcc::consumes_xshard")]]
#define FASTCC_XSHARD_SINK [[clang::annotate("fastcc::xshard_sink")]]
#define FASTCC_SHARD_LOCAL [[clang::annotate("fastcc::shard_local")]]
#define FASTCC_SHARD_SHARED_RO [[clang::annotate("fastcc::shard_shared_ro")]]
#define FASTCC_EPOCH_PUBLISH [[clang::annotate("fastcc::epoch_publish")]]
#define FASTCC_XSHARD_CHANNEL [[clang::annotate("fastcc::xshard_channel")]]
#define FASTCC_UNIT_NS [[clang::annotate("fastcc::unit_ns")]]
#define FASTCC_UNIT_BPNS [[clang::annotate("fastcc::unit_bpns")]]
#define FASTCC_UNIT_BYTES [[clang::annotate("fastcc::unit_bytes")]]
#define FASTCC_DIMENSIONLESS [[clang::annotate("fastcc::dimensionless")]]
#else
// GCC warns on unknown scoped attributes (-Wattributes); the token-mode
// analyzer keys on the macro *names* in source, so expanding to nothing
// loses no information outside clang-based tooling.
#define FASTCC_CONSUMES
#define FASTCC_PRODUCES
#define FASTCC_BORROWS
#define FASTCC_CONSUMES_XSHARD
#define FASTCC_XSHARD_SINK
#define FASTCC_SHARD_LOCAL
#define FASTCC_SHARD_SHARED_RO
#define FASTCC_EPOCH_PUBLISH
#define FASTCC_XSHARD_CHANNEL
#define FASTCC_UNIT_NS
#define FASTCC_UNIT_BPNS
#define FASTCC_UNIT_BYTES
#define FASTCC_DIMENSIONLESS
#endif
