// InsertionOrderedMap: O(1) keyed lookup with deterministic iteration.
//
// fastcc's determinism contract (DESIGN.md "Determinism & unit invariants")
// forbids iterating hash containers anywhere the visit order can reach event
// scheduling, floating-point accumulation, or emitted output — hash order
// depends on the implementation, the allocator, and the insertion history,
// none of which are part of a simulation's inputs.  This container keeps the
// hot-path lookup of unordered_map but stores entries in a flat vector in
// insertion order, which is exactly the order the simulation produced them
// (and therefore reproducible): iteration walks the vector, never a bucket
// array.  fastcc-lint's `unordered-iter` check enforces the migration.
//
// Trade-offs vs std::unordered_map:
//   - references/iterators are invalidated by growth (vector storage); do
//     not hold them across an insert,
//   - erase is not provided (simulation components retire entries by
//     flagging them, e.g. FlowTx::finished(), keeping ids stable).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fastcc::util {

template <typename Key, typename Value>
class InsertionOrderedMap {
 public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  /// Inserts {key, Value(args...)} if absent.  Returns {pointer, inserted}.
  template <typename... Args>
  std::pair<Value*, bool> try_emplace(const Key& key, Args&&... args) {
    if (memo_ < entries_.size() && entries_[memo_].first == key) {
      return {&entries_[memo_].second, false};
    }
    auto [it, inserted] = index_.try_emplace(key, entries_.size());
    if (inserted) {
      entries_.emplace_back(std::piecewise_construct,
                            std::forward_as_tuple(key),
                            std::forward_as_tuple(std::forward<Args>(args)...));
    }
    memo_ = it->second;
    return {&entries_[it->second].second, inserted};
  }

  /// Default-constructs the value if absent (unordered_map::operator[]).
  Value& operator[](const Key& key) { return *try_emplace(key).first; }

  Value* find(const Key& key) {
    if (memo_ < entries_.size() && entries_[memo_].first == key) {
      return &entries_[memo_].second;
    }
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    memo_ = it->second;
    return &entries_[it->second].second;
  }
  const Value* find(const Key& key) const {
    if (memo_ < entries_.size() && entries_[memo_].first == key) {
      return &entries_[memo_].second;
    }
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    memo_ = it->second;
    return &entries_[it->second].second;
  }
  bool contains(const Key& key) const { return index_.count(key) != 0; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Iteration is over the insertion-ordered entry vector — deterministic by
  // construction, independent of hashing.
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<Key, std::size_t> index_;
  /// Index of the last entry hit, bypassing the hash probe on the streaky
  /// access patterns simulations produce (per-ACK flow lookups).  Indices
  /// are stable — no erase, growth keeps positions — so a stale memo can
  /// only miss, never alias.
  mutable std::size_t memo_ = static_cast<std::size_t>(-1);
};

}  // namespace fastcc::util
