#include "topo/fat_tree.h"

#include <cassert>
#include <string>

namespace fastcc::topo {

FatTreeParams full_scale_fat_tree() { return FatTreeParams{}; }

FatTreeParams scaled_fat_tree() {
  FatTreeParams p;
  p.pods = 2;
  p.tors_per_pod = 2;
  p.aggs_per_pod = 2;
  p.hosts_per_tor = 8;
  p.spine_group_size = 2;
  return p;
}

FatTreeParams with_oversubscription(FatTreeParams base, double ratio) {
  assert(ratio >= 1.0);
  // Non-blocking uplink capacity per ToR is hosts * host_bw; spread it over
  // the aggs and divide by the oversubscription ratio.
  const double uplink_total = base.hosts_per_tor * base.host_bandwidth / ratio;
  base.fabric_bandwidth = uplink_total / base.aggs_per_pod;
  return base;
}

FatTree build_fat_tree(net::Network& net, const FatTreeParams& p) {
  assert(p.pods >= 1 && p.tors_per_pod >= 1 && p.aggs_per_pod >= 1);
  assert(p.hosts_per_tor >= 1 && p.spine_group_size >= 1);
  FatTree ft;

  for (int s = 0; s < p.spine_count(); ++s) {
    ft.spines.push_back(net.add_switch("spine" + std::to_string(s)));
  }
  for (int pod = 0; pod < p.pods; ++pod) {
    for (int a = 0; a < p.aggs_per_pod; ++a) {
      net::SwitchNode* agg = net.add_switch(
          "agg" + std::to_string(pod) + "_" + std::to_string(a));
      ft.aggs.push_back(agg);
      // Agg index a talks to spine group a.
      for (int g = 0; g < p.spine_group_size; ++g) {
        net.connect(*agg, *ft.spines[a * p.spine_group_size + g],
                    p.fabric_bandwidth, p.link_delay);
      }
    }
    for (int t = 0; t < p.tors_per_pod; ++t) {
      net::SwitchNode* tor = net.add_switch(
          "tor" + std::to_string(pod) + "_" + std::to_string(t));
      ft.tors.push_back(tor);
      for (int a = 0; a < p.aggs_per_pod; ++a) {
        net.connect(*tor, *ft.aggs[pod * p.aggs_per_pod + a],
                    p.fabric_bandwidth, p.link_delay);
      }
      for (int h = 0; h < p.hosts_per_tor; ++h) {
        net::Host* host = net.add_host("h" + std::to_string(pod) + "_" +
                                       std::to_string(t) + "_" +
                                       std::to_string(h));
        net.connect(*host, *tor, p.host_bandwidth, p.link_delay);
        ft.hosts.push_back(host);
      }
    }
  }
  net.build_routes();
  return ft;
}

}  // namespace fastcc::topo
