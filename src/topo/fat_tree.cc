#include "topo/fat_tree.h"

#include <cassert>
#include <string>

namespace fastcc::topo {

FatTreeParams full_scale_fat_tree() { return FatTreeParams{}; }

FatTreeParams scaled_fat_tree() {
  FatTreeParams p;
  p.pods = 2;
  p.tors_per_pod = 2;
  p.aggs_per_pod = 2;
  p.hosts_per_tor = 8;
  p.spine_group_size = 2;
  return p;
}

FatTreeParams sharded_scaled_fat_tree() {
  FatTreeParams p;
  p.pods = 8;
  p.tors_per_pod = 2;
  p.aggs_per_pod = 2;
  p.hosts_per_tor = 4;
  p.spine_group_size = 2;
  return p;
}

FatTreeParams with_oversubscription(FatTreeParams base, double ratio) {
  assert(ratio >= 1.0);
  // Non-blocking uplink capacity per ToR is hosts * host_bw; spread it over
  // the aggs and divide by the oversubscription ratio.
  const double uplink_total = base.hosts_per_tor * base.host_bandwidth / ratio;
  base.fabric_bandwidth = uplink_total / base.aggs_per_pod;
  return base;
}

FatTree build_fat_tree(net::Network& net, const FatTreeParams& p) {
  assert(p.pods >= 1 && p.tors_per_pod >= 1 && p.aggs_per_pod >= 1);
  assert(p.hosts_per_tor >= 1 && p.spine_group_size >= 1);
  FatTree ft;

  for (int s = 0; s < p.spine_count(); ++s) {
    ft.spines.push_back(net.add_switch("spine" + std::to_string(s)));
  }
  for (int pod = 0; pod < p.pods; ++pod) {
    for (int a = 0; a < p.aggs_per_pod; ++a) {
      net::SwitchNode* agg = net.add_switch(
          "agg" + std::to_string(pod) + "_" + std::to_string(a));
      ft.aggs.push_back(agg);
      // Agg index a talks to spine group a.  The core tier carries its own
      // delay so multi-RTT topologies (long inter-pod paths over a short
      // pod-internal fabric) are one parameter away.
      for (int g = 0; g < p.spine_group_size; ++g) {
        net.connect(*agg, *ft.spines[a * p.spine_group_size + g],
                    p.fabric_bandwidth, p.core_delay());
      }
    }
    for (int t = 0; t < p.tors_per_pod; ++t) {
      net::SwitchNode* tor = net.add_switch(
          "tor" + std::to_string(pod) + "_" + std::to_string(t));
      ft.tors.push_back(tor);
      for (int a = 0; a < p.aggs_per_pod; ++a) {
        net.connect(*tor, *ft.aggs[pod * p.aggs_per_pod + a],
                    p.fabric_bandwidth, p.link_delay);
      }
      for (int h = 0; h < p.hosts_per_tor; ++h) {
        net::Host* host = net.add_host("h" + std::to_string(pod) + "_" +
                                       std::to_string(t) + "_" +
                                       std::to_string(h));
        net.connect(*host, *tor, p.host_bandwidth, p.link_delay);
        ft.hosts.push_back(host);
      }
    }
  }
  net.build_routes();
  return ft;
}

net::ShardMap pod_shard_map(const FatTree& tree, const FatTreeParams& p,
                            std::size_t node_count) {
  net::ShardMap m;
  m.count = p.pods;
  m.shard.assign(node_count, 0);
  // The FatTree vectors are pod-major (build_fat_tree appends pod 0's
  // switches and hosts, then pod 1's, ...), so integer division by the
  // per-pod counts recovers the pod index.
  for (std::size_t s = 0; s < tree.spines.size(); ++s) {
    m.shard[tree.spines[s]->id()] =
        static_cast<std::int32_t>(s % static_cast<std::size_t>(p.pods));
  }
  for (std::size_t a = 0; a < tree.aggs.size(); ++a) {
    m.shard[tree.aggs[a]->id()] =
        static_cast<std::int32_t>(a / static_cast<std::size_t>(p.aggs_per_pod));
  }
  for (std::size_t t = 0; t < tree.tors.size(); ++t) {
    m.shard[tree.tors[t]->id()] =
        static_cast<std::int32_t>(t / static_cast<std::size_t>(p.tors_per_pod));
  }
  const std::size_t hosts_per_pod =
      static_cast<std::size_t>(p.tors_per_pod) *
      static_cast<std::size_t>(p.hosts_per_tor);
  for (std::size_t h = 0; h < tree.hosts.size(); ++h) {
    m.shard[tree.hosts[h]->id()] = static_cast<std::int32_t>(h / hosts_per_pod);
  }
  return m;
}

net::ShardMap tor_shard_map(const FatTree& tree, const FatTreeParams& p,
                            std::size_t node_count) {
  net::ShardMap m;
  const int shards = p.pods * p.tors_per_pod;
  m.count = shards;
  m.shard.assign(node_count, 0);
  // ToR t (global, pod-major) is shard t, together with its hosts.
  for (std::size_t t = 0; t < tree.tors.size(); ++t) {
    m.shard[tree.tors[t]->id()] = static_cast<std::int32_t>(t);
  }
  for (std::size_t h = 0; h < tree.hosts.size(); ++h) {
    m.shard[tree.hosts[h]->id()] =
        static_cast<std::int32_t>(h / static_cast<std::size_t>(p.hosts_per_tor));
  }
  // Aggs stay pod-resident: agg a of pod p deals round-robin onto that
  // pod's ToR shards [p * tors_per_pod, (p+1) * tors_per_pod), so the
  // pod-internal switching work spreads over the pod's own shards.
  for (std::size_t a = 0; a < tree.aggs.size(); ++a) {
    const int pod = static_cast<int>(a) / p.aggs_per_pod;
    const int local = static_cast<int>(a) % p.aggs_per_pod;
    m.shard[tree.aggs[a]->id()] = static_cast<std::int32_t>(
        pod * p.tors_per_pod + local % p.tors_per_pod);
  }
  // Spines deal round-robin across every shard, as in pod_shard_map.
  for (std::size_t s = 0; s < tree.spines.size(); ++s) {
    m.shard[tree.spines[s]->id()] =
        static_cast<std::int32_t>(s % static_cast<std::size_t>(shards));
  }
  return m;
}

net::ShardMap shard_map_for(const FatTree& tree, const FatTreeParams& p,
                            std::size_t node_count, ShardGranularity g) {
  return g == ShardGranularity::kTor ? tor_shard_map(tree, p, node_count)
                                     : pod_shard_map(tree, p, node_count);
}

}  // namespace fastcc::topo
