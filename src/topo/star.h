// Single-switch star topology (Section III-D): N hosts, one switch, every
// host attached at the same speed.  Host 0..N-2 are senders in the paper's
// incast experiments; host N-1 is the receiver.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace fastcc::topo {

struct StarParams {
  int host_count = 17;
  sim::Rate host_bandwidth = sim::gbps(100);
  sim::Time link_delay = 1 * sim::kMicrosecond;
};

struct Star {
  net::SwitchNode* hub = nullptr;
  std::vector<net::Host*> hosts;
};

/// Builds the star into `net` and installs routes.
Star build_star(net::Network& net, const StarParams& params);

}  // namespace fastcc::topo
