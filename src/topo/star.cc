#include "topo/star.h"

#include <cassert>
#include <string>

namespace fastcc::topo {

Star build_star(net::Network& net, const StarParams& params) {
  assert(params.host_count >= 2);
  Star star;
  star.hub = net.add_switch("hub");
  star.hosts.reserve(params.host_count);
  for (int i = 0; i < params.host_count; ++i) {
    net::Host* h = net.add_host("h" + std::to_string(i));
    net.connect(*h, *star.hub, params.host_bandwidth, params.link_delay);
    star.hosts.push_back(h);
  }
  net.build_routes();
  return star;
}

}  // namespace fastcc::topo
