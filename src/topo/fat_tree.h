// Three-layer fat-tree (the paper's Figure 7).
//
// The full-scale instance matches Li et al.'s HPCC evaluation topology used
// by the paper: 5 pods x (4 ToR + 4 Agg), 16 spines, 16 hosts per ToR = 320
// hosts; 100 Gbps host links, 400 Gbps fabric links, 1 us propagation per
// link.  Every ToR connects to every Agg in its pod; Agg i of each pod
// connects to spine group i (spines [i*g, (i+1)*g)), giving ECMP fan-out at
// both tiers.  All dimensions are parameters so scaled-down instances keep
// the same shape.
#pragma once

#include <vector>

#include "net/network.h"
#include "net/shard.h"

namespace fastcc::topo {

struct FatTreeParams {
  int pods = 5;
  int tors_per_pod = 4;
  int aggs_per_pod = 4;
  int hosts_per_tor = 16;
  int spine_group_size = 4;  ///< Spines per Agg index; spines = aggs * group.
  sim::Rate host_bandwidth = sim::gbps(100);
  sim::Rate fabric_bandwidth = sim::gbps(400);
  sim::Time link_delay = 1 * sim::kMicrosecond;
  /// Propagation delay of the Agg<->Spine tier; 0 means "same as
  /// link_delay".  Raising it models multi-RTT / inter-DC cores (the
  /// tcp-multi-rtt-bottleneck shape), where the pod-internal and core
  /// latencies differ by an order of magnitude — exactly the case the
  /// per-shard-pair adaptive lookahead exploits.
  sim::Time spine_link_delay = 0;

  int spine_count() const { return aggs_per_pod * spine_group_size; }
  int host_count() const { return pods * tors_per_pod * hosts_per_tor; }
  sim::Time core_delay() const {
    return spine_link_delay > 0 ? spine_link_delay : link_delay;
  }
};

/// The paper's full-scale topology.
FatTreeParams full_scale_fat_tree();

/// A shape-preserving scaled instance (2 pods, 2x2 switches, 8 hosts/ToR =
/// 32 hosts) for CI-budget datacenter runs.
FatTreeParams scaled_fat_tree();

/// A wide scaled instance (8 pods, 2x2 switches, 4 hosts/ToR = 64 hosts,
/// 4 spines) for space-parallel runs: one shard per pod gives 8-way
/// parallelism at a CI-budget host count.
FatTreeParams sharded_scaled_fat_tree();

/// Derives an oversubscribed variant: fabric links scaled down so the
/// ToR-uplink capacity is 1/ratio of the attached host capacity (ratio 1 =
/// the paper's non-blocking fabric; ratio 4 = a typical 4:1 production
/// fabric where the congestion point moves into the core).
FatTreeParams with_oversubscription(FatTreeParams base, double ratio);

struct FatTree {
  std::vector<net::Host*> hosts;
  std::vector<net::SwitchNode*> tors;
  std::vector<net::SwitchNode*> aggs;
  std::vector<net::SwitchNode*> spines;
};

/// Builds the fat-tree into `net` and installs ECMP routes.
FatTree build_fat_tree(net::Network& net, const FatTreeParams& params);

/// Pod-sharding assignment for space-parallel execution: every ToR, Agg,
/// and host of pod p maps to shard p; spine s maps to shard s mod pods
/// (round-robin, so spine work spreads across shards).  `node_count` is
/// Network::node_count() after build_fat_tree.
net::ShardMap pod_shard_map(const FatTree& tree, const FatTreeParams& params,
                            std::size_t node_count);

/// ToR-sharding assignment: one shard per ToR owning the ToR plus its
/// hosts, so shard count scales with rack count (pods * tors_per_pod)
/// instead of pod count.  Aggs stay inside their pod: agg a of pod p maps
/// round-robin onto pod p's ToR shards, and spines deal round-robin across
/// all shards — every shard owns a slice of the aggregation/core tier,
/// exactly as pod_shard_map does at the coarser grain.
net::ShardMap tor_shard_map(const FatTree& tree, const FatTreeParams& params,
                            std::size_t node_count);

/// Partition grain for space-parallel runs.  kPod caps shard count at the
/// pod count (coarse shards, fewest boundary links); kTor gives one shard
/// per rack (pods * tors_per_pod shards — the knob that lets worker count
/// exceed pod count).
enum class ShardGranularity { kPod, kTor };

/// Dispatches to pod_shard_map or tor_shard_map.
net::ShardMap shard_map_for(const FatTree& tree, const FatTreeParams& params,
                            std::size_t node_count, ShardGranularity g);

}  // namespace fastcc::topo
