// Simulator: the discrete-event loop driving a fastcc simulation.
//
// A Simulator owns the clock and the event queue.  Components hold a
// reference to it and schedule callbacks; run() drains events in timestamp
// order until the queue empties, a deadline passes, or stop() is called.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>

#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace fastcc::sim {

class Simulator {
 public:
  /// Event-queue backend.  Both implementations are property-tested to pop
  /// identical (time, FIFO) sequences, so swapping this alias cannot change
  /// simulation results — only wall-clock speed.  The calendar queue's O(1)
  /// schedule/pop wins on the bounded-horizon pattern simulations produce
  /// (~1.9x on the rolling-horizon microbenchmark vs the 4-ary heap); its
  /// historical weakness — bimodal near-term-packet / far-future-RTO time
  /// mixes collapsing the bucket-width calibration — is fixed by the
  /// median-gap estimator in CalendarQueue::rebuild.
  using Queue = CalendarQueue;
  using Callback = Queue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (must be >= now()).
  EventId at(Time when, Callback cb) {
    assert(when >= now_ && "cannot schedule into the past");
    return events_.schedule(when, std::move(cb));
  }

  /// Schedules `cb` after a relative delay (must be >= 0).
  EventId after(Time delay, Callback cb) {
    return at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) { return events_.cancel(id); }

  /// Runs until the event queue is empty or the clock passes `until`.
  /// Events stamped exactly `until` still run.  Returns the final clock.
  Time run(Time until = std::numeric_limits<Time>::max());

  /// Requests that run() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (instrumentation / perf tests).
  std::uint64_t events_executed() const { return executed_; }

  Queue& queue() { return events_; }

 private:
  Queue events_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace fastcc::sim
