#include "sim/simulator.h"

#include <cassert>

namespace fastcc::sim {

EventId Simulator::at(Time when, EventQueue::Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  return events_.schedule(when, std::move(cb));
}

Time Simulator::run(Time until) {
  stopped_ = false;
  while (!events_.empty() && !stopped_) {
    const Time next = events_.next_time();
    if (next > until) break;
    now_ = next;
    events_.pop_and_run();
    ++executed_;
  }
  // Unless stopped mid-run, a bounded run() leaves the clock at the deadline
  // (whether events remain pending or the queue drained early), so callers
  // can interleave run(t) with direct state changes at known times.
  if (!stopped_ && until != std::numeric_limits<Time>::max() && until > now_) {
    now_ = until;
  }
  return now_;
}

}  // namespace fastcc::sim
