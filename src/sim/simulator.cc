#include "sim/simulator.h"

namespace fastcc::sim {

Time Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_) {
    // take_next performs a single ordering lookup per event (the old
    // next_time + pop_and_run pair scanned twice) and hands the callback
    // back un-invoked, so the clock is advanced before the event runs.
    Callback cb;
    const Time next = events_.take_next(until, cb);
    if (next == kNoEventTime) break;
    now_ = next;
    cb();
    ++executed_;
  }
  // Unless stopped mid-run, a bounded run() leaves the clock at the deadline
  // (whether events remain pending or the queue drained early), so callers
  // can interleave run(t) with direct state changes at known times.
  if (!stopped_ && until != std::numeric_limits<Time>::max() && until > now_) {
    now_ = until;
  }
  return now_;
}

}  // namespace fastcc::sim
