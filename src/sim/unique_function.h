// UniqueFunction: a move-only void() callable with small-buffer optimization.
//
// Scheduled events frequently capture move-only state (flow state with
// owning pointers, std::function samplers); std::function requires
// copyability, and std::move_only_function is C++23, so this small
// type-erased wrapper fills the gap.  Callables up to kInlineSize bytes are
// stored inline, so scheduling an event performs zero heap allocations in
// the steady state.  Oversized (or over-aligned, or throwing-move) callables
// transparently fall back to a single heap allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fastcc::sim {

class UniqueFunction {
 public:
  /// Inline capacity.  With the zero-copy packet pipeline the hottest
  /// closures are handle-sized (node pointer + 4-byte PacketRef + port,
  /// <= 24 bytes); 32 bytes also covers host timers and std::function
  /// sampler copies, and keeps the whole wrapper at 48 bytes — every
  /// schedule and pop physically moves this buffer, so the hot-path cost
  /// scales with it (the old 384-byte buffer sized for a by-value Packet
  /// spanned seven cache lines; 64 spanned two).  Rare oversized callables
  /// (the experiments' flow-start closures, one per flow) take the heap
  /// fallback.
  static constexpr std::size_t kInlineSize = 32;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callables of type F are stored inline (no heap allocation).
  /// Inline storage additionally requires a nothrow move so relocation
  /// during queue maintenance cannot throw mid-heap-sift.
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineSize &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (storage()) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the callable.  Invoking an empty (default-constructed or
  /// moved-from) UniqueFunction asserts in Debug and is a no-op in Release.
  void operator()() {
    assert(ops_ != nullptr && "invoking an empty UniqueFunction");
    if (ops_ != nullptr) ops_->invoke(storage());
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src.  nullptr marks the
    /// stored representation trivially relocatable: memcpy `size` bytes.
    void (*relocate)(void* dst, void* src);
    /// Destroys the stored object.  nullptr when trivially destructible.
    void (*destroy)(void*);
    std::size_t size;
  };

  template <typename D>
  static void invoke_inline(void* s) {
    (*static_cast<D*>(s))();
  }
  template <typename D>
  static void relocate_inline(void* dst, void* src) {
    D* from = static_cast<D*>(src);
    ::new (dst) D(std::move(*from));
    from->~D();
  }
  template <typename D>
  static void destroy_inline(void* s) {
    static_cast<D*>(s)->~D();
  }

  template <typename D>
  static void invoke_heap(void* s) {
    (**static_cast<D**>(s))();
  }
  template <typename D>
  static void destroy_heap(void* s) {
    delete *static_cast<D**>(s);
  }

  // Packet-capturing lambdas are trivially copyable, so the common case
  // relocates by memcpy with no indirect call and destroys for free.
  template <typename D>
  static constexpr Ops kInlineOps{
      &invoke_inline<D>,
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>
          ? nullptr
          : &relocate_inline<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &destroy_inline<D>,
      sizeof(D)};

  /// Heap-stored callables keep only the owning D* inline; relocation copies
  /// the pointer, destruction deletes through it.
  template <typename D>
  static constexpr Ops kHeapOps{&invoke_heap<D>, nullptr, &destroy_heap<D>,
                                sizeof(D*)};

  void* storage() { return static_cast<void*>(buf_); }

  void move_from(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage(), other.storage());
    } else {
      std::memcpy(buf_, other.buf_, ops_->size);
    }
    other.ops_ = nullptr;
  }

  void destroy() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage());
    ops_ = nullptr;
  }

  // ops_ precedes the buffer so that for small callables the dispatch
  // pointer and the captured state share the first cache line.
  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

}  // namespace fastcc::sim
