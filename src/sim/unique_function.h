// UniqueFunction: a move-only void() callable.
//
// Scheduled events frequently capture move-only state (packets in flight,
// flow state with owning pointers); std::function requires copyability, and
// std::move_only_function is C++23, so this small type-erased wrapper fills
// the gap.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace fastcc::sim {

class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) = default;
  UniqueFunction& operator=(UniqueFunction&&) = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() { impl_->call(); }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F&& f) : fn(std::move(f)) {}
    explicit Impl(const F& f) : fn(f) {}
    void call() override { fn(); }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace fastcc::sim
