// A stable binary-heap event queue for discrete-event simulation.
//
// Events scheduled for the same timestamp fire in insertion order, which keeps
// simulations deterministic regardless of heap internals.  Cancellation is
// lazy: cancelled events stay in the heap and are skipped on pop.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// Schedules `cb` at absolute time `at`.  Returns a handle for cancel().
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event.  Cancelling an already-fired or unknown id is a
  /// no-op, which lets callers keep stale handles without bookkeeping.
  /// Returns true when the event was pending and is now cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  std::size_t size() const { return pending_.size(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  /// Total events ever scheduled (for instrumentation).
  std::uint64_t scheduled_total() const { return next_id_; }

 private:
  struct Entry {
    Time at;
    EventId id;  // monotonically increasing; breaks ties FIFO
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Discards heap entries whose id is no longer pending (cancelled).
  void drop_dead_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 0;
};

}  // namespace fastcc::sim
