// A stable 4-ary-heap event queue for discrete-event simulation.
//
// Events scheduled for the same timestamp fire in insertion order, which keeps
// simulations deterministic regardless of heap internals.  Cancellation is
// lazy: cancelled events stay in the heap and are skipped on pop.  The
// cancellation bookkeeping is a generation-stamped slot pool rather than a
// hash set, and the pool also owns the callbacks, so the heap orders only
// 24-byte entries and schedule/pop are pure heap operations plus O(1)
// flat-array updates — allocation-free in the steady state.  A 4-ary heap
// halves the sift depth of a binary heap and keeps each sibling group within
// ~1.5 cache lines, which measurably speeds up the pop-heavy simulator loop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_handle.h"
#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Encodes a slot index plus a generation stamp — see EventSlotPool.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// Schedules `cb` at absolute time `at`.  Returns a handle for cancel().
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event.  Cancelling an already-fired or unknown id is a
  /// no-op, which lets callers keep stale handles without bookkeeping.
  /// Returns true when the event was pending and is now cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return slots_.live() == 0; }

  std::size_t size() const { return slots_.live(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  /// If the earliest live event fires at or before `until`, removes it,
  /// moves its callback into `out`, and returns its timestamp; otherwise
  /// returns kNoEventTime and leaves the queue untouched.  This is the
  /// simulator's hot path: one ordering lookup per event, and the caller
  /// advances its clock before invoking the callback.
  Time take_next(Time until, Callback& out);

  /// Total events ever scheduled (for instrumentation).
  std::uint64_t scheduled_total() const { return next_seq_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotonically increasing; breaks ties FIFO
    EventId id;         // callback lives in the slot pool under this handle
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::size_t kArity = 4;

  void push_entry(Entry e);
  void pop_min();
  void sift_up(std::size_t i);

  /// Discards heap entries whose handle is no longer live (cancelled).
  void drop_dead_head();

  std::vector<Entry> heap_;  // implicit 4-ary min-heap
  EventSlotPool slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fastcc::sim
