#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace fastcc::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) > 0; }

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

Time EventQueue::pop_and_run() {
  drop_dead_head();
  assert(!heap_.empty());
  // Move the callback out before popping so the entry can be destroyed, then
  // run it outside of any heap invariants.
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(top.id);
  top.cb();
  return top.at;
}

}  // namespace fastcc::sim
