#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace fastcc::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  const EventId id = slots_.acquire(std::move(cb));
  push_entry(Entry{at, seq, id});
  return id;
}

bool EventQueue::cancel(EventId id) { return slots_.cancel(id); }

void EventQueue::push_entry(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void EventQueue::pop_min() {
  assert(!heap_.empty());
  const Entry back = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  // Walk the hole left by the root down along minimum children to a leaf,
  // then drop the former last element in and bubble it up.  Compared to the
  // textbook "move last to root and sift down", this saves one comparison
  // per level, and in time-ordered workloads the (late) last element almost
  // always stays at the leaf, so the bubble-up is a single comparison.
  std::size_t hole = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = hole * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = back;
  sift_up(hole);
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::drop_dead_head() {
  // A slot is only released when its entry leaves the heap, so an in-heap
  // entry that is not live was cancelled and can be reclaimed here.
  while (!heap_.empty() && !slots_.is_live(heap_.front().id)) {
    slots_.release(heap_.front().id);
    pop_min();
  }
}

Time EventQueue::next_time() const {
  assert(!empty());
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_head();
  assert(!heap_.empty());
  return heap_.front().at;
}

Time EventQueue::take_next(Time until, Callback& out) {
  drop_dead_head();
  if (heap_.empty() || heap_.front().at > until) return kNoEventTime;
  // Take the callback out of its slot and pop before it runs, so the
  // callback may freely schedule into (or drain) the queue.
  const Entry top = heap_.front();
  pop_min();
  slots_.release_into(top.id, out);
  return top.at;
}

Time EventQueue::pop_and_run() {
  assert(!empty());
  Callback cb;
  const Time at = take_next(std::numeric_limits<Time>::max(), cb);
  assert(at != kNoEventTime);
  cb();
  return at;
}

}  // namespace fastcc::sim
