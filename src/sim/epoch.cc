#include "sim/epoch.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <thread>
#include <vector>

namespace fastcc::sim {

void EpochCoordinator::run(int shards, int workers,
                           FASTCC_SHARD_LOCAL const ShardFn& shard_fn,
                           FASTCC_EPOCH_PUBLISH const BarrierFn& barrier_fn) {
  assert(shards >= 1);
  // Every shard is active every epoch; the vector is immutable, so the
  // active-set machinery degenerates to the original fixed iteration.
  std::vector<int> all(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) all[static_cast<std::size_t>(s)] = s;
  run_active(shards, workers, all, shard_fn, barrier_fn);
}

void EpochCoordinator::run_active(
    int shards, int workers, FASTCC_EPOCH_PUBLISH const std::vector<int>& active,
    FASTCC_SHARD_LOCAL const ShardFn& shard_fn,
    FASTCC_EPOCH_PUBLISH const BarrierFn& barrier_fn) {
  assert(shards >= 1);
  workers = std::clamp(workers, 1, shards);

  if (workers == 1) {
    while (true) {
      // Iterate by index, not iterator: barrier_fn may rewrite the vector
      // (it never does mid-epoch, but the serial path shares the worker
      // code shape for auditability).
      for (std::size_t i = 0; i < active.size(); ++i) shard_fn(active[i]);
      if (!barrier_fn()) return;
    }
  }

  // Work distribution within an epoch: workers race on an atomic index
  // into the active list.  Which worker runs which shard is
  // schedule-dependent — and irrelevant, because each shard_fn(s) touches
  // only shard s's state and runs exactly once per epoch regardless of who
  // claims it.  The list itself is written only inside the barrier
  // completion step, so reading size() and entries here is race-free.
  std::atomic<int> next{0};
  std::atomic<bool> stop{false};

  // The completion step runs on exactly one (unspecified) thread after all
  // workers arrive and before any is released, which is precisely the
  // single-threaded window barrier_fn needs.  The barrier's release
  // ordering then publishes everything it wrote — the next active set
  // included — and everything each worker wrote during the epoch to every
  // worker; the relaxed atomics below piggyback on that.
  auto on_epoch_complete = [&]() noexcept {
    next.store(0, std::memory_order_relaxed);
    if (!barrier_fn()) stop.store(true, std::memory_order_relaxed);
  };
  std::barrier sync(workers, on_epoch_complete);

  auto work = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const int live = static_cast<int>(active.size());
      while (true) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= live) break;
        shard_fn(active[static_cast<std::size_t>(i)]);
      }
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // The calling thread is worker 0, not a bystander.
  for (std::thread& t : pool) t.join();
}

}  // namespace fastcc::sim
