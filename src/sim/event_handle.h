// EventSlotPool: generation-stamped event storage and cancellation.
//
// Both event queue implementations formerly kept an unordered_set of pending
// ids purely so that rare cancellations could be answered later — two hash
// operations on every schedule/pop — and carried the (type-erased) callback
// inside every heap/bucket entry, so each sift or bucket compaction moved it.
// This pool fixes both: callbacks live in a flat slot array and the queues
// order only 24-byte {time, seq, handle} entries.  A handle encodes
// (generation << 32 | slot); schedule grabs a slot from a freelist, cancel
// flips a bit and eagerly destroys the callback, pop checks the bit, and
// releasing a slot bumps its generation so stale handles from already-fired
// events are recognized in O(1) without hashing.  In the steady state (slot
// population no longer growing) every operation is allocation-free: the
// callback is placement-constructed into UniqueFunction's inline buffer and
// moved exactly once, into its slot.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/unique_function.h"

namespace fastcc::sim {

class EventSlotPool {
 public:
  using Handle = std::uint64_t;

  /// Stores `cb` in a fresh slot; the handle stays valid for cancel() until
  /// the matching release().
  Handle acquire(UniqueFunction&& cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(meta_.size());
      meta_.emplace_back();
      cbs_.emplace_back();
    }
    Meta& m = meta_[slot];
    m.live = true;
    cbs_[slot] = std::move(cb);
    ++live_;
    return make_handle(m.gen, slot);
  }

  /// Marks a live event cancelled and destroys its callback eagerly (the
  /// queue reclaims the ordering entry lazily).  Stale handles — already
  /// fired, already cancelled, never issued — return false.
  bool cancel(Handle h) {
    Meta* m = lookup(h);
    if (m == nullptr || !m->live) return false;
    m->live = false;
    cbs_[slot_of(h)] = UniqueFunction();
    --live_;
    return true;
  }

  /// True when the handle refers to a still-pending, non-cancelled event.
  /// Touches only the 8-byte metadata array, never the callback storage.
  bool is_live(Handle h) const {
    const Meta* m = lookup(h);
    return m != nullptr && m->live;
  }

  /// Frees the slot when its entry physically leaves the queue (fired or
  /// reclaimed after cancellation) and returns the callback — empty if the
  /// event had been cancelled.  Must be called exactly once per acquire().
  UniqueFunction release(Handle h) {
    UniqueFunction cb;
    release_into(h, cb);
    return cb;
  }

  /// As release(), but moves the callback directly into `out`.  The pop hot
  /// path uses this to skip a temporary: with small-buffer optimization a
  /// callback move is a several-hundred-byte copy, not a pointer swap.
  void release_into(Handle h, UniqueFunction& out) {
    const std::uint32_t slot = slot_of(h);
    assert(slot < meta_.size() && meta_[slot].gen == gen_of(h) &&
           "handle released twice");
    Meta& m = meta_[slot];
    if (m.live) {
      m.live = false;
      --live_;
    }
    ++m.gen;  // invalidate every outstanding copy of this handle
    free_.push_back(slot);
    out = std::move(cbs_[slot]);
  }

  /// Number of pending, non-cancelled events.
  std::size_t live() const { return live_; }

  /// Hints the handle's metadata and callback slot into cache.  The pop path
  /// issues this one event ahead: the slot arrays are large enough to fall
  /// out of L1/L2 under thousands of live events, and the next pop's slot is
  /// known the moment the current one is selected, so the fetch overlaps a
  /// whole callback's worth of work instead of stalling release_into().
  void prefetch(Handle h) const {
    const std::uint32_t slot = slot_of(h);
    if (slot >= meta_.size()) return;
    __builtin_prefetch(&meta_[slot]);
    __builtin_prefetch(&cbs_[slot]);
  }

 private:
  struct Meta {
    std::uint32_t gen = 0;
    bool live = false;
  };

  static constexpr Handle make_handle(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<Handle>(gen) << 32) | slot;
  }
  static constexpr std::uint32_t slot_of(Handle h) {
    return static_cast<std::uint32_t>(h);
  }
  static constexpr std::uint32_t gen_of(Handle h) {
    return static_cast<std::uint32_t>(h >> 32);
  }

  const Meta* lookup(Handle h) const {
    const std::uint32_t slot = slot_of(h);
    if (slot >= meta_.size() || meta_[slot].gen != gen_of(h)) return nullptr;
    return &meta_[slot];
  }
  Meta* lookup(Handle h) {
    return const_cast<Meta*>(
        static_cast<const EventSlotPool*>(this)->lookup(h));
  }

  // Liveness metadata and callback storage are parallel arrays: liveness
  // checks on the pop path stay within a dense, cache-resident array while
  // the fat callback slots are touched only on schedule and dispatch.
  std::vector<Meta> meta_;
  std::vector<UniqueFunction> cbs_;
  std::vector<std::uint32_t> free_;  // slots available for reuse
  std::size_t live_ = 0;
};

}  // namespace fastcc::sim
