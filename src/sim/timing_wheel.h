// TimingWheel: a hierarchical timer wheel (Varghese & Lauck, SOSP 1987)
// owned per network node, plus the WheelScheduler adapter that surfaces the
// whole wheel to the Simulator as a single next-expiry event.
//
// Hosts arm many short-lived timers — a pacing wakeup per transmit gap, a
// retransmission timeout per flow, congestion-control recovery timers — and
// the naive encoding (one calendar-queue entry each) both multiplies global
// event-queue traffic and pollutes the calendar's width calibration with
// far-future RTO outliers.  The wheel keeps these timers node-local: arm,
// cancel, and rearm are O(1) list splices on generation-stamped slots, and
// the simulator sees exactly one pending event per node, stamped with the
// wheel's earliest deadline.
//
// Layout: kLevels levels of kSlots slots at 1 ns granularity.  A timer with
// delay d (relative to the wheel clock at arm time) lands on level
// floor(log256(d)), in the slot indexed by that level's byte of its absolute
// deadline; delays of 2^32 ns (~4.3 s) or more go to an overflow list.
// Deadlines are stored exactly, so expiry never rounds to slot granularity.
// Instead of advancing a cursor tick-by-tick (meaningless at nanosecond
// resolution) or physically cascading batches downward, expiry walks at most
// two slot lists per level — the cursor slot plus the first occupied slot
// after it, located by a 256-bit occupancy bitmap — which is exact because
// non-cursor slots each hold a single deadline block and blocks grow with
// slot distance (see scan_best).  Firing order is deterministic: strictly by
// (deadline, arm sequence) — FIFO among ties, matching the global queues.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

/// Generation-stamped timer handle (generation << 32 | node index); stale
/// handles are recognized in O(1), as in EventSlotPool.
using TimerId = std::uint64_t;

/// Sentinel for "no timer pending" (deadlines are non-negative).
inline constexpr Time kNoTimer = -1;

class TimingWheel {
 public:
  using Callback = UniqueFunction;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;

  TimingWheel() {
    for (auto& level : heads_) level.fill(kNil);
    for (auto& level : tails_) level.fill(kNil);
  }
  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  /// Arms a timer at absolute time `deadline` (>= now()).  O(1).
  TimerId arm(Time deadline, Callback cb);

  /// Cancels a pending timer.  O(1).  Stale ids (fired, cancelled, never
  /// issued) return false.
  bool cancel(TimerId id);

  /// The wheel's clock: the latest time passed to advance() or the deadline
  /// of the last timer fired, whichever is later.
  Time now() const { return now_; }

  /// Exact deadline of the earliest pending timer, kNoTimer when empty.
  Time next_deadline() const;

  /// Fires every timer with deadline <= `to`, in (deadline, arm order), then
  /// advances the clock to `to`.  Callbacks may arm and cancel reentrantly.
  void advance(Time to);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffff;
  static constexpr int kOverflowLevel = kLevels;  // marker, not a slot array

  struct Node {
    Time deadline = 0;
    std::uint64_t seq = 0;  ///< Arm order; breaks deadline ties FIFO.
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t gen = 0;
    std::int8_t level = -1;  ///< -1 = free slot.
    std::uint8_t slot = 0;
  };

  static constexpr TimerId make_id(std::uint32_t gen, std::uint32_t idx) {
    return (static_cast<TimerId>(gen) << 32) | idx;
  }
  static constexpr std::uint32_t index_of(TimerId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t gen_of(TimerId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Files a node into its (level, slot) list based on deadline - now_.
  void place(std::uint32_t idx);
  /// Removes a node from whichever list holds it.
  void unlink(std::uint32_t idx);

  /// Index of the earliest pending node by (deadline, seq); kNil when empty.
  std::uint32_t scan_best() const;
  /// Walks one list, folding its minimum into the running best.
  void consider(std::uint32_t head, std::uint32_t& best_idx, Time& best_at,
                std::uint64_t& best_seq) const;
  /// First occupied slot at level `level` in cursor-relative distance order
  /// 1..kSlots-1 (the cursor slot itself is checked separately); -1 if none.
  int first_occupied_after(int level, std::size_t cursor) const;

  std::vector<Node> nodes_;
  std::vector<Callback> cbs_;          // parallel to nodes_
  std::vector<std::uint32_t> free_;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> heads_;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> tails_;
  // One bit per slot: which lists are non-empty (4 x 64-bit words per level).
  std::array<std::array<std::uint64_t, kSlots / 64>, kLevels> occupancy_{};
  std::uint32_t overflow_head_ = kNil;
  std::uint32_t overflow_tail_ = kNil;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  // Scan accelerators.  level_live_ lets scan_best skip empty levels (a
  // host's wheel usually occupies two: pacing near level 0, the RTO around
  // level 2).  cached_best_ memoizes the scan result; it depends only on the
  // wheel's *contents* — the clock position changes where the scan looks,
  // never what the true minimum is — so it stays valid across advance() and
  // is invalidated only when its node unlinks or an earlier arm supersedes
  // it.  In the steady pacing cycle (arm, fire, peek) this turns three full
  // scans into one.
  std::array<std::uint32_t, kLevels> level_live_{};
  std::uint32_t overflow_live_ = 0;
  mutable std::uint32_t cached_best_ = kNil;
};

/// Adapter binding one TimingWheel to the Simulator: however many timers the
/// wheel holds, the global event queue carries only a handful of "wakeup"
/// entries for it, and the earliest of them always covers (is at or before)
/// the wheel's earliest deadline.
///
/// The driver deliberately never cancels a simulator event.  A host's wheel
/// typically holds one near chain (pacing, re-armed every few hundred ns)
/// next to one far outlier (the RTO, ~1 ms out); a single-event driver
/// would flip-flop between the two — cancel the far wakeup, schedule the
/// near one, fire it, re-arm far, repeat — paying a calendar cancel plus an
/// extra schedule per pacing interval.  Instead, up to kMaxOutstanding
/// wakeups coexist: arming a deadline already covered by an earlier wakeup
/// costs nothing, and a wakeup that arrives to find no due timer (its
/// deadline was cancelled or serviced early) fires once, harmlessly, and
/// re-covers whatever the wheel holds now.
class WheelScheduler {
 public:
  explicit WheelScheduler(Simulator& simulator) : sim_(&simulator) {}
  WheelScheduler(const WheelScheduler&) = delete;
  WheelScheduler& operator=(const WheelScheduler&) = delete;

  /// Re-homes the driver onto another simulator (space-parallel sharding
  /// re-binds every node of a shard to that shard's event queue).  Legal
  /// only while no wakeup is scheduled and no timer pending — i.e. between
  /// topology construction and the first run.
  void rebind(Simulator& simulator) {
    assert(n_outstanding_ == 0 && wheel_.empty() &&
           "WheelScheduler rebind with timers or wakeups outstanding");
    sim_ = &simulator;
  }

  TimerId arm(Time deadline, TimingWheel::Callback cb) {
    const TimerId id = wheel_.arm(deadline, std::move(cb));
    if (!advancing_) ensure_covered(deadline);
    return id;
  }

  bool cancel(TimerId id) { return wheel_.cancel(id); }

  bool empty() const { return wheel_.empty(); }
  std::size_t size() const { return wheel_.size(); }
  TimingWheel& wheel() { return wheel_; }

 private:
  static constexpr int kMaxOutstanding = 4;

  bool covered(Time deadline) const {
    for (int i = 0; i < n_outstanding_; ++i) {
      if (outstanding_[i].at <= deadline) return true;
    }
    return false;
  }

  // Coverage invariant: outside an expiry batch, some outstanding wakeup is
  // at or before the wheel's earliest deadline.  Incremental form: a new arm
  // at `deadline` only needs a wakeup when none exists at <= deadline —
  // if deadline is not the new minimum, the wakeup covering the old minimum
  // already satisfies the check.
  void ensure_covered(Time deadline) {
    if (covered(deadline)) return;
    if (n_outstanding_ == kMaxOutstanding) {
      // Evict the latest wakeup: the uncovered `deadline` is the wheel's new
      // minimum (see above), so the wakeup scheduled below covers it and the
      // evictee was redundant.
      int worst = 0;
      for (int i = 1; i < kMaxOutstanding; ++i) {
        if (outstanding_[i].at > outstanding_[worst].at) worst = i;
      }
      sim_->cancel(outstanding_[worst].event);
      outstanding_[worst] = outstanding_[--n_outstanding_];
    }
    outstanding_[n_outstanding_].at = deadline;
    outstanding_[n_outstanding_].event =
        sim_->at(deadline, [this] { on_expiry(); });
    ++n_outstanding_;
  }

  void on_expiry() {
    const Time now = sim_->now();
    for (int i = 0; i < n_outstanding_; ++i) {
      if (outstanding_[i].at == now) {
        outstanding_[i] = outstanding_[--n_outstanding_];
        break;
      }
    }
    // Timers armed from inside the expiry batch are covered by the single
    // re-cover below; suppress per-arm checks meanwhile.
    advancing_ = true;
    wheel_.advance(now);
    advancing_ = false;
    const Time next = wheel_.next_deadline();
    if (next != kNoTimer) ensure_covered(next);
  }

  struct Outstanding {
    Time at = 0;
    EventId event = 0;
  };

  Simulator* sim_;
  TimingWheel wheel_;
  Outstanding outstanding_[kMaxOutstanding];
  int n_outstanding_ = 0;
  bool advancing_ = false;
};

}  // namespace fastcc::sim
