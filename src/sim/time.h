// Simulation time and rate units for fastcc.
//
// Time is a signed 64-bit nanosecond count from simulation start.  Rates are
// carried as double bytes-per-nanosecond so that common datacenter speeds are
// exact: 100 Gbps == 12.5 B/ns, 400 Gbps == 50 B/ns.
#pragma once

#include <cstdint>
#include <limits>

namespace fastcc::sim {

/// Simulation timestamp / duration in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Sentinel returned by the event queues' take_next() when no event at or
/// before the bound exists.  Simulations run on non-negative timestamps.
inline constexpr Time kNoEventTime = -1;

/// "Never": the latest representable instant.  Returned by
/// serialization_time() for degenerate (non-positive) rates so that a
/// misconfigured link stalls visibly instead of invoking the undefined
/// behaviour of casting an infinite double to an integer.
inline constexpr Time kMaxTime = std::numeric_limits<Time>::max();

/// Link / injection rate in bytes per nanosecond (== GB/s).
using Rate = double;

/// Converts a rate expressed in gigabits per second to bytes per nanosecond.
constexpr Rate gbps(double gigabits_per_second) {
  // lint:allow(unit-mix -- this body IS the sanctioned Gbps->B/ns boundary)
  return gigabits_per_second / 8.0;
}

/// Converts a rate in bytes-per-nanosecond back to gigabits per second.
/// lint:allow(unit-mix -- this body IS the sanctioned B/ns->Gbps boundary)
constexpr double to_gbps(Rate bytes_per_ns) { return bytes_per_ns * 8.0; }

/// Time to serialize `bytes` at `rate`.
///
/// Rounding contract: the result is ceil(bytes / rate) in whole nanoseconds
/// — a transmitter never finishes early, and exact divisions (the common
/// datacenter speeds, e.g. 1000 B at 12.5 B/ns) stay exact.  The quotient is
/// computed in double, which is exact for any byte count below 2^53 (~9 PB
/// per packet/burst, far beyond any simulated transfer unit).
///
/// Degenerate inputs are guarded rather than undefined: a non-positive rate
/// yields kMaxTime ("this link never finishes"), and a non-positive byte
/// count costs zero time.  Division by a zero/negative rate would otherwise
/// produce an infinity whose integer cast is UB.
constexpr Time serialization_time(std::int64_t bytes, Rate rate) {
  if (bytes <= 0) return 0;
  if (rate <= 0.0) return kMaxTime;
  const double ns = static_cast<double>(bytes) / rate;
  if (ns >= static_cast<double>(kMaxTime)) return kMaxTime;
  const Time whole = static_cast<Time>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

}  // namespace fastcc::sim
