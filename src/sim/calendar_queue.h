// CalendarQueue: an O(1)-amortized event queue (Brown, CACM 1988).
//
// Discrete-event network simulations schedule most events a short, bounded
// distance into the future (serialization times, propagation delays, pacing
// gaps), which is exactly the access pattern calendar queues exploit: events
// hash into "day" buckets by timestamp.  The API matches sim::EventQueue, so
// a simulation can swap schedulers by type alias; equivalence is enforced by
// property tests.  The bucket count doubles/halves as the population grows/
// shrinks, and the bucket width is recalibrated from the observed inter-event
// spacing on each resize.  Cancellation shares EventQueue's generation-
// stamped slot pool, which also owns the callbacks, so buckets hold only
// 24-byte entries and schedule/pop never touch a hash set.
//
// Popping batch-extracts one day at a time.  A scan that locates the
// earliest day used to yield a single event and throw the rest of its work
// away, so every second pop re-walked the day's bucket (and re-filtered the
// off-day entries sharing it).  Instead, the first pop of a day moves every
// in-day entry out of its bucket into `today_` — a small array sorted once
// by (time, seq) — and subsequent pops drain it by index.  Each entry is
// physically touched twice per lifetime (extract, drain) instead of once per
// scan it survives, and the drain path is branch-predictable: no bucket
// walk, no day-membership filtering, no min-tracking.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/event_handle.h"
#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

class CalendarQueue {
 public:
  using Callback = UniqueFunction;
  using Id = std::uint64_t;

  explicit CalendarQueue(std::size_t initial_buckets = 16,
                         Time initial_width = 1 * kMicrosecond);

  Id schedule(Time at, Callback cb) {
    assert(at >= 0);
    // Most events land many days out (propagation delays span dozens of
    // calendar days), so the destination bucket's header is almost always
    // cold.  Issue its fetch first: it overlaps the whole slot-acquire
    // (callback move) below, and push_back's size/capacity load — the one
    // dependent stall on this path — then hits warm.
    __builtin_prefetch(&buckets_[bucket_of(at)]);
    const std::uint64_t seq = next_seq_++;
    const Id id = slots_.acquire(std::move(cb));
    if (today_active_) {
      if (at < today_end_ && at >= today_start_) {
        // The event lands inside the day currently being drained: insert it
        // in (time, seq) order after the drain cursor.  `seq` is the largest
        // issued, so FIFO among equal timestamps means "after every equal
        // entry" — upper_bound by time alone finds that spot.
        insert_today(Entry{at, seq, id});
        maybe_resize();
        return id;
      }
      if (at < today_start_) {
        // Scheduled behind the active day (bounded runs can advance the
        // clock past the drained events; the next schedule may then precede
        // the extracted day).  Rare: spill the remainder back to the buckets
        // and fall through to a fresh scan on the next pop.
        flush_today();
      }
    }
    buckets_[bucket_of(at)].push_back(Entry{at, seq, id});
    maybe_resize();
    return id;
  }

  bool cancel(Id id) {
    // The slot pool answers in O(1); the ordering entry — in a bucket or in
    // today_ — is reclaimed lazily the next time a scan or the drain cursor
    // passes over it.  `pending_dead_` counts exactly those physically-
    // present-but-cancelled entries, so scans skip the per-entry liveness
    // lookup entirely while the count is zero — the overwhelmingly common
    // state, since simulations cancel timers rarely (a retransmission timer
    // on flow completion) but pop constantly.
    if (!slots_.cancel(id)) return false;
    ++pending_dead_;
    return true;
  }

  bool empty() const { return slots_.live() == 0; }
  std::size_t size() const { return slots_.live(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  /// If the earliest live event fires at or before `until`, removes it,
  /// moves its callback into `out`, and returns its timestamp; otherwise
  /// returns kNoEventTime and leaves the queue untouched.  This is the
  /// simulator's hot path: almost every call pops straight off the sorted
  /// today_ array; a day-locating scan runs only once per extracted day.
  Time take_next(Time until, Callback& out) {
    const Entry* front = peek_front();
    if (front == nullptr || front->at > until) return kNoEventTime;
    const Entry entry = *front;
    ++today_pos_;
    if (today_pos_ < today_.size()) {
      // Overlap the *next* pop's callback-slot fetch with this event's
      // execution.  (A scheduler-supplied prefetch hint per entry was tried
      // and removed: it grew the 24-byte Entry to 32, costing ~30% on the
      // pure schedule/pop benchmarks for no measurable end-to-end win.)
      slots_.prefetch(today_[today_pos_].id);
    }
    slots_.release_into(entry.id, out);
    last_popped_ = entry.at;
    return entry.at;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotonically increasing; breaks ties FIFO
    Id id;              // callback lives in the slot pool under this handle
  };

  std::size_t bucket_of(Time t) const {
    // width_ is kept a power of two so day extraction is a shift, not a
    // 64-bit division (one per schedule and one per pop otherwise).
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >>
                                    width_shift_) &
           (buckets_.size() - 1);
  }

  /// Points at the earliest live entry (today_[today_pos_]), refilling
  /// today_ with the next day's entries when the drain runs dry and
  /// skipping over cancelled entries; nullptr when no live event exists.
  const Entry* peek_front();

  /// Locates the earliest day holding a live event and moves its entries
  /// out of the buckets into today_, sorted by (time, seq).  Precondition:
  /// at least one live event exists and today_ is inactive.
  void refill_today();

  /// Sorts today_ by (time, seq): insertion sort for the common short day,
  /// std::sort beyond.
  void sort_today();

  /// Moves every in-day entry of `bucket` into today_ (swap-with-back
  /// removal), reclaiming cancelled entries it passes over.
  void extract_day(std::vector<Entry>& bucket, Time day_start, Time day_end);

  /// Sorted insert into the undrained region of today_ (see schedule()).
  void insert_today(const Entry& e);

  /// Spills the undrained remainder of today_ back into the buckets and
  /// deactivates the day (rebuilds and behind-the-day schedules need the
  /// buckets to be the only physical home again).
  void flush_today();

  void maybe_resize() {
    const std::size_t live = slots_.live();
    if (live > 2 * buckets_.size()) {
      rebuild(buckets_.size() * 2);
    } else if (buckets_.size() > 16 && live < buckets_.size() / 4) {
      rebuild(buckets_.size() / 2);
    }
  }

  void rebuild(std::size_t new_bucket_count);
  void drop_dead(std::vector<Entry>& bucket);
  /// Sets width_ to the power of two at or above `width` (and width_shift_).
  void set_width(Time width);

  /// Reclaims the cancelled entry at bucket[i] (swap-with-back removal).
  /// Physical order within a bucket is irrelevant: min selection is by
  /// (at, seq) and seq is unique, so reclamation order can never change
  /// which event pops next.
  void reclaim_at(std::vector<Entry>& bucket, std::size_t i) {
    slots_.release(bucket[i].id);
    bucket[i] = bucket.back();
    bucket.pop_back();
    --pending_dead_;
  }

  std::vector<std::vector<Entry>> buckets_;
  Time width_;        ///< Day width; always a power of two.
  int width_shift_;   ///< log2(width_).
  Time last_popped_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_dead_ = 0;  ///< Cancelled entries not yet reclaimed.

  /// The day being drained.  While `today_active_`, every entry of the day
  /// [today_start_, today_end_) lives in today_ (never in a bucket), the
  /// region [today_pos_, size) is sorted ascending by (at, seq), and every
  /// bucket entry fires at or after today_end_ — so today_[today_pos_] is
  /// the global minimum.  The array reaches steady-state capacity and is
  /// then reused allocation-free, like every other pop-path structure.
  std::vector<Entry> today_;
  std::size_t today_pos_ = 0;
  Time today_start_ = 0;
  Time today_end_ = 0;
  bool today_active_ = false;

  EventSlotPool slots_;
};

}  // namespace fastcc::sim
