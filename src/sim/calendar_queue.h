// CalendarQueue: an O(1)-amortized event queue (Brown, CACM 1988).
//
// Discrete-event network simulations schedule most events a short, bounded
// distance into the future (serialization times, propagation delays, pacing
// gaps), which is exactly the access pattern calendar queues exploit: events
// hash into "day" buckets by timestamp, and popping scans the current day.
// The API matches sim::EventQueue, so a simulation can swap schedulers by
// type alias; equivalence is enforced by property tests.  The bucket count
// doubles/halves as the population grows/shrinks, and the bucket width is
// recalibrated from the observed inter-event spacing on each resize.
// Cancellation shares EventQueue's generation-stamped slot pool, which also
// owns the callbacks, so buckets hold only 24-byte entries and schedule/pop
// never touch a hash set.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/event_handle.h"
#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

class CalendarQueue {
 public:
  using Callback = UniqueFunction;
  using Id = std::uint64_t;

  explicit CalendarQueue(std::size_t initial_buckets = 16,
                         Time initial_width = 1 * kMicrosecond);

  Id schedule(Time at, Callback cb) {
    assert(at >= 0);
    const std::uint64_t seq = next_seq_++;
    const Id id = slots_.acquire(std::move(cb));
    const std::size_t bi = bucket_of(at);
    buckets_[bi].push_back(Entry{at, seq, id});
    // The cache stays exact through schedules: a later-or-equal entry leaves
    // the minimum untouched (equal timestamps lose the FIFO tie to the older
    // cached seq), and a strictly earlier one *is* the new minimum.
    if ((cached_valid_ && at < cached_.at) || slots_.live() == 1) {
      cached_ = Cached{at, seq, id, static_cast<std::uint32_t>(bi),
                       static_cast<std::uint32_t>(buckets_[bi].size() - 1)};
      cached_valid_ = true;
    }
    maybe_resize();
    return id;
  }

  bool cancel(Id id) {
    // The slot pool answers in O(1); the ordering entry is reclaimed lazily
    // the next time a scan passes over it.  `pending_dead_` counts exactly
    // those physically-present-but-cancelled entries, so scans skip the
    // per-entry liveness lookup entirely while the count is zero — the
    // overwhelmingly common state, since simulations cancel timers rarely
    // (a retransmission timer on flow completion) but pop constantly.
    if (!slots_.cancel(id)) return false;
    ++pending_dead_;
    if (cached_valid_ && id == cached_.id) cached_valid_ = false;
    return true;
  }

  bool empty() const { return slots_.live() == 0; }
  std::size_t size() const { return slots_.live(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  /// If the earliest live event fires at or before `until`, removes it,
  /// moves its callback into `out`, and returns its timestamp; otherwise
  /// returns kNoEventTime and leaves the queue untouched.  This is the
  /// simulator's hot path: at most one find_min per event (none when the
  /// previous scan's runner-up is cached), and the caller advances its
  /// clock before invoking the callback.
  Time take_next(Time until, Callback& out) {
    if (empty()) return kNoEventTime;
    std::size_t bi, i;
    if (cached_valid_) {
      bi = cached_.bucket;
      i = cached_.index;
      second_valid_ = false;
    } else {
      const auto pos = find_min();
      bi = pos.first;
      i = pos.second;
    }
    const Entry entry = buckets_[bi][i];
    if (entry.at > until) return kNoEventTime;
    buckets_[bi][i] = buckets_[bi].back();
    buckets_[bi].pop_back();
    slots_.release_into(entry.id, out);
    last_popped_ = entry.at;
    // Promote the scan's runner-up to cached minimum.  If it sat at this
    // bucket's tail, the swap-with-back above moved it into slot i.
    if (second_valid_) {
      if (second_.bucket == bi && second_.index == buckets_[bi].size()) {
        second_.index = static_cast<std::uint32_t>(i);
      }
      cached_ = second_;
      cached_valid_ = true;
      second_valid_ = false;
    } else {
      cached_valid_ = false;
    }
    maybe_resize();
    return entry.at;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotonically increasing; breaks ties FIFO
    Id id;              // callback lives in the slot pool under this handle
  };

  std::size_t bucket_of(Time t) const {
    // width_ is kept a power of two so day extraction is a shift, not a
    // 64-bit division (one per schedule and one per pop otherwise).
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >>
                                    width_shift_) &
           (buckets_.size() - 1);
  }

  /// Locates the earliest live entry; returns (bucket, index-in-bucket).
  /// Reclaims cancelled entries it passes over (fused into the same scan).
  std::pair<std::size_t, std::size_t> find_min();

  void maybe_resize() {
    const std::size_t live = slots_.live();
    if (live > 2 * buckets_.size()) {
      rebuild(buckets_.size() * 2, width_);
    } else if (buckets_.size() > 16 && live < buckets_.size() / 4) {
      rebuild(buckets_.size() / 2, width_);
    }
  }

  void rebuild(std::size_t new_bucket_count, Time new_width);
  void drop_dead(std::vector<Entry>& bucket);
  /// Sets width_ to the power of two at or above `width` (and width_shift_).
  void set_width(Time width);

  /// Reclaims the cancelled entry at bucket[i] (swap-with-back removal).
  /// Physical order within a bucket is irrelevant: min selection is by
  /// (at, seq) and seq is unique, so reclamation order can never change
  /// which event pops next.
  void reclaim_at(std::vector<Entry>& bucket, std::size_t i) {
    slots_.release(bucket[i].id);
    bucket[i] = bucket.back();
    bucket.pop_back();
    --pending_dead_;
  }

  std::vector<std::vector<Entry>> buckets_;
  Time width_;        ///< Day width; always a power of two.
  int width_shift_;   ///< log2(width_).
  Time last_popped_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_dead_ = 0;  ///< Cancelled entries not yet reclaimed.

  /// Min-entry cache.  Invariant: while `cached_valid_`, `cached_` names the
  /// globally earliest live entry *and* its physical position.  Schedules
  /// preserve it (see schedule()); a cancel of the cached entry drops it;
  /// entries otherwise only move during full scans and rebuilds, which both
  /// run with the cache invalid.  find_min's full scan refills the cache and
  /// additionally records the runner-up within the winning day — provably
  /// the global second minimum, since every entry outside that day fires
  /// strictly later — which take_next promotes after popping, making every
  /// other pop O(1).
  struct Cached {
    Time at = 0;
    std::uint64_t seq = 0;
    Id id = 0;
    std::uint32_t bucket = 0;
    std::uint32_t index = 0;
  };
  void cache_from(std::size_t bucket, std::size_t index, Cached& out) const {
    const Entry& e = buckets_[bucket][index];
    out = Cached{e.at, e.seq, e.id, static_cast<std::uint32_t>(bucket),
                 static_cast<std::uint32_t>(index)};
  }

  Cached cached_;
  bool cached_valid_ = false;
  Cached second_;       ///< Runner-up from the current full scan only.
  bool second_valid_ = false;

  EventSlotPool slots_;
};

}  // namespace fastcc::sim
