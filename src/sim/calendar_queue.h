// CalendarQueue: an O(1)-amortized event queue (Brown, CACM 1988).
//
// Discrete-event network simulations schedule most events a short, bounded
// distance into the future (serialization times, propagation delays, pacing
// gaps), which is exactly the access pattern calendar queues exploit: events
// hash into "day" buckets by timestamp, and popping scans the current day.
// The API matches sim::EventQueue, so a simulation can swap schedulers by
// type alias; equivalence is enforced by property tests.  The bucket count
// doubles/halves as the population grows/shrinks, and the bucket width is
// recalibrated from the observed inter-event spacing on each resize.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

class CalendarQueue {
 public:
  using Callback = UniqueFunction;
  using Id = std::uint64_t;

  explicit CalendarQueue(std::size_t initial_buckets = 16,
                         Time initial_width = 1000);

  Id schedule(Time at, Callback cb);
  bool cancel(Id id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  Time pop_and_run();

 private:
  struct Entry {
    Time at;
    Id id;
    Callback cb;
  };

  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t / width_) & (buckets_.size() - 1);
  }

  /// Locates the earliest live entry; returns (bucket, index-in-bucket).
  std::pair<std::size_t, std::size_t> find_min();

  void maybe_resize();
  void rebuild(std::size_t new_bucket_count, Time new_width);
  void drop_dead(std::vector<Entry>& bucket);

  std::vector<std::vector<Entry>> buckets_;
  Time width_;
  Time last_popped_ = 0;
  std::size_t live_ = 0;
  Id next_id_ = 0;
  std::unordered_set<Id> pending_;
};

}  // namespace fastcc::sim
