// CalendarQueue: an O(1)-amortized event queue (Brown, CACM 1988).
//
// Discrete-event network simulations schedule most events a short, bounded
// distance into the future (serialization times, propagation delays, pacing
// gaps), which is exactly the access pattern calendar queues exploit: events
// hash into "day" buckets by timestamp, and popping scans the current day.
// The API matches sim::EventQueue, so a simulation can swap schedulers by
// type alias; equivalence is enforced by property tests.  The bucket count
// doubles/halves as the population grows/shrinks, and the bucket width is
// recalibrated from the observed inter-event spacing on each resize.
// Cancellation shares EventQueue's generation-stamped slot pool, which also
// owns the callbacks, so buckets hold only 24-byte entries and schedule/pop
// never touch a hash set.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_handle.h"
#include "sim/time.h"
#include "sim/unique_function.h"

namespace fastcc::sim {

class CalendarQueue {
 public:
  using Callback = UniqueFunction;
  using Id = std::uint64_t;

  explicit CalendarQueue(std::size_t initial_buckets = 16,
                         Time initial_width = 1 * kMicrosecond);

  Id schedule(Time at, Callback cb);
  bool cancel(Id id);

  bool empty() const { return slots_.live() == 0; }
  std::size_t size() const { return slots_.live(); }

  /// Timestamp of the earliest live event.  Precondition: !empty().
  Time next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  Time pop_and_run();

  /// If the earliest live event fires at or before `until`, removes it,
  /// moves its callback into `out`, and returns its timestamp; otherwise
  /// returns kNoEventTime and leaves the queue untouched.  This is the
  /// simulator's hot path: one find_min per event, and the caller advances
  /// its clock before invoking the callback.
  Time take_next(Time until, Callback& out);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // monotonically increasing; breaks ties FIFO
    Id id;              // callback lives in the slot pool under this handle
  };

  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t / width_) & (buckets_.size() - 1);
  }

  /// Locates the earliest live entry; returns (bucket, index-in-bucket).
  std::pair<std::size_t, std::size_t> find_min();

  void maybe_resize();
  void rebuild(std::size_t new_bucket_count, Time new_width);
  void drop_dead(std::vector<Entry>& bucket);

  std::vector<std::vector<Entry>> buckets_;
  Time width_;
  Time last_popped_ = 0;
  std::uint64_t next_seq_ = 0;
  EventSlotPool slots_;
};

}  // namespace fastcc::sim
