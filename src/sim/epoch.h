// Conservative barrier-epoch executor for space-parallel simulation.
//
// Classic conservative-synchronization PDES, specialized to the one shape
// this codebase needs: a fixed set of logical shards that may only interact
// across epoch boundaries.  Time is cut into epochs of length L (the
// lookahead — the minimum latency of any cross-shard interaction).  Within
// an epoch every shard advances independently; an event generated in epoch k
// for another shard cannot take effect before time (k+1)*L, so exchanging
// those events at a barrier between epochs is sufficient for correctness.
//
// The executor knows nothing about simulators or packets.  It runs
// `shard_fn(s)` for every shard each epoch — spread across `workers` OS
// threads via an atomic work index, the calling thread participating — then
// runs `barrier_fn()` exactly once, single-threaded, inside the barrier
// (publish mailboxes, advance the horizon, decide whether to continue).
#pragma once

#include <functional>
#include <vector>

#include "util/contracts.h"

namespace fastcc::sim {

class EpochCoordinator {
 public:
  /// Advances shard `s` through the current epoch.  Called once per shard
  /// per epoch, possibly from any worker thread, but never concurrently for
  /// the same shard.
  using ShardFn = std::function<void(int)>;
  /// Epoch-boundary step.  Runs single-threaded while all workers are
  /// parked; returns false to end the run.
  using BarrierFn = std::function<bool()>;

  /// Runs epochs until `barrier_fn` returns false.  `workers` is clamped to
  /// [1, shards]; workers == 1 degenerates to a plain serial loop with no
  /// thread, atomic, or barrier anywhere on the path, so a single-worker
  /// sharded run is bit-identical to — and as debuggable as — serial code.
  ///
  /// Phase contract (checked by fastcc-shardsafe at the call sites that
  /// implement the callables): `shard_fn` is worker-phase code — it may
  /// touch only FASTCC_SHARD_LOCAL state of the shard it was handed —
  /// while `barrier_fn` is the single-threaded completion step, the only
  /// place FASTCC_EPOCH_PUBLISH state may be written.
  static void run(int shards, int workers,
                  FASTCC_SHARD_LOCAL const ShardFn& shard_fn,
                  FASTCC_EPOCH_PUBLISH const BarrierFn& barrier_fn);

  /// Active-set protocol: like run(), but each epoch advances only the
  /// shards listed in `active` — a shard whose next local event and
  /// inbound mailboxes both sit beyond the epoch horizon is simply never
  /// claimed, so an idle shard costs nothing (no injection scan, no
  /// simulator touch, no cache traffic).  `active`'s initial contents
  /// drive the first epoch; `barrier_fn` rewrites the vector inside the
  /// barrier for the next one (writing it anywhere else is a data race —
  /// it is FASTCC_EPOCH_PUBLISH state).  The planner must keep the set
  /// deterministic: membership may depend only on simulation state, never
  /// on the thread schedule, or worker counts stop being result-neutral.
  /// `workers` is clamped to [1, max(1, shards)] where `shards` bounds the
  /// worker pool size; an epoch with fewer active shards than workers just
  /// parks the surplus at the barrier.
  static void run_active(int shards, int workers,
                         FASTCC_EPOCH_PUBLISH const std::vector<int>& active,
                         FASTCC_SHARD_LOCAL const ShardFn& shard_fn,
                         FASTCC_EPOCH_PUBLISH const BarrierFn& barrier_fn);
};

}  // namespace fastcc::sim
