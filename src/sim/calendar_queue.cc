#include "sim/calendar_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace fastcc::sim {

CalendarQueue::CalendarQueue(std::size_t initial_buckets, Time initial_width)
    : width_(std::max<Time>(initial_width, 1)) {
  // Power-of-two bucket count enables mask-based hashing.
  std::size_t n = 1;
  while (n < initial_buckets) n <<= 1;
  buckets_.resize(n);
}

CalendarQueue::Id CalendarQueue::schedule(Time at, Callback cb) {
  const Id id = next_id_++;
  buckets_[bucket_of(at)].push_back(Entry{at, id, std::move(cb)});
  pending_.insert(id);
  ++live_;
  maybe_resize();
  return id;
}

bool CalendarQueue::cancel(Id id) {
  if (pending_.erase(id) == 0) return false;
  --live_;
  return true;
}

void CalendarQueue::drop_dead(std::vector<Entry>& bucket) {
  // An entry physically present whose id is no longer pending was cancelled
  // (pops remove entries eagerly), so it can be reclaimed here lazily.
  for (std::size_t i = 0; i < bucket.size();) {
    if (!pending_.contains(bucket[i].id)) {
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
    } else {
      ++i;
    }
  }
}

std::pair<std::size_t, std::size_t> CalendarQueue::find_min() {
  assert(live_ > 0);
  const std::size_t mask = buckets_.size() - 1;
  // Phase 1: walk day-by-day from the last popped timestamp; the first
  // bucket holding an event belonging to the current day yields the minimum.
  std::uint64_t day = static_cast<std::uint64_t>(last_popped_ / width_);
  for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
    const std::size_t bi = static_cast<std::size_t>(day) & mask;
    std::vector<Entry>& bucket = buckets_[bi];
    drop_dead(bucket);
    std::size_t best = bucket.size();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (static_cast<std::uint64_t>(bucket[i].at / width_) != day) continue;
      if (best == bucket.size() || bucket[i].at < bucket[best].at ||
          (bucket[i].at == bucket[best].at &&
           bucket[i].id < bucket[best].id)) {
        best = i;
      }
    }
    if (best != bucket.size()) return {bi, best};
  }
  // Phase 2 (sparse population): global scan.
  std::size_t min_b = buckets_.size(), min_i = 0;
  Time min_t = std::numeric_limits<Time>::max();
  Id min_id = std::numeric_limits<Id>::max();
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    drop_dead(buckets_[bi]);
    for (std::size_t i = 0; i < buckets_[bi].size(); ++i) {
      const Entry& e = buckets_[bi][i];
      if (e.at < min_t || (e.at == min_t && e.id < min_id)) {
        min_t = e.at;
        min_id = e.id;
        min_b = bi;
        min_i = i;
      }
    }
  }
  assert(min_b < buckets_.size());
  return {min_b, min_i};
}

Time CalendarQueue::next_time() {
  const auto [bi, i] = find_min();
  return buckets_[bi][i].at;
}

Time CalendarQueue::pop_and_run() {
  const auto [bi, i] = find_min();
  Entry entry = std::move(buckets_[bi][i]);
  buckets_[bi][i] = std::move(buckets_[bi].back());
  buckets_[bi].pop_back();
  --live_;
  pending_.erase(entry.id);
  last_popped_ = entry.at;
  maybe_resize();
  entry.cb();
  return entry.at;
}

void CalendarQueue::maybe_resize() {
  if (live_ > 2 * buckets_.size()) {
    rebuild(buckets_.size() * 2, width_);
  } else if (buckets_.size() > 16 && live_ < buckets_.size() / 4) {
    rebuild(buckets_.size() / 2, width_);
  }
}

void CalendarQueue::rebuild(std::size_t new_bucket_count, Time /*hint*/) {
  std::vector<Entry> all;
  all.reserve(live_);
  Time min_t = std::numeric_limits<Time>::max();
  Time max_t = std::numeric_limits<Time>::min();
  for (auto& bucket : buckets_) {
    drop_dead(bucket);
    for (Entry& e : bucket) {
      min_t = std::min(min_t, e.at);
      max_t = std::max(max_t, e.at);
      all.push_back(std::move(e));
    }
    bucket.clear();
  }
  buckets_.clear();
  buckets_.resize(new_bucket_count);
  // Recalibrate the day width so the live population spreads over roughly
  // one "year" of buckets.
  if (all.size() > 1 && max_t > min_t) {
    width_ = std::max<Time>(
        1, (max_t - min_t) / static_cast<Time>(all.size()));
  }
  for (Entry& e : all) {
    buckets_[bucket_of(e.at)].push_back(std::move(e));
  }
}

}  // namespace fastcc::sim
