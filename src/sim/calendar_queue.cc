#include "sim/calendar_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace fastcc::sim {

CalendarQueue::CalendarQueue(std::size_t initial_buckets, Time initial_width) {
  set_width(initial_width);
  // Power-of-two bucket count enables mask-based hashing.
  std::size_t n = 1;
  while (n < initial_buckets) n <<= 1;
  buckets_.resize(n);
}

void CalendarQueue::set_width(Time width) {
  // Round up to a power of two (at most 2x off the calibrated target, well
  // inside the heuristic's slack) so day extraction compiles to a shift.
  const auto w = std::bit_ceil(
      static_cast<std::uint64_t>(std::max<Time>(width, 1)));
  width_ = static_cast<Time>(w);
  width_shift_ = std::countr_zero(w);
}

void CalendarQueue::drop_dead(std::vector<Entry>& bucket) {
  // An entry physically present whose handle is no longer live was cancelled
  // (pops remove entries eagerly), so it can be reclaimed here lazily.  With
  // no cancellations outstanding there is nothing to look for, and the
  // per-entry slot-pool lookups (a cache miss each) are skipped wholesale.
  if (pending_dead_ == 0) return;
  for (std::size_t i = 0; i < bucket.size();) {
    if (!slots_.is_live(bucket[i].id)) {
      reclaim_at(bucket, i);
    } else {
      ++i;
    }
  }
}

std::pair<std::size_t, std::size_t> CalendarQueue::find_min() {
  assert(!empty());
  // A runner-up recorded by an earlier scan may have been invalidated by
  // schedules or cancels since; only the one produced inside the current
  // take_next call (no interleaving possible) is ever consumed.
  second_valid_ = false;
  if (cached_valid_) {
    assert(buckets_[cached_.bucket][cached_.index].seq == cached_.seq);
    return {cached_.bucket, cached_.index};
  }
  const std::size_t mask = buckets_.size() - 1;
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  // Phase 1: walk day-by-day from the last popped timestamp; the first
  // bucket holding an event belonging to the current day yields the minimum.
  // One fused pass per bucket: cancelled entries are reclaimed in the same
  // sweep that tests day membership, and membership is an interval check
  // against the day's [start, end) window rather than a per-entry division.
  // The same sweep records the day's runner-up: every entry outside this day
  // fires at or after day_end, strictly later than anything inside it, so
  // the in-day second-best is the global second-best.
  std::uint64_t day = static_cast<std::uint64_t>(last_popped_) >> width_shift_;
  for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
    const std::size_t bi = static_cast<std::size_t>(day) & mask;
    std::vector<Entry>& bucket = buckets_[bi];
    const Time day_start = static_cast<Time>(day << width_shift_);
    const Time day_end = day_start + width_;
    std::size_t best = npos, second = npos;
    for (std::size_t i = 0; i < bucket.size();) {
      if (pending_dead_ != 0 && !slots_.is_live(bucket[i].id)) {
        // Swap-with-back removal re-examines the swapped-in tail at the same
        // index.  Neither candidate can point at the tail here: best,
        // second <= i (only already-scanned entries are candidates) and
        // i < size() - 1 unless i is the tail itself, in which case
        // bucket[i] is dead and both candidates are < i.
        reclaim_at(bucket, i);
        continue;
      }
      const Entry& e = bucket[i];
      if (e.at >= day_start && e.at < day_end) {
        if (best == npos || e.at < bucket[best].at ||
            (e.at == bucket[best].at && e.seq < bucket[best].seq)) {
          second = best;
          best = i;
        } else if (second == npos || e.at < bucket[second].at ||
                   (e.at == bucket[second].at && e.seq < bucket[second].seq)) {
          second = i;
        }
      }
      ++i;
    }
    if (best != npos) {
      cache_from(bi, best, cached_);
      cached_valid_ = true;
      if (second != npos) {
        cache_from(bi, second, second_);
        second_valid_ = true;
      }
      return {bi, best};
    }
  }
  // Phase 2 (sparse population): global scan, tracking best and runner-up.
  std::size_t min_b = npos, min_i = 0, sec_b = npos, sec_i = 0;
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    drop_dead(buckets_[bi]);
    for (std::size_t i = 0; i < buckets_[bi].size(); ++i) {
      const Entry& e = buckets_[bi][i];
      if (min_b == npos || e.at < buckets_[min_b][min_i].at ||
          (e.at == buckets_[min_b][min_i].at &&
           e.seq < buckets_[min_b][min_i].seq)) {
        sec_b = min_b;
        sec_i = min_i;
        min_b = bi;
        min_i = i;
      } else if (sec_b == npos || e.at < buckets_[sec_b][sec_i].at ||
                 (e.at == buckets_[sec_b][sec_i].at &&
                  e.seq < buckets_[sec_b][sec_i].seq)) {
        sec_b = bi;
        sec_i = i;
      }
    }
  }
  assert(min_b != npos);
  cache_from(min_b, min_i, cached_);
  cached_valid_ = true;
  if (sec_b != npos) {
    cache_from(sec_b, sec_i, second_);
    second_valid_ = true;
  }
  return {min_b, min_i};
}

Time CalendarQueue::next_time() {
  assert(!empty());
  const auto [bi, i] = find_min();
  return buckets_[bi][i].at;
}

Time CalendarQueue::pop_and_run() {
  assert(!empty());
  Callback cb;
  const Time at = take_next(std::numeric_limits<Time>::max(), cb);
  assert(at != kNoEventTime);
  cb();
  return at;
}

void CalendarQueue::rebuild(std::size_t new_bucket_count, Time /*hint*/) {
  // Entries relocate wholesale; any cached position is garbage afterwards.
  cached_valid_ = false;
  second_valid_ = false;
  std::vector<Entry> all;
  all.reserve(slots_.live());
  Time min_t = std::numeric_limits<Time>::max();
  Time max_t = std::numeric_limits<Time>::min();
  for (auto& bucket : buckets_) {
    drop_dead(bucket);
    for (const Entry& e : bucket) {
      min_t = std::min(min_t, e.at);
      max_t = std::max(max_t, e.at);
      all.push_back(e);
    }
    bucket.clear();
  }
  buckets_.clear();
  buckets_.resize(new_bucket_count);
  // Recalibrate the day width from the *median* inter-event gap.  The mean,
  // (max - min) / n, collapses under the bimodal mix real simulations
  // produce — dense near-term packet events plus a few far-future
  // retransmit timers — because the outliers stretch the range and every
  // near-term event lands in one bucket, degrading pops to linear scans.
  // The median ignores the outliers and sizes days for the dense mode; the
  // 3x factor targets a few events per day (Brown, CACM 1988).
  if (all.size() > 1 && max_t > min_t) {
    std::vector<Time> times;
    times.reserve(all.size());
    for (const Entry& e : all) times.push_back(e.at);
    std::sort(times.begin(), times.end());
    std::vector<Time> gaps;
    gaps.reserve(times.size() - 1);
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    // Zero gaps (events sharing a timestamp) stay in: they signal high
    // density and pull the median down, so bursts of simultaneous events
    // get narrow days instead of one overstuffed bucket.
    const std::size_t mid = gaps.size() / 2;
    std::nth_element(gaps.begin(), gaps.begin() + mid, gaps.end());
    set_width(3 * gaps[mid]);
  }
  for (const Entry& e : all) {
    buckets_[bucket_of(e.at)].push_back(e);
  }
}

}  // namespace fastcc::sim
