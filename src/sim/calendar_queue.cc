#include "sim/calendar_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace fastcc::sim {

CalendarQueue::CalendarQueue(std::size_t initial_buckets, Time initial_width)
    : width_(std::max<Time>(initial_width, 1)) {
  // Power-of-two bucket count enables mask-based hashing.
  std::size_t n = 1;
  while (n < initial_buckets) n <<= 1;
  buckets_.resize(n);
}

CalendarQueue::Id CalendarQueue::schedule(Time at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  const Id id = slots_.acquire(std::move(cb));
  buckets_[bucket_of(at)].push_back(Entry{at, seq, id});
  maybe_resize();
  return id;
}

bool CalendarQueue::cancel(Id id) { return slots_.cancel(id); }

void CalendarQueue::drop_dead(std::vector<Entry>& bucket) {
  // An entry physically present whose handle is no longer live was cancelled
  // (pops remove entries eagerly), so it can be reclaimed here lazily.
  for (std::size_t i = 0; i < bucket.size();) {
    if (!slots_.is_live(bucket[i].id)) {
      slots_.release(bucket[i].id);
      bucket[i] = bucket.back();
      bucket.pop_back();
    } else {
      ++i;
    }
  }
}

std::pair<std::size_t, std::size_t> CalendarQueue::find_min() {
  assert(!empty());
  const std::size_t mask = buckets_.size() - 1;
  // Phase 1: walk day-by-day from the last popped timestamp; the first
  // bucket holding an event belonging to the current day yields the minimum.
  std::uint64_t day = static_cast<std::uint64_t>(last_popped_ / width_);
  for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
    const std::size_t bi = static_cast<std::size_t>(day) & mask;
    std::vector<Entry>& bucket = buckets_[bi];
    drop_dead(bucket);
    std::size_t best = bucket.size();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (static_cast<std::uint64_t>(bucket[i].at / width_) != day) continue;
      if (best == bucket.size() || bucket[i].at < bucket[best].at ||
          (bucket[i].at == bucket[best].at &&
           bucket[i].seq < bucket[best].seq)) {
        best = i;
      }
    }
    if (best != bucket.size()) return {bi, best};
  }
  // Phase 2 (sparse population): global scan.
  std::size_t min_b = buckets_.size(), min_i = 0;
  Time min_t = std::numeric_limits<Time>::max();
  std::uint64_t min_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    drop_dead(buckets_[bi]);
    for (std::size_t i = 0; i < buckets_[bi].size(); ++i) {
      const Entry& e = buckets_[bi][i];
      if (e.at < min_t || (e.at == min_t && e.seq < min_seq)) {
        min_t = e.at;
        min_seq = e.seq;
        min_b = bi;
        min_i = i;
      }
    }
  }
  assert(min_b < buckets_.size());
  return {min_b, min_i};
}

Time CalendarQueue::next_time() {
  assert(!empty());
  const auto [bi, i] = find_min();
  return buckets_[bi][i].at;
}

Time CalendarQueue::take_next(Time until, Callback& out) {
  if (empty()) return kNoEventTime;
  const auto [bi, i] = find_min();
  const Entry entry = buckets_[bi][i];
  if (entry.at > until) return kNoEventTime;
  buckets_[bi][i] = buckets_[bi].back();
  buckets_[bi].pop_back();
  slots_.release_into(entry.id, out);
  last_popped_ = entry.at;
  maybe_resize();
  return entry.at;
}

Time CalendarQueue::pop_and_run() {
  assert(!empty());
  Callback cb;
  const Time at = take_next(std::numeric_limits<Time>::max(), cb);
  assert(at != kNoEventTime);
  cb();
  return at;
}

void CalendarQueue::maybe_resize() {
  const std::size_t live = slots_.live();
  if (live > 2 * buckets_.size()) {
    rebuild(buckets_.size() * 2, width_);
  } else if (buckets_.size() > 16 && live < buckets_.size() / 4) {
    rebuild(buckets_.size() / 2, width_);
  }
}

void CalendarQueue::rebuild(std::size_t new_bucket_count, Time /*hint*/) {
  std::vector<Entry> all;
  all.reserve(slots_.live());
  Time min_t = std::numeric_limits<Time>::max();
  Time max_t = std::numeric_limits<Time>::min();
  for (auto& bucket : buckets_) {
    drop_dead(bucket);
    for (const Entry& e : bucket) {
      min_t = std::min(min_t, e.at);
      max_t = std::max(max_t, e.at);
      all.push_back(e);
    }
    bucket.clear();
  }
  buckets_.clear();
  buckets_.resize(new_bucket_count);
  // Recalibrate the day width from the *median* inter-event gap.  The mean,
  // (max - min) / n, collapses under the bimodal mix real simulations
  // produce — dense near-term packet events plus a few far-future
  // retransmit timers — because the outliers stretch the range and every
  // near-term event lands in one bucket, degrading pops to linear scans.
  // The median ignores the outliers and sizes days for the dense mode; the
  // 3x factor targets a few events per day (Brown, CACM 1988).
  if (all.size() > 1 && max_t > min_t) {
    std::vector<Time> times;
    times.reserve(all.size());
    for (const Entry& e : all) times.push_back(e.at);
    std::sort(times.begin(), times.end());
    std::vector<Time> gaps;
    gaps.reserve(times.size() - 1);
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    // Zero gaps (events sharing a timestamp) stay in: they signal high
    // density and pull the median down, so bursts of simultaneous events
    // get narrow days instead of one overstuffed bucket.
    const std::size_t mid = gaps.size() / 2;
    std::nth_element(gaps.begin(), gaps.begin() + mid, gaps.end());
    width_ = std::max<Time>(1, 3 * gaps[mid]);
  }
  for (const Entry& e : all) {
    buckets_[bucket_of(e.at)].push_back(e);
  }
}

}  // namespace fastcc::sim
