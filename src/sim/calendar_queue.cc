#include "sim/calendar_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace fastcc::sim {

CalendarQueue::CalendarQueue(std::size_t initial_buckets, Time initial_width) {
  set_width(initial_width);
  // Power-of-two bucket count enables mask-based hashing.
  std::size_t n = 1;
  while (n < initial_buckets) n <<= 1;
  buckets_.resize(n);
}

void CalendarQueue::set_width(Time width) {
  // Round up to a power of two (at most 2x off the calibrated target, well
  // inside the heuristic's slack) so day extraction compiles to a shift.
  const auto w = std::bit_ceil(
      static_cast<std::uint64_t>(std::max<Time>(width, 1)));
  width_ = static_cast<Time>(w);
  width_shift_ = std::countr_zero(w);
}

void CalendarQueue::drop_dead(std::vector<Entry>& bucket) {
  // An entry physically present whose handle is no longer live was cancelled
  // (pops remove entries eagerly), so it can be reclaimed here lazily.  With
  // no cancellations outstanding there is nothing to look for, and the
  // per-entry slot-pool lookups (a cache miss each) are skipped wholesale.
  if (pending_dead_ == 0) return;
  for (std::size_t i = 0; i < bucket.size();) {
    if (!slots_.is_live(bucket[i].id)) {
      reclaim_at(bucket, i);
    } else {
      ++i;
    }
  }
}

void CalendarQueue::extract_day(std::vector<Entry>& bucket, Time day_start,
                                Time day_end) {
  // One fused pass: cancelled entries are reclaimed in the same sweep that
  // tests day membership, and membership is an interval check against the
  // day's [start, end) window rather than a per-entry division.  In-day
  // entries move wholesale into today_; off-day entries (later laps of the
  // wrapped bucket) stay put.
  for (std::size_t i = 0; i < bucket.size();) {
    if (pending_dead_ != 0 && !slots_.is_live(bucket[i].id)) {
      // Swap-with-back removal re-examines the swapped-in tail at index i.
      reclaim_at(bucket, i);
      continue;
    }
    const Entry& e = bucket[i];
    if (e.at >= day_start && e.at < day_end) {
      today_.push_back(e);
      bucket[i] = bucket.back();
      bucket.pop_back();
      continue;
    }
    ++i;
  }
}

void CalendarQueue::sort_today() {
  // A day holds a handful of entries (the width calibration targets ~3x the
  // median inter-event gap), so the common case is a 2-8 element sort where
  // std::sort's introsort dispatch costs more than the work itself.  Plain
  // binary-insertion for short days, std::sort beyond.
  const auto by_time_fifo = [](const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  };
  if (today_.size() <= 16) {
    for (std::size_t i = 1; i < today_.size(); ++i) {
      Entry e = today_[i];
      std::size_t j = i;
      while (j > 0 && by_time_fifo(e, today_[j - 1])) {
        today_[j] = today_[j - 1];
        --j;
      }
      today_[j] = e;
    }
    return;
  }
  std::sort(today_.begin(), today_.end(), by_time_fifo);
}

void CalendarQueue::refill_today() {
  assert(!today_active_ && today_.empty() && today_pos_ == 0);
  assert(slots_.live() > 0);
  // Pops never shrink the table themselves (a per-pop check taxes the hot
  // path for a rare transition); the population-shrink side of the resize
  // heuristic runs here, once per extracted day.
  maybe_resize();
  const std::size_t mask = buckets_.size() - 1;
  // Phase 1: walk day-by-day from the last popped timestamp; the first day
  // holding a live event is extracted wholesale.  Every entry outside the
  // winning day fires at or after its day_end, strictly later than anything
  // inside it, so the extracted-and-sorted array is a prefix of the global
  // pop order.
  std::uint64_t day = static_cast<std::uint64_t>(last_popped_) >> width_shift_;
  for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
    const Time day_start = static_cast<Time>(day << width_shift_);
    extract_day(buckets_[static_cast<std::size_t>(day) & mask], day_start,
                day_start + width_);
    if (!today_.empty()) {
      sort_today();
      today_start_ = day_start;
      today_end_ = day_start + width_;
      today_active_ = true;
      return;
    }
  }
  // Phase 2 (sparse population): the next event lies beyond one full lap of
  // days.  Scan everything for the global minimum, then extract its day.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t min_b = npos, min_i = 0;
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    drop_dead(buckets_[bi]);
    for (std::size_t i = 0; i < buckets_[bi].size(); ++i) {
      const Entry& e = buckets_[bi][i];
      if (min_b == npos || e.at < buckets_[min_b][min_i].at ||
          (e.at == buckets_[min_b][min_i].at &&
           e.seq < buckets_[min_b][min_i].seq)) {
        min_b = bi;
        min_i = i;
      }
    }
  }
  assert(min_b != npos);
  const std::uint64_t min_day =
      static_cast<std::uint64_t>(buckets_[min_b][min_i].at) >> width_shift_;
  const Time day_start = static_cast<Time>(min_day << width_shift_);
  extract_day(buckets_[min_b], day_start, day_start + width_);
  assert(!today_.empty());
  sort_today();
  today_start_ = day_start;
  today_end_ = day_start + width_;
  today_active_ = true;
}

const CalendarQueue::Entry* CalendarQueue::peek_front() {
  while (true) {
    if (slots_.live() == 0) return nullptr;
    if (!today_active_) refill_today();
    // Cancelled-under-the-cursor entries are skipped (and their slots
    // reclaimed) here; extraction only filtered the dead known at scan time.
    while (today_pos_ < today_.size()) {
      const Entry& e = today_[today_pos_];
      if (pending_dead_ != 0 && !slots_.is_live(e.id)) {
        slots_.release(e.id);
        --pending_dead_;
        ++today_pos_;
        continue;
      }
      return &e;
    }
    today_.clear();
    today_pos_ = 0;
    today_active_ = false;
  }
}

void CalendarQueue::insert_today(const Entry& e) {
  // Upper-bound by timestamp over the undrained region: the new entry holds
  // the largest seq issued, so FIFO order among equal timestamps is exactly
  // "after every existing equal entry".
  const auto begin = today_.begin() + static_cast<std::ptrdiff_t>(today_pos_);
  const auto it = std::upper_bound(
      begin, today_.end(), e.at,
      [](Time at, const Entry& x) { return at < x.at; });
  const std::ptrdiff_t front_dist = it - begin;
  const std::ptrdiff_t back_dist = today_.end() - it;
  if (today_pos_ > 0 && front_dist < back_dist) {
    // The drained slots before the cursor are free space, and in-day
    // schedules land near the cursor (they fire between "now" and day end),
    // so shifting the short undrained prefix one slot left is far cheaper
    // than vector::insert moving the day's whole tail.
    std::move(begin, it, begin - 1);
    *(it - 1) = e;
    --today_pos_;
  } else {
    today_.insert(it, e);
  }
}

void CalendarQueue::flush_today() {
  for (std::size_t i = today_pos_; i < today_.size(); ++i) {
    buckets_[bucket_of(today_[i].at)].push_back(today_[i]);
  }
  today_.clear();
  today_pos_ = 0;
  today_active_ = false;
}

Time CalendarQueue::next_time() {
  assert(!empty());
  const Entry* front = peek_front();
  assert(front != nullptr);
  return front->at;
}

Time CalendarQueue::pop_and_run() {
  assert(!empty());
  Callback cb;
  const Time at = take_next(std::numeric_limits<Time>::max(), cb);
  assert(at != kNoEventTime);
  cb();
  return at;
}

void CalendarQueue::rebuild(std::size_t new_bucket_count) {
  // Entries relocate wholesale, so the active day (whose invariant is
  // "nothing of this day lives in a bucket") must be dissolved first.
  if (today_active_) flush_today();
  std::vector<Entry> all;
  all.reserve(slots_.live());
  Time min_t = std::numeric_limits<Time>::max();
  Time max_t = std::numeric_limits<Time>::min();
  for (auto& bucket : buckets_) {
    drop_dead(bucket);
    for (const Entry& e : bucket) {
      min_t = std::min(min_t, e.at);
      max_t = std::max(max_t, e.at);
      all.push_back(e);
    }
    bucket.clear();
  }
  buckets_.clear();
  buckets_.resize(new_bucket_count);
  // Recalibrate the day width from the median *non-zero* inter-event gap.
  // The mean, (max - min) / n, collapses under the bimodal mix real
  // simulations produce — dense near-term packet events plus a few
  // far-future retransmit timers — because the outliers stretch the range
  // and every near-term event lands in one bucket, degrading pops to linear
  // scans.  Zero gaps (events sharing a timestamp) are excluded: they carry
  // no width information — simultaneous events land in the same day at
  // *any* width — yet a synchronized burst (an incast start, a barrier of
  // flow arrivals) can make them the majority, dragging the median to zero
  // and the width to a single nanosecond, at which point every refill walks
  // hundreds of empty days.  The 3x factor targets a few events per day
  // (Brown, CACM 1988).
  if (all.size() > 1 && max_t > min_t) {
    std::vector<Time> times;
    times.reserve(all.size());
    for (const Entry& e : all) times.push_back(e.at);
    std::sort(times.begin(), times.end());
    std::vector<Time> gaps;
    gaps.reserve(times.size() - 1);
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] != times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
    }
    if (!gaps.empty()) {
      const std::size_t mid = gaps.size() / 2;
      std::nth_element(gaps.begin(), gaps.begin() + mid, gaps.end());
      set_width(3 * gaps[mid]);
    }
  }
  for (const Entry& e : all) {
    buckets_[bucket_of(e.at)].push_back(e);
  }
}

}  // namespace fastcc::sim
