#include "sim/timing_wheel.h"

#include <bit>
#include <utility>

namespace fastcc::sim {

TimerId TimingWheel::arm(Time deadline, Callback cb) {
  assert(deadline >= now_ && "timers cannot be armed in the past");
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    cbs_.emplace_back();
  }
  Node& n = nodes_[idx];
  n.deadline = deadline;
  n.seq = next_seq_++;
  cbs_[idx] = std::move(cb);
  place(idx);
  ++live_;
  return make_id(n.gen, idx);
}

bool TimingWheel::cancel(TimerId id) {
  const std::uint32_t idx = index_of(id);
  if (idx >= nodes_.size()) return false;
  Node& n = nodes_[idx];
  if (n.gen != gen_of(id) || n.level < 0) return false;
  unlink(idx);
  cbs_[idx] = Callback();
  ++n.gen;
  n.level = -1;
  free_.push_back(idx);
  --live_;
  return true;
}

void TimingWheel::place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  // Newer nodes carry larger seqs, so on a deadline tie the cached node
  // stays the minimum (FIFO order).
  if (live_ == 0) {
    cached_best_ = idx;
  } else if (cached_best_ != kNil &&
             n.deadline < nodes_[cached_best_].deadline) {
    cached_best_ = idx;
  }
  const auto delta = static_cast<std::uint64_t>(n.deadline - now_);
  int level = 0;
  while (level < kLevels &&
         delta >= (std::uint64_t{1} << (kSlotBits * (level + 1)))) {
    ++level;
  }
  n.next = kNil;
  if (level == kOverflowLevel) {
    ++overflow_live_;
    // Delay beyond the wheel horizon (~4.3 s): an unsorted side list.  Its
    // entries never relocate; scan_best folds the list in when it is
    // non-empty, which real workloads never trigger (RTOs are milliseconds).
    n.level = static_cast<std::int8_t>(kOverflowLevel);
    n.slot = 0;
    n.prev = overflow_tail_;
    if (overflow_tail_ == kNil) {
      overflow_head_ = idx;
    } else {
      nodes_[overflow_tail_].next = idx;
    }
    overflow_tail_ = idx;
    return;
  }
  ++level_live_[level];
  const auto slot = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(n.deadline) >> (kSlotBits * level)) &
      (kSlots - 1));
  n.level = static_cast<std::int8_t>(level);
  n.slot = static_cast<std::uint8_t>(slot);
  n.prev = tails_[level][slot];
  if (tails_[level][slot] == kNil) {
    heads_[level][slot] = idx;
    occupancy_[level][slot / 64] |= std::uint64_t{1} << (slot % 64);
  } else {
    nodes_[tails_[level][slot]].next = idx;
  }
  tails_[level][slot] = idx;
}

void TimingWheel::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  assert(n.level >= 0 && "unlinking a free node");
  if (idx == cached_best_) cached_best_ = kNil;
  std::uint32_t* head;
  std::uint32_t* tail;
  if (n.level == kOverflowLevel) {
    --overflow_live_;
    head = &overflow_head_;
    tail = &overflow_tail_;
  } else {
    --level_live_[n.level];
    head = &heads_[n.level][n.slot];
    tail = &tails_[n.level][n.slot];
  }
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    *head = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    *tail = n.prev;
  }
  if (*head == kNil && n.level != kOverflowLevel) {
    occupancy_[n.level][n.slot / 64] &=
        ~(std::uint64_t{1} << (n.slot % 64));
  }
  n.prev = kNil;
  n.next = kNil;
}

void TimingWheel::consider(std::uint32_t head, std::uint32_t& best_idx,
                           Time& best_at, std::uint64_t& best_seq) const {
  for (std::uint32_t i = head; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (best_idx == kNil || n.deadline < best_at ||
        (n.deadline == best_at && n.seq < best_seq)) {
      best_idx = i;
      best_at = n.deadline;
      best_seq = n.seq;
    }
  }
}

int TimingWheel::first_occupied_after(int level, std::size_t cursor) const {
  const auto& words = occupancy_[level];
  // Forward arc (cursor, kSlots): mask off bits at or below the cursor.
  std::size_t w = (cursor + 1) / 64;
  if (cursor + 1 < kSlots) {
    std::uint64_t word = words[w] & (~std::uint64_t{0} << ((cursor + 1) % 64));
    while (true) {
      if (word != 0) {
        return static_cast<int>(w * 64 +
                                static_cast<std::size_t>(
                                    std::countr_zero(word)));
      }
      if (++w >= words.size()) break;
      word = words[w];
    }
  }
  // Wrapped arc [0, cursor).
  for (w = 0; w <= cursor / 64; ++w) {
    std::uint64_t word = words[w];
    if (w == cursor / 64) word &= (std::uint64_t{1} << (cursor % 64)) - 1;
    if (word != 0) {
      return static_cast<int>(w * 64 +
                              static_cast<std::size_t>(std::countr_zero(word)));
    }
  }
  return -1;
}

std::uint32_t TimingWheel::scan_best() const {
  // Correctness of the two-list-per-level scan: every pending deadline D on
  // level k satisfied D - now <= 256^(k+1) when armed (placement rule), and
  // the clock only advances, so the level-k digit of D is at a cursor
  // distance equal to its block offset — except a full-cycle-ahead deadline
  // (offset exactly 256), which aliases onto the cursor slot itself.  Hence
  // non-cursor slots hold exactly one deadline block each and blocks grow
  // strictly with distance: the first occupied non-cursor slot bounds every
  // later one, and only the cursor slot can mix near and far entries (its
  // list is walked in full).
  if (cached_best_ != kNil) return cached_best_;
  std::uint32_t best_idx = kNil;
  Time best_at = 0;
  std::uint64_t best_seq = 0;
  for (int level = 0; level < kLevels; ++level) {
    if (level_live_[level] == 0) continue;
    const auto cursor = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) &
        (kSlots - 1));
    consider(heads_[level][cursor], best_idx, best_at, best_seq);
    const int s = first_occupied_after(level, cursor);
    if (s >= 0) {
      consider(heads_[level][static_cast<std::size_t>(s)], best_idx, best_at,
               best_seq);
    }
  }
  if (overflow_live_ > 0) {
    consider(overflow_head_, best_idx, best_at, best_seq);
  }
  cached_best_ = best_idx;
  return best_idx;
}

Time TimingWheel::next_deadline() const {
  if (live_ == 0) return kNoTimer;
  const std::uint32_t idx = scan_best();
  assert(idx != kNil);
  return nodes_[idx].deadline;
}

void TimingWheel::advance(Time to) {
  while (live_ > 0) {
    const std::uint32_t idx = scan_best();
    assert(idx != kNil);
    if (nodes_[idx].deadline > to) break;
    // Advance the clock to the expiry first: reentrant arms from the
    // callback measure their delay from the firing instant.
    now_ = nodes_[idx].deadline;
    unlink(idx);
    Callback cb = std::move(cbs_[idx]);
    Node& n = nodes_[idx];
    ++n.gen;  // invalidate the outstanding TimerId
    n.level = -1;
    free_.push_back(idx);
    --live_;
    cb();  // may arm() or cancel(); the node slot above is already reusable
  }
  if (now_ < to) now_ = to;
}

}  // namespace fastcc::sim
