// Deterministic randomness for simulations.
//
// All stochastic behaviour in fastcc (probabilistic feedback, Poisson flow
// arrivals, CDF sampling, ECMP tie-breaking) draws from Rng instances seeded
// from a single experiment seed, so every run is reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace fastcc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponential variate with the given mean (inter-arrival sampling).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream; used to give each flow / generator
  /// its own stream so adding one component never perturbs another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fastcc::sim
