// Space-parallel datacenter runs: one simulation, sharded by pod.
//
// run_datacenter_sharded() executes the same experiment as run_datacenter(),
// but partitions the fat-tree into one logical shard per pod (spines
// round-robin across shards), gives every shard a private Simulator,
// PacketPool, and Rng, and advances the shards in conservative barrier
// epochs (see sim/epoch.h) on `workers` OS threads.  Packets crossing a pod
// boundary are serialized out of the source shard's pool into per-shard-pair
// mailboxes at the epoch barrier and re-materialized by the destination
// shard (see net/shard.h).
//
// Determinism: the shard partition is a function of the topology alone, so
// the result is byte-identical for every worker count — 1, 2, and 8 workers
// produce the same flow records, drops, and event counts.  (It is *not*
// flow-for-flow identical to run_datacenter(): per-shard Rng streams replace
// the single network stream, so RED marking draws differ.  Each entry point
// is deterministic in its own right.)
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/datacenter.h"

namespace fastcc::exp {

/// Observability for sharded runs: epoch/transfer counts for sanity checks
/// and the per-shard pool figures the leak audit asserts on.
struct ShardedRunStats {
  int shards = 1;
  int workers = 1;              ///< After clamping to [1, shards].
  sim::Time lookahead = 0;      ///< Epoch length (min boundary-link delay).
  std::uint64_t epochs = 0;
  std::uint64_t cross_shard_transfers = 0;
  bool drained = false;  ///< All queues and mailboxes empty at the end.
  std::vector<std::uint32_t> pool_peak;         ///< Per-shard high-water mark.
  std::vector<std::uint32_t> pool_live_at_end;  ///< 0 for every drained shard.
};

/// Runs `config` sharded by pod on `workers` threads (0 = one per shard;
/// values above the shard count are clamped).  The calling thread
/// participates as a worker.  Termination: runs until every shard's event
/// queue and every mailbox is empty (full drain — this is what makes the
/// pool leak audit meaningful), or until the epoch horizon reaches
/// config.max_sim_time, whichever comes first.  Flow records are returned
/// sorted by flow id, a canonical order independent of completion order.
DatacenterResult run_datacenter_sharded(const DatacenterConfig& config,
                                        int workers,
                                        ShardedRunStats* stats = nullptr);

}  // namespace fastcc::exp
