// Space-parallel datacenter runs: one simulation, sharded by pod or by ToR.
//
// run_datacenter_sharded() executes the same experiment as run_datacenter(),
// but partitions the fat-tree into logical shards — one per pod, or one per
// ToR+its hosts when DatacenterConfig::shard_granularity is kTor (spines and
// pod-internal aggs dealt round-robin either way) — gives every shard a
// private Simulator, PacketPool, and Rng, and advances the shards in
// conservative barrier epochs (see sim/epoch.h) on `workers` OS threads.
// Packets crossing a shard boundary are serialized out of the source shard's
// pool into per-shard-pair mailboxes at the epoch barrier and
// re-materialized by the destination shard (see net/shard.h).
//
// Epochs are adaptive, not fixed-length: a path-closed per-ordered-pair
// lookahead matrix (net::ShardLookahead) plus each shard's earliest pending
// work sizes a per-shard horizon every barrier, shards with nothing inside
// their horizon are skipped without touching their simulator, and idle
// stretches are crossed in one horizon jump (DESIGN.md §9.5).
//
// Determinism: the shard partition and every horizon/active-set decision are
// functions of the topology and simulation state alone, so the result is
// byte-identical for every worker count — 1, 2, 8, and 16 workers produce
// the same flow records, drops, and event counts.  (It is *not*
// flow-for-flow identical to run_datacenter(), and the two granularities
// are not flow-for-flow identical to each other: per-shard Rng streams
// replace the single network stream, so RED marking draws differ.  Each
// configuration is deterministic in its own right.)
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/datacenter.h"

namespace fastcc::exp {

/// Observability for sharded runs: epoch/transfer counts for sanity checks
/// and the per-shard pool figures the leak audit asserts on.
struct ShardedRunStats {
  int shards = 1;
  int workers = 1;              ///< After clamping to [1, shards].
  sim::Time lookahead = 0;      ///< Min boundary-link delay (legacy quantum).
  /// Smallest / largest finite entry of the per-pair lookahead matrix
  /// (path-closed, off-diagonal).  Equal on homogeneous-latency
  /// topologies; a spread is the slack the adaptive horizons exploit.
  sim::Time lookahead_min = 0;
  sim::Time lookahead_max = 0;
  std::uint64_t epochs = 0;
  /// Shard-epochs skipped by the active-set protocol: the shard's next
  /// local event and inbound release horizons both sat beyond its epoch
  /// horizon, so it was never claimed (its simulator was not touched).
  std::uint64_t epochs_skipped = 0;
  /// Barrier steps whose horizon front advanced by more than the legacy
  /// quantum (`lookahead`) in one jump — idle stretches fast-forwarded
  /// instead of being walked one lookahead at a time.
  std::uint64_t horizon_jumps = 0;
  std::uint64_t cross_shard_transfers = 0;
  bool drained = false;  ///< All queues and mailboxes empty at the end.
  std::vector<std::uint32_t> pool_peak;         ///< Per-shard high-water mark.
  std::vector<std::uint32_t> pool_live_at_end;  ///< 0 for every drained shard.
};

/// Runs `config` sharded by pod on `workers` threads (0 = one per shard;
/// values above the shard count are clamped).  The calling thread
/// participates as a worker.  Termination: runs until every shard's event
/// queue and every mailbox is empty (full drain — this is what makes the
/// pool leak audit meaningful), or until the epoch horizon reaches
/// config.max_sim_time, whichever comes first.  Flow records are returned
/// sorted by flow id, a canonical order independent of completion order.
DatacenterResult run_datacenter_sharded(const DatacenterConfig& config,
                                        int workers,
                                        ShardedRunStats* stats = nullptr);

}  // namespace fastcc::exp
