#include "experiments/protocols.h"

#include <cassert>

namespace fastcc::exp {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kHpcc: return "HPCC";
    case Variant::kHpcc1G: return "HPCC 1Gbps";
    case Variant::kHpccProb: return "HPCC Probabilistic";
    case Variant::kHpccVai: return "HPCC VAI";
    case Variant::kHpccSf: return "HPCC SF";
    case Variant::kHpccVaiSf: return "HPCC VAI SF";
    case Variant::kSwift: return "Swift";
    case Variant::kSwift1G: return "Swift 1Gbps";
    case Variant::kSwiftProb: return "Swift Probabilistic";
    case Variant::kSwiftVai: return "Swift VAI";
    case Variant::kSwiftSf: return "Swift SF";
    case Variant::kSwiftVaiSf: return "Swift VAI SF";
    case Variant::kSwiftHai: return "Swift HyperAI";
    case Variant::kDcqcn: return "DCQCN";
    case Variant::kTimely: return "TIMELY";
    case Variant::kDctcp: return "DCTCP";
  }
  return "unknown";
}

bool variant_is_hpcc(Variant v) {
  switch (v) {
    case Variant::kHpcc:
    case Variant::kHpcc1G:
    case Variant::kHpccProb:
    case Variant::kHpccVai:
    case Variant::kHpccSf:
    case Variant::kHpccVaiSf:
      return true;
    default:
      return false;
  }
}

bool variant_is_swift(Variant v) {
  switch (v) {
    case Variant::kSwift:
    case Variant::kSwift1G:
    case Variant::kSwiftProb:
    case Variant::kSwiftVai:
    case Variant::kSwiftSf:
    case Variant::kSwiftVaiSf:
    case Variant::kSwiftHai:
      return true;
    default:
      return false;
  }
}

bool variant_needs_red(Variant v) {
  return v == Variant::kDcqcn || v == Variant::kDctcp;
}

net::RedParams red_params_for(Variant v) {
  net::RedParams red;
  if (v == Variant::kDcqcn) {
    red.enabled = true;
    red.kmin_bytes = 5'000;
    red.kmax_bytes = 200'000;
    red.pmax = 0.01;
  } else if (v == Variant::kDctcp) {
    // DCTCP marks deterministically past threshold K (step function).
    const cc::DctcpParams defaults;
    red.enabled = true;
    red.kmin_bytes = defaults.mark_threshold_bytes;
    red.kmax_bytes = defaults.mark_threshold_bytes;
    red.pmax = 1.0;
  }
  return red;
}

CcFactory::CcFactory(net::Network& network, Variant variant,
                     bool small_topology, std::uint32_t mtu)
    : network_(network),
      variant_(variant),
      small_topology_(small_topology),
      mtu_(mtu) {
  assert(network_.hosts().size() >= 2);
  // Minimum BDP of the network: the closest host pair bounds it from below.
  // In both paper topologies host 0 and host 1 share the first switch, which
  // realizes the minimum (~50 KB at 100 Gbps with 1 us links).
  const net::PathInfo p = network_.path(network_.hosts()[0]->id(),
                                        network_.hosts()[1]->id(), mtu_);
  min_bdp_bytes_ = p.bottleneck * static_cast<double>(p.base_rtt);
  min_bdp_delay_ = static_cast<sim::Time>(min_bdp_bytes_ / p.bottleneck);
}

int CcFactory::sampling_freq() const {
  switch (variant_) {
    case Variant::kHpccSf:
    case Variant::kHpccVaiSf:
    case Variant::kSwiftSf:
    case Variant::kSwiftVaiSf:
      return kPaperSamplingFreq;
    default:
      return 0;
  }
}

cc::HpccParams CcFactory::hpcc_params(const net::PathInfo& /*path*/) const {
  cc::HpccParams p;
  p.ai_rate = sim::gbps(0.05);  // 50 Mbps (Section III-D)
  p.eta = 0.95;
  p.max_stage = 5;
  switch (variant_) {
    case Variant::kHpcc1G:
      p.ai_rate = sim::gbps(1.0);
      break;
    case Variant::kHpccProb:
      p.probabilistic_feedback = true;
      break;
    case Variant::kHpccVai:
      p.vai = cc::hpcc_paper_vai(min_bdp_bytes_);
      break;
    case Variant::kHpccSf:
      p.sampling_freq = kPaperSamplingFreq;
      break;
    case Variant::kHpccVaiSf:
      p.vai = cc::hpcc_paper_vai(min_bdp_bytes_);
      p.sampling_freq = kPaperSamplingFreq;
      break;
    default:
      break;
  }
  return p;
}

cc::SwiftParams CcFactory::swift_params(const net::PathInfo& path) const {
  cc::SwiftParams p;
  p.ai_rate = sim::gbps(0.05);
  p.beta = 0.8;
  p.max_mdf = 0.5;
  p.base_target = 5 * sim::kMicrosecond;
  p.per_hop_scaling = 2 * sim::kMicrosecond;
  p.fs_max_cwnd = small_topology_ ? 50.0 : 100.0;
  const sim::Time target =
      p.base_target + cc::Swift::scaling_hops(path.hops) * p.per_hop_scaling;
  switch (variant_) {
    case Variant::kSwift1G:
      p.ai_rate = sim::gbps(1.0);
      break;
    case Variant::kSwiftProb:
      p.probabilistic_feedback = true;
      break;
    case Variant::kSwiftVai:
      p.vai = cc::swift_paper_vai(target, path.base_rtt, min_bdp_delay_);
      p.always_ai = true;  // tokens must always be spendable (Section V-B)
      break;
    case Variant::kSwiftSf:
      p.sampling_freq = kPaperSamplingFreq;
      p.always_ai = true;
      p.use_fbs = false;
      break;
    case Variant::kSwiftVaiSf:
      p.vai = cc::swift_paper_vai(target, path.base_rtt, min_bdp_delay_);
      p.sampling_freq = kPaperSamplingFreq;
      p.always_ai = true;
      p.use_fbs = false;  // the paper's VAI SF Swift does not use FBS
      break;
    case Variant::kSwiftHai:
      p.use_hyper_ai = true;
      break;
    default:
      break;
  }
  return p;
}

cc::CcEngine CcFactory::make(const net::PathInfo& path) const {
  return make(path, &network_.rng());
}

cc::CcEngine CcFactory::make(const net::PathInfo& path, sim::Rng* rng) const {
  if (variant_is_hpcc(variant_)) {
    return cc::Hpcc(hpcc_params(path), rng);
  }
  if (variant_is_swift(variant_)) {
    return cc::Swift(swift_params(path), rng);
  }
  if (variant_ == Variant::kDctcp) {
    return cc::Dctcp(cc::DctcpParams{});
  }
  if (variant_ == Variant::kTimely) {
    cc::TimelyParams p;
    p.t_low = path.base_rtt + 2 * sim::kMicrosecond;
    p.t_high = path.base_rtt + 20 * sim::kMicrosecond;
    return cc::Timely(p);
  }
  assert(variant_ == Variant::kDcqcn);
  return cc::Dcqcn(cc::DcqcnParams{});
}

}  // namespace fastcc::exp
