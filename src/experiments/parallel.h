// Parallel experiment sweeps.
//
// Every fastcc simulation is self-contained (its own Simulator, Network and
// RNG; no mutable globals), so independent configurations can run on
// separate threads with zero coordination.  These helpers fan a sweep out
// over a bounded thread pool — on a many-core machine a full variant grid
// costs one simulation's wall-clock.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "util/contracts.h"

#include "experiments/datacenter.h"
#include "experiments/incast.h"

namespace fastcc::exp {

/// Runs `configs[i]` -> `results[i]` using at most `max_threads` concurrent
/// workers (0 = hardware concurrency).  Results are ordered like the inputs
/// regardless of completion order.
std::vector<IncastResult> run_incast_parallel(
    const std::vector<IncastConfig>& configs, unsigned max_threads = 0);

std::vector<DatacenterResult> run_datacenter_parallel(
    const std::vector<DatacenterConfig>& configs, unsigned max_threads = 0);

/// Generic fan-out used by the two wrappers: applies `fn` to indices
/// [0, count) on the pool.  `fn` runs on worker threads: like a shard
/// function it may touch only state owned by its index (FASTCC_SHARD_LOCAL
/// discipline), never shared mutable state.
void parallel_for_index(
    std::size_t count, unsigned max_threads,
    FASTCC_SHARD_LOCAL const std::function<void(std::size_t)>& fn);

}  // namespace fastcc::exp
