// Datacenter simulation driver (Figures 10-13).
//
// Runs Poisson CDF-driven traffic over the fat-tree and records a FlowRecord
// per completed flow; the slowdown tables in stats/fct.h turn those into the
// paper's FCT-slowdown-vs-size figures.
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/protocols.h"
#include "stats/fct.h"
#include "topo/fat_tree.h"
#include "workload/poisson.h"

namespace fastcc::exp {

struct DatacenterConfig {
  Variant variant = Variant::kHpcc;
  topo::FatTreeParams topo = topo::scaled_fat_tree();
  std::vector<workload::TrafficComponent> components;  ///< Workload mix.
  double load = 0.5;
  sim::Time generate_duration = 2 * sim::kMillisecond;  ///< Arrival window.
  sim::Time max_sim_time = 400 * sim::kMillisecond;     ///< Drain cap.
  std::uint64_t seed = 1;

  /// Partition grain for run_datacenter_sharded (ignored by the serial
  /// entry point): kPod gives one shard per pod, kTor one per rack, so the
  /// parallel width scales with rack count.  Like the worker count, this is
  /// a wall-clock knob with a determinism contract per grain — but
  /// *changing* the grain changes shard Rng stream assignment, so results
  /// are comparable across grains only statistically (same flow
  /// population, equivalent aggregate FCTs), exactly like sharded vs
  /// serial.
  topo::ShardGranularity shard_granularity = topo::ShardGranularity::kPod;

  /// When non-empty, replay these flows (src/dst as host indices — e.g.
  /// loaded via workload::load_flow_trace) instead of generating traffic;
  /// `components`/`load`/`generate_duration` are then ignored.
  std::vector<net::FlowSpec> preset_flows;
};

struct DatacenterResult {
  std::vector<stats::FlowRecord> flows;
  std::uint64_t drops = 0;
  std::uint64_t events_executed = 0;
  sim::Time end_time = 0;
  std::size_t unfinished = 0;  ///< Flows still running at max_sim_time.
};

DatacenterResult run_datacenter(const DatacenterConfig& config);

}  // namespace fastcc::exp
