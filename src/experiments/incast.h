// Incast experiment driver (Figures 1-3, 5, 6, 8, 9).
//
// Runs a staggered N-to-1 incast on the single-switch star and records the
// three quantities the paper plots: the Jain fairness index over time, the
// bottleneck egress queue depth over time, and each flow's start/finish
// times.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/convergence.h"
#include "experiments/protocols.h"
#include "stats/timeseries.h"
#include "topo/star.h"
#include "workload/incast.h"

namespace fastcc::exp {

struct IncastConfig {
  Variant variant = Variant::kHpcc;
  workload::IncastPattern pattern;        ///< Defaults: 16-1, 1 MB, 2/20 us.
  topo::StarParams star;                  ///< Defaults: 17 hosts @ 100 Gbps.
  /// Delivered-throughput window for the Jain index.  Ack-clocked protocols
  /// (Swift) emit at RTT-scale bursts, so windows must cover several RTTs or
  /// quantization noise swamps the signal.
  sim::Time jain_sample_interval = 20 * sim::kMicrosecond;
  sim::Time queue_sample_interval = 1 * sim::kMicrosecond;
  sim::Time max_sim_time = 100 * sim::kMillisecond;  ///< Safety cap.
  std::uint64_t seed = 1;

  /// Small-flow probes (the abstract's "without compromising small flow
  /// performance" check): an extra host sends `probe_count` short flows of
  /// `probe_bytes` to the incast receiver, one every `probe_interval`,
  /// while the long flows contend.  0 disables probing.
  int probe_count = 0;
  std::uint64_t probe_bytes = 2'000;
  sim::Time probe_interval = 50 * sim::kMicrosecond;

  /// Failure injection: cap every switch egress buffer (0 = unlimited, the
  /// paper's lossless setting).  With a cap and no PFC, bursts drop and the
  /// hosts' go-back-N recovery is exercised.
  std::uint64_t buffer_limit_bytes = 0;
  /// Optional PFC on the switch (pause/resume thresholds); enabling it with
  /// a buffer cap keeps the run lossless despite tiny buffers.
  net::PfcParams pfc;

  /// Optional override: build controllers directly instead of via the
  /// variant catalogue (parameter-sweep ablations).  `variant` is still used
  /// for labelling and RED/PFC setup.  Return a value engine
  /// (`cc::Hpcc(...)`) or, for out-of-tree controllers, wrap a
  /// `std::unique_ptr<cc::CongestionControl>` in the engine.
  std::function<cc::CcEngine(const net::PathInfo&)> custom_cc;
};

struct FlowTiming {
  net::FlowId id = 0;
  sim::Time start = 0;
  sim::Time finish = 0;
  sim::Time fct() const { return finish - start; }
};

struct IncastResult {
  std::vector<FlowTiming> flows;     ///< In start order.
  std::vector<FlowTiming> probes;    ///< Small-flow probes (if configured).
  stats::TimeSeries jain;            ///< Jain index, one point per interval.
  stats::TimeSeries queue_bytes;     ///< Bottleneck egress queue depth.
  stats::TimeSeries utilization;     ///< Bottleneck link utilization [0,1].
  std::uint64_t drops = 0;
  sim::Time completion_time = 0;     ///< Last flow finish.
  std::uint64_t events_executed = 0;

  /// Mean bottleneck utilization while any flow was active — the paper's
  /// "maintain high throughput" check.
  double mean_utilization() const;

  /// Condensed convergence metrics for the Jain series.
  core::ConvergenceSummary convergence(double threshold = 0.9) const {
    return core::summarize_convergence(jain, threshold);
  }

  /// Median probe FCT in ns (-1 when no probes ran).
  sim::Time median_probe_fct() const;

  /// Spread between first and last finisher — the paper's Figures 2/3/8/9
  /// takeaway metric (small spread = flows finish together).
  sim::Time finish_spread() const;
  /// First time the Jain index reaches `threshold` for good.
  sim::Time jain_settle_time(double threshold = 0.95) const {
    return jain.settle_time(threshold);
  }
};

IncastResult run_incast(const IncastConfig& config);

}  // namespace fastcc::exp
