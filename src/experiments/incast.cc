#include "experiments/incast.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "stats/percentile.h"

#include "core/fairness.h"
#include "net/monitor.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace fastcc::exp {

sim::Time IncastResult::median_probe_fct() const {
  if (probes.empty()) return -1;
  stats::PercentileEstimator est;
  for (const FlowTiming& p : probes) {
    est.add(static_cast<double>(p.fct()));
  }
  return static_cast<sim::Time>(est.median());
}

double IncastResult::mean_utilization() const {
  if (utilization.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : utilization.points()) sum += p.value;
  return sum / static_cast<double>(utilization.size());
}

sim::Time IncastResult::finish_spread() const {
  assert(!flows.empty());
  auto [min_it, max_it] = std::minmax_element(
      flows.begin(), flows.end(),
      [](const FlowTiming& a, const FlowTiming& b) { return a.finish < b.finish; });
  return max_it->finish - min_it->finish;
}

IncastResult run_incast(const IncastConfig& config) {
  sim::Simulator simulator;
  net::Network network(simulator, config.seed);
  topo::StarParams star_params = config.star;
  if (config.probe_count > 0) ++star_params.host_count;  // the prober
  topo::Star star = build_star(network, star_params);
  assert(static_cast<int>(star.hosts.size()) >= config.pattern.senders + 1);

  if (variant_needs_red(config.variant)) {
    network.set_red_all(red_params_for(config.variant));
    // ECN-driven deployments rely on PFC for losslessness while the
    // protocol converges (RDMA practice for DCQCN; harmless for DCTCP).
    net::PfcParams pfc;
    pfc.pause_bytes = 200'000;
    pfc.resume_bytes = 100'000;
    network.set_pfc_all(pfc);
  }

  if (config.buffer_limit_bytes > 0) {
    network.set_buffer_limit_all(config.buffer_limit_bytes);
  }
  if (config.pfc.enabled()) network.set_pfc_all(config.pfc);

  CcFactory factory(network, config.variant, /*small_topology=*/true);

  // With probing enabled the extra (last) host probes; the receiver is the
  // host the incast pattern expects at index senders.
  net::Host* receiver = star.hosts[config.pattern.senders];
  net::Host* prober =
      config.probe_count > 0 ? star.hosts.back() : nullptr;
  std::vector<net::NodeId> sender_ids;
  for (int i = 0; i < config.pattern.senders; ++i) {
    sender_ids.push_back(star.hosts[i]->id());
  }
  const std::vector<net::FlowSpec> specs =
      workload::make_incast(config.pattern, sender_ids, receiver->id());

  IncastResult result;
  int completed = 0;
  const int total = static_cast<int>(specs.size());
  const net::FlowId first_probe_id = 1'000'000;

  // Completion: record timings; all senders share the callback.  Probe
  // flows are kept separate and do not gate the run's samplers.
  for (net::Host* h : star.hosts) {
    h->set_completion_callback([&](const net::FlowTx& f) {
      FlowTiming t;
      t.id = f.spec.id;
      t.start = f.spec.start_time;
      t.finish = f.finish_time;
      if (f.spec.id >= first_probe_id) {
        result.probes.push_back(t);
        return;
      }
      result.flows.push_back(t);
      ++completed;
    });
  }

  // Paths are stored in a node-stable ordered map that outlives the
  // schedule, so flow-start closures can capture `const PathInfo&` (8 bytes)
  // instead of a by-value PathInfo and stay within the scheduler's inline
  // buffer.
  std::map<std::pair<net::NodeId, net::NodeId>, net::PathInfo> path_cache;
  auto path_of = [&](net::NodeId src, net::NodeId dst) -> const net::PathInfo& {
    auto key = std::make_pair(src, dst);
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      it = path_cache.emplace(key, network.path(src, dst)).first;
    }
    return it->second;
  };

  // Schedule probe flows from the dedicated prober host.
  if (prober != nullptr) {
    const net::PathInfo& probe_path = path_of(prober->id(), receiver->id());
    for (int i = 0; i < config.probe_count; ++i) {
      net::FlowSpec spec;
      spec.id = first_probe_id + static_cast<net::FlowId>(i);
      spec.src = prober->id();
      spec.dst = receiver->id();
      spec.size_bytes = config.probe_bytes;
      spec.start_time = (i + 1) * config.probe_interval;
      // config/factory/probe_path outlive the schedule: simulator.run()
      // below drains every probe-start event before this scope exits.  The
      // path is captured by reference so the closure stays within the
      // scheduler's 64-byte inline buffer.
      simulator.at(spec.start_time,
                   // lint:allow(ref-capture-callback -- run() drains first)
                   [&config, &factory, prober, spec, &probe_path] {
                     net::FlowTx flow;
                     flow.spec = spec;
                     flow.line_rate = prober->port(0).bandwidth();
                     flow.base_rtt = probe_path.base_rtt;
                     flow.path_hops = probe_path.hops;
                     if (config.custom_cc) {
                       flow.cc = config.custom_cc(probe_path);
                     } else {
                       flow.cc = factory.make(probe_path);
                     }
                     prober->start_flow(std::move(flow));
                   });
    }
  }

  // Schedule flow starts.
  for (const net::FlowSpec& spec : specs) {
    net::Host* src = star.hosts[spec.src - star.hosts.front()->id()];
    assert(src->id() == spec.src);
    const net::PathInfo& path = path_of(spec.src, spec.dst);
    // lint:allow(ref-capture-callback -- run() drains before scope exit)
    simulator.at(spec.start_time, [&config, &factory, src, spec, &path] {
      net::FlowTx flow;
      flow.spec = spec;
      flow.line_rate = src->port(0).bandwidth();
      flow.base_rtt = path.base_rtt;
      flow.path_hops = path.hops;
      if (config.custom_cc) {
        flow.cc = config.custom_cc(path);
      } else {
        flow.cc = factory.make(path);
      }
      src->start_flow(std::move(flow));
    });
  }

  // Bottleneck queue: the hub's egress port toward the receiver.
  net::Port* bottleneck = nullptr;
  for (int i = 0; i < star.hub->port_count(); ++i) {
    if (star.hub->port(i).peer() == receiver) {
      bottleneck = &star.hub->port(i);
      break;
    }
  }
  assert(bottleneck != nullptr);

  // Periodic samplers; they re-arm until every flow completes.
  result.jain = stats::TimeSeries(std::string(variant_name(config.variant)));
  result.queue_bytes =
      stats::TimeSeries(std::string(variant_name(config.variant)));

  std::vector<std::uint64_t> last_acked(specs.size(), 0);
  std::function<void()> sample_jain = [&] {
    const sim::Time now = simulator.now();
    const sim::Time window_start = now - config.jain_sample_interval;
    std::vector<double> throughput;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const net::Host* src =
          star.hosts[specs[i].src - star.hosts.front()->id()];
      const net::FlowTx* f = src->flow(specs[i].id);
      if (f == nullptr) continue;  // not started yet
      const std::uint64_t delta = f->cum_acked - last_acked[i];
      last_acked[i] = f->cum_acked;
      // Only flows active for the whole window participate; flows that start
      // or finish mid-window would otherwise be misread as slow.
      const bool full_window = f->spec.start_time <= window_start &&
                               (!f->finished() || f->finish_time >= now);
      if (!full_window) continue;
      throughput.push_back(static_cast<double>(delta));
    }
    if (!throughput.empty()) {
      result.jain.add(now, core::jain_index(throughput));
    }
    if (completed < total) {
      simulator.after(config.jain_sample_interval, sample_jain);
    }
  };
  simulator.after(config.jain_sample_interval, sample_jain);

  std::function<void()> sample_queue = [&] {
    result.queue_bytes.add(simulator.now(),
                           static_cast<double>(bottleneck->data_queue_bytes()));
    if (completed < total) {
      simulator.after(config.queue_sample_interval, sample_queue);
    }
  };
  simulator.after(config.queue_sample_interval, sample_queue);

  net::UtilizationMonitor util(simulator, *bottleneck,
                               config.jain_sample_interval,
                               variant_name(config.variant),
                               [&] { return completed < total; });
  // Sampling rides the hub's timing wheel: one global event per expiry
  // instead of a standing entry in the calendar queue.
  util.ride_wheel(&star.hub->wheel());
  util.start();

  simulator.run(config.max_sim_time);
  result.utilization = util.series();
  assert(completed == total && "incast did not complete within the time cap");

  std::sort(result.flows.begin(), result.flows.end(),
            [](const FlowTiming& a, const FlowTiming& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  result.drops = network.total_drops();
  result.completion_time =
      std::max_element(result.flows.begin(), result.flows.end(),
                       [](const FlowTiming& a, const FlowTiming& b) {
                         return a.finish < b.finish;
                       })
          ->finish;
  result.events_executed = simulator.events_executed();
  return result;
}

}  // namespace fastcc::exp
