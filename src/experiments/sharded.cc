#include "experiments/sharded.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "net/network.h"
#include "net/shard.h"
#include "sim/epoch.h"
#include "util/contracts.h"
#include "sim/simulator.h"

namespace fastcc::exp {

namespace {

/// Everything one shard accumulates during the run.  Written only by the
/// worker currently running the shard; read by the main thread after the
/// epoch loop finishes.
struct ShardState {
  stats::FctRecorder recorder;
  std::size_t completed = 0;
  std::vector<net::CrossShardPacket> inbox;  ///< Reused drain scratch.
};

/// Epoch-start injection for one shard: re-materializes every packet
/// published for it at the last barrier and schedules the delivery at the
/// recorded arrival instant.  take_ready returns (src, seq)-ordered
/// records; re-sorting by (arrival, src, seq) makes the injection order —
/// and therefore any same-timestamp tie-break in the event queue —
/// canonical.
FASTCC_SHARD_LOCAL void inject_inbox(sim::Simulator& sim, net::PacketPool& pool,
                  net::Network& network, net::ShardMailboxes& mailboxes,
                  int s, std::vector<net::CrossShardPacket>& inbox) {
  inbox.clear();
  mailboxes.take_ready(s, inbox);
  std::sort(inbox.begin(), inbox.end(),
            [](const net::CrossShardPacket& a, const net::CrossShardPacket& b) {
              return std::make_tuple(a.arrival, a.src_shard, a.seq) <
                     std::make_tuple(b.arrival, b.src_shard, b.seq);
            });
  for (net::CrossShardPacket& rec : inbox) {
    net::Node* node = network.node(rec.dst_node);
    const net::PacketRef ref = pool.import_packet(rec.pkt);
    const int in_port = rec.dst_port;
    assert(rec.arrival >= sim.now() &&
           "cross-shard packet arrived inside a past epoch: lookahead does "
           "not bound this boundary link");
    auto arrive = [node, ref, in_port] { node->deliver(ref, in_port); };
    static_assert(
        sizeof(arrive) <= 24 && sim::UniqueFunction::fits_inline<decltype(arrive)>,
        "re-materialized delivery must stay a handle-sized inline closure");
    sim.at(rec.arrival, std::move(arrive));
  }
  inbox.clear();
}

/// Mutable state the epoch loop threads across the barrier.  Every field is
/// written only inside the completion step (plan_epoch below) and read by
/// workers at the next epoch's start; the barrier's release ordering makes
/// each update visible.
struct EpochLoopState {
  explicit EpochLoopState(int shards)
      : horizon(static_cast<std::size_t>(shards), 0),
        work(static_cast<std::size_t>(shards), 0),
        earliest(static_cast<std::size_t>(shards), 0) {
    active.reserve(static_cast<std::size_t>(shards));
  }

  FASTCC_EPOCH_PUBLISH std::vector<sim::Time> horizon;  ///< Per shard.
  FASTCC_EPOCH_PUBLISH std::vector<int> active;  ///< Shards run this epoch.
  FASTCC_EPOCH_PUBLISH std::vector<sim::Time> work;      ///< Scratch: t[s].
  FASTCC_EPOCH_PUBLISH std::vector<sim::Time> earliest;  ///< Scratch: e[s].
  FASTCC_EPOCH_PUBLISH sim::Time front = 0;  ///< Min active horizon so far.
  FASTCC_EPOCH_PUBLISH std::uint64_t epochs = 0;
  FASTCC_EPOCH_PUBLISH std::uint64_t epochs_skipped = 0;
  FASTCC_EPOCH_PUBLISH std::uint64_t horizon_jumps = 0;
  FASTCC_EPOCH_PUBLISH bool drained = false;
};

/// Worker phase: advances shard `s` through the current epoch — inject the
/// transfers published for it since it last ran, then run its private
/// simulator to its horizon.  Touches only shard s's state plus the
/// mailboxes' reader-owned column.  Skipped shards never reach here: their
/// clock lags until their next active epoch, which is harmless because a
/// skipped shard by definition had nothing to execute in between.
FASTCC_SHARD_LOCAL void advance_shard(
    std::vector<std::unique_ptr<sim::Simulator>>& sims,
    std::vector<std::unique_ptr<net::PacketPool>>& pools, net::Network& network,
    net::ShardMailboxes& mailboxes, std::vector<ShardState>& shard_state,
    const EpochLoopState& loop, int s) {
  const auto si = static_cast<std::size_t>(s);
  inject_inbox(*sims[si], *pools[si], network, mailboxes, s,
               shard_state[si].inbox);
  sims[si]->run(loop.horizon[si] - 1);
}

/// Barrier completion step: runs single-threaded while every worker is
/// parked.  Publishes the mailboxes, decides termination (full drain or the
/// simulated-time cap), and plans the next epoch — per-shard horizons from
/// the path-closed lookahead matrix plus the active set.  The only place
/// EpochLoopState is written.
///
/// The plan (DESIGN.md §9.5):
///   t[s]  earliest instant shard s could execute anything it already
///         knows about: its own queue front or a published inbound
///         transfer's arrival (the mailbox release horizon).
///   e[s]  earliest conceivable execution instant at s, folding in chains
///         started elsewhere: min over all x of t[x] + L(x, s).  Because L
///         is path-closed (triangle inequality), this single relaxation
///         pass is the fixpoint.
///   H[d]  the epoch horizon for d: min over s != d of e[s] + L(s, d) —
///         no influence the planner cannot already see can reach d before
///         H[d], so d may run to H[d] - 1 without synchronizing.
/// A shard with t[d] >= H[d] has nothing to do this epoch and is skipped
/// outright (active-set protocol); when every horizon clears an idle
/// stretch the front advances by many legacy quanta in one barrier step
/// (horizon jump) — the fixed-increment loop this replaces walked such
/// stretches one minimum-lookahead step at a time.
FASTCC_EPOCH_PUBLISH bool plan_epoch(
    std::vector<std::unique_ptr<sim::Simulator>>& sims,
    net::ShardMailboxes& mailboxes, const net::ShardLookahead& la,
    sim::Time max_sim_time, EpochLoopState& loop) {
  const int shards = la.shards();
  mailboxes.publish();

  sim::Time min_work = sim::kMaxTime;
  for (int s = 0; s < shards; ++s) {
    const auto si = static_cast<std::size_t>(s);
    auto& queue = sims[si]->queue();
    sim::Time t = queue.empty() ? sim::kMaxTime : queue.next_time();
    t = std::min(t, mailboxes.earliest_ready(s));
    loop.work[si] = t;
    min_work = std::min(min_work, t);
  }
  if (min_work == sim::kMaxTime) {
    // Nothing pending anywhere — queues and mailboxes (pending side was
    // just published) are all empty, so no future epoch can create work.
    loop.drained = true;
    return false;
  }
  if (min_work >= max_sim_time) return false;  // Drain cap.

  for (int d = 0; d < shards; ++d) {
    sim::Time e = loop.work[static_cast<std::size_t>(d)];
    for (int s = 0; s < shards; ++s) {
      const sim::Time t = loop.work[static_cast<std::size_t>(s)];
      const sim::Time hop = la.between(s, d);
      if (t == sim::kMaxTime || hop == net::ShardLookahead::kUnreachable) {
        continue;
      }
      e = std::min(e, t + hop);
    }
    loop.earliest[static_cast<std::size_t>(d)] = e;
  }

  loop.active.clear();
  sim::Time front = sim::kMaxTime;
  for (int d = 0; d < shards; ++d) {
    sim::Time h = sim::kMaxTime;
    for (int s = 0; s < shards; ++s) {
      if (s == d) continue;
      const sim::Time e = loop.earliest[static_cast<std::size_t>(s)];
      const sim::Time hop = la.between(s, d);
      if (e == sim::kMaxTime || hop == net::ShardLookahead::kUnreachable) {
        continue;
      }
      h = std::min(h, e + hop);
    }
    if (h == sim::kMaxTime) {
      // No chain of links can ever deliver anything to d (single-shard
      // runs, or a region the remaining traffic cannot reach), so only the
      // simulated-time cap bounds it.
      h = max_sim_time;
    }
    loop.horizon[static_cast<std::size_t>(d)] = h;
    if (loop.work[static_cast<std::size_t>(d)] < h) {
      loop.active.push_back(d);
      front = std::min(front, h);
    } else {
      ++loop.epochs_skipped;
    }
  }
  assert(!loop.active.empty() &&
         "a shard owning min_work is always inside its own horizon");

  // A barrier step that moved the front further than the legacy fixed
  // quantum covered an idle stretch in one jump.
  if (loop.epochs > 0 && front > loop.front &&
      front - loop.front > la.min_window()) {
    ++loop.horizon_jumps;
  }
  loop.front = front;
  ++loop.epochs;
  return true;
}

}  // namespace

DatacenterResult run_datacenter_sharded(const DatacenterConfig& config,
                                        int workers,
                                        ShardedRunStats* stats_out) {
  assert(!config.components.empty() || !config.preset_flows.empty());
  const int shards =
      config.shard_granularity == topo::ShardGranularity::kTor
          ? config.topo.pods * config.topo.tors_per_pod
          : config.topo.pods;
  if (workers <= 0) workers = shards;

  // Private event queue and packet arena per shard.  unique_ptr because
  // neither type is movable; addresses must also stay stable — ports and
  // nodes hold raw pointers into these after rebinding.
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<net::PacketPool>> pools;
  sims.reserve(static_cast<std::size_t>(shards));
  pools.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    sims.push_back(std::make_unique<sim::Simulator>());
    pools.push_back(std::make_unique<net::PacketPool>());
  }

  // Build the whole topology against shard 0's simulator, then re-home each
  // node onto its owning shard below.  Building is serial either way; only
  // the run is parallel.
  net::Network network(*sims[0], config.seed);
  topo::FatTree tree = build_fat_tree(network, config.topo);
  const net::ShardMap smap = topo::shard_map_for(
      tree, config.topo, network.node_count(), config.shard_granularity);
  assert(smap.count == shards);

  if (variant_needs_red(config.variant)) {
    network.set_red_all(red_params_for(config.variant));
    net::PfcParams pfc;
    pfc.pause_bytes = 200'000;
    pfc.resume_bytes = 100'000;
    network.set_pfc_all(pfc);
  }

  CcFactory factory(network, config.variant, /*small_topology=*/false);

  // Traffic generation forks the network stream first, exactly like
  // run_datacenter, so a given seed produces the same flow set in both
  // entry points.
  std::vector<net::FlowSpec> specs;
  if (!config.preset_flows.empty()) {
    specs = config.preset_flows;
  } else {
    workload::PoissonTrafficParams traffic;
    traffic.components = config.components;
    traffic.load = config.load;
    traffic.host_bandwidth = config.topo.host_bandwidth;
    traffic.host_count = static_cast<int>(tree.hosts.size());
    traffic.duration = config.generate_duration;
    sim::Rng traffic_rng = network.rng().fork();
    specs = workload::generate_poisson_traffic(traffic, traffic_rng);
  }

  // Per-shard random streams, forked in shard order (deterministic).  RED
  // marking at ports and probabilistic CC feedback draw from the owning
  // shard's stream, so no two workers ever touch one generator.
  std::vector<sim::Rng> shard_rngs;
  shard_rngs.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shard_rngs.push_back(network.rng().fork());

  // Re-home every node (simulator, pool, timing wheel, port transmitters,
  // port rng) onto its shard.
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    const int s = smap.of(id);
    net::Node* n = network.node(id);
    n->rebind_shard(*sims[s], pools[s].get());
    for (int i = 0; i < n->port_count(); ++i) {
      n->port(i).set_rng(&shard_rngs[static_cast<std::size_t>(s)]);
    }
  }

  // Mark every egress port whose peer lives on another shard as a boundary:
  // its transmissions go through the shard's router into the mailboxes.
  // Each boundary link feeds the per-ordered-pair lookahead matrix: a
  // packet deposited by shard s at local time t cannot reach shard d
  // before t + L(s, d), where L starts as the minimum direct boundary-link
  // propagation delay and is then closed over paths (seal), so the bound
  // holds for multi-hop influence chains too.
  net::ShardMailboxes mailboxes(shards);
  std::vector<std::unique_ptr<net::ShardRouter>> routers;
  routers.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    routers.push_back(
        std::make_unique<net::ShardRouter>(&mailboxes, &smap, s));
  }
  net::ShardLookahead lookahead(shards);
  std::size_t boundary_ports = 0;
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    net::Node* n = network.node(id);
    const int s = smap.of(id);
    for (int i = 0; i < n->port_count(); ++i) {
      net::Port& port = n->port(i);
      if (!port.connected()) continue;
      const int d = smap.of(port.peer()->id());
      if (d == s) continue;
      port.set_cross_shard_sink(routers[static_cast<std::size_t>(s)].get());
      lookahead.observe_link(s, d, port.propagation_delay());
      ++boundary_ports;
    }
  }
  lookahead.seal();
  assert((boundary_ports > 0 || shards == 1) &&
         "sharding found no boundary link in a multi-shard tree");
  assert((shards == 1 || lookahead.min_window() > 0) &&
         "conservative sync needs nonzero boundary latency");

  // Shortest-path BFS all happens here on the calling thread; during the
  // epoch loop the cache and flow_paths map are read-only (concurrent reads
  // from completion callbacks are safe).
  std::map<std::pair<net::NodeId, net::NodeId>, net::PathInfo> path_cache;
  auto path_of = [&](net::NodeId src,
                     net::NodeId dst) -> const net::PathInfo& {
    auto key = std::make_pair(src, dst);
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      it = path_cache.emplace(key, network.path(src, dst)).first;
    }
    return it->second;
  };

  const std::size_t total = specs.size();
  std::map<net::FlowId, const net::PathInfo*> flow_paths;
  std::vector<ShardState> shard_state(static_cast<std::size_t>(shards));

  // Completion callbacks write only the owning shard's state — no shared
  // counter, no stop(); termination is the drain check at the barrier.
  for (net::Host* h : tree.hosts) {
    ShardState* st = &shard_state[static_cast<std::size_t>(smap.of(h->id()))];
    h->set_completion_callback([st, &flow_paths](const net::FlowTx& f) {
      st->recorder.record(f, *flow_paths.at(f.spec.id));
      ++st->completed;
    });
  }

  for (net::FlowSpec& spec : specs) {
    net::Host* src = tree.hosts[spec.src];
    net::Host* dst = tree.hosts[spec.dst];
    spec.src = src->id();
    spec.dst = dst->id();
    const net::PathInfo& path = path_of(spec.src, spec.dst);
    flow_paths.emplace(spec.id, &path);
    const std::size_t s = static_cast<std::size_t>(smap.of(spec.src));
    sim::Rng* rng = &shard_rngs[s];
    // The factory and cached path outlive the schedule: the epoch loop
    // below drains every flow-start event before this scope exits.
    // lint:allow(ref-capture-callback -- epoch loop drains before scope exit)
    sims[s]->at(spec.start_time, [&factory, src, spec, &path, rng] {
      net::FlowTx flow;
      flow.spec = spec;
      flow.line_rate = src->port(0).bandwidth();
      flow.base_rtt = path.base_rtt;
      flow.path_hops = path.hops;
      flow.cc = factory.make(path, rng);
      src->start_flow(std::move(flow));
    });
  }

  // ---- The epoch loop ----------------------------------------------------
  // Each epoch, shard s runs its queue through [its clock, horizon[s]).
  // Simulator::run(until) is inclusive of `until`, so an active shard runs
  // to horizon[s] - 1; a bounded run leaves the clock at the bound even
  // when the queue drained early.  Skipped shards are not touched at all —
  // their clock catches up the next time they are active.  The worker and
  // completion-step bodies live in the named phase-annotated functions
  // above; the lambdas only bind this run's state to them.  plan_epoch is
  // called once up front to seed the first active set and horizons, then
  // once per barrier.
  EpochLoopState loop(shards);

  auto shard_fn = [&](int s) {
    advance_shard(sims, pools, network, mailboxes, shard_state, loop, s);
  };

  auto barrier_fn = [&]() -> bool {
    return plan_epoch(sims, mailboxes, lookahead, config.max_sim_time, loop);
  };

  if (plan_epoch(sims, mailboxes, lookahead, config.max_sim_time, loop)) {
    sim::EpochCoordinator::run_active(shards, workers, loop.active, shard_fn,
                                      barrier_fn);
  }

  // ---- Merge -------------------------------------------------------------
  DatacenterResult result;
  std::size_t completed = 0;
  for (const ShardState& st : shard_state) {
    completed += st.completed;
    result.flows.insert(result.flows.end(), st.recorder.records().begin(),
                        st.recorder.records().end());
  }
  // Canonical order: flow id.  (Serial runs report completion order, which
  // has no cross-shard analogue.)
  std::sort(result.flows.begin(), result.flows.end(),
            [](const stats::FlowRecord& a, const stats::FlowRecord& b) {
              return a.id < b.id;
            });
  result.drops = network.total_drops();
  for (const auto& sim : sims) result.events_executed += sim->events_executed();
  // Shards stop at per-shard horizons (skipped shards' clocks lag), so the
  // furthest clock is the run's end time.
  for (const auto& sim : sims) result.end_time = std::max(result.end_time, sim->now());
  result.unfinished = total - completed;

  if (stats_out != nullptr) {
    stats_out->shards = shards;
    stats_out->workers = std::clamp(workers, 1, shards);
    stats_out->lookahead = lookahead.min_window();
    stats_out->lookahead_min = lookahead.min_window();
    stats_out->lookahead_max = lookahead.max_window();
    stats_out->epochs = loop.epochs;
    stats_out->epochs_skipped = loop.epochs_skipped;
    stats_out->horizon_jumps = loop.horizon_jumps;
    stats_out->cross_shard_transfers = mailboxes.total_transfers();
    stats_out->drained = loop.drained;
    stats_out->pool_peak.clear();
    stats_out->pool_live_at_end.clear();
    for (const auto& pool : pools) {
      stats_out->pool_peak.push_back(pool->peak_count());
      stats_out->pool_live_at_end.push_back(pool->live_count());
    }
  }

  if (loop.drained) {
    // A drained run must leave zero live packets per shard: every packet
    // was either consumed locally or export_release'd across a boundary
    // and released there.  Arm the destructor audit so a leak fails loudly.
    for (const auto& pool : pools) pool->enable_teardown_leak_audit();
  }
  return result;
}

}  // namespace fastcc::exp
