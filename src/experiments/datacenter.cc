#include "experiments/datacenter.h"

#include <cassert>
#include <map>

#include "net/network.h"
#include "sim/simulator.h"

namespace fastcc::exp {

DatacenterResult run_datacenter(const DatacenterConfig& config) {
  assert(!config.components.empty() || !config.preset_flows.empty());
  sim::Simulator simulator;
  net::Network network(simulator, config.seed);
  topo::FatTree tree = build_fat_tree(network, config.topo);

  if (variant_needs_red(config.variant)) {
    network.set_red_all(red_params_for(config.variant));
    // ECN-driven deployments rely on PFC for losslessness while the
    // protocol converges (RDMA practice for DCQCN; harmless for DCTCP).
    net::PfcParams pfc;
    pfc.pause_bytes = 200'000;
    pfc.resume_bytes = 100'000;
    network.set_pfc_all(pfc);
  }

  CcFactory factory(network, config.variant, /*small_topology=*/false);

  std::vector<net::FlowSpec> specs;
  if (!config.preset_flows.empty()) {
    specs = config.preset_flows;
  } else {
    workload::PoissonTrafficParams traffic;
    traffic.components = config.components;
    traffic.load = config.load;
    traffic.host_bandwidth = config.topo.host_bandwidth;
    traffic.host_count = static_cast<int>(tree.hosts.size());
    traffic.duration = config.generate_duration;
    sim::Rng traffic_rng = network.rng().fork();
    specs = workload::generate_poisson_traffic(traffic, traffic_rng);
  }

  // Path lookups keyed by (src, dst); the fat-tree is symmetric so repeated
  // pairs are common and BFS is worth caching.  Ordered map: deterministic
  // by construction, and node-based storage keeps the PathInfo references
  // handed out below stable across later insertions.
  std::map<std::pair<net::NodeId, net::NodeId>, net::PathInfo> path_cache;
  auto path_of = [&](net::NodeId src, net::NodeId dst) -> const net::PathInfo& {
    auto key = std::make_pair(src, dst);
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      it = path_cache.emplace(key, network.path(src, dst)).first;
    }
    return it->second;
  };

  DatacenterResult result;
  stats::FctRecorder recorder;
  std::size_t completed = 0;
  const std::size_t total = specs.size();

  // Keyed lookups only (never iterated); ordered map for determinism by
  // construction.
  std::map<net::FlowId, const net::PathInfo*> flow_paths;

  for (net::Host* h : tree.hosts) {
    h->set_completion_callback([&](const net::FlowTx& f) {
      recorder.record(f, *flow_paths.at(f.spec.id));
      ++completed;
      if (completed == total) simulator.stop();
    });
  }

  for (net::FlowSpec& spec : specs) {
    // Remap generator host indices to topology node ids.
    net::Host* src = tree.hosts[spec.src];
    net::Host* dst = tree.hosts[spec.dst];
    spec.src = src->id();
    spec.dst = dst->id();
    const net::PathInfo& path = path_of(spec.src, spec.dst);
    flow_paths.emplace(spec.id, &path);
    // The factory and cached path outlive the schedule: simulator.run()
    // below drains every flow-start event before this scope exits.
    // lint:allow(ref-capture-callback -- run() drains before scope exit)
    simulator.at(spec.start_time, [&factory, src, spec, &path] {
      net::FlowTx flow;
      flow.spec = spec;
      flow.line_rate = src->port(0).bandwidth();
      flow.base_rtt = path.base_rtt;
      flow.path_hops = path.hops;
      flow.cc = factory.make(path);
      src->start_flow(std::move(flow));
    });
  }

  simulator.run(config.max_sim_time);

  result.flows = recorder.records();
  result.drops = network.total_drops();
  result.events_executed = simulator.events_executed();
  result.end_time = simulator.now();
  result.unfinished = total - completed;
  return result;
}

}  // namespace fastcc::exp
