// Protocol-variant catalogue and factory.
//
// Every curve in the paper's figures corresponds to one Variant here.  The
// factory owns the translation from paper parameter prose to concrete
// protocol configs (AI values, VAI token thresholds derived from the
// network's minimum BDP, Swift target-delay scaling) so experiments, tests,
// benches, and examples all construct identical protocols.
#pragma once

#include <string>

#include "cc/engine.h"
#include "net/network.h"

namespace fastcc::exp {

enum class Variant {
  // HPCC family (Figure 1a/b, 2, 5, 8, 10-13).
  kHpcc,          ///< Default: AI 50 Mbps, eta 0.95, maxStage 5.
  kHpcc1G,        ///< "HPCC 1Gbps": AI raised to 1 Gbps.
  kHpccProb,      ///< "HPCC Probabilistic": window-linear feedback ignoring.
  kHpccVai,       ///< Ablation: Variable AI only.
  kHpccSf,        ///< Ablation: Sampling Frequency only.
  kHpccVaiSf,     ///< The paper's mechanism set.
  // Swift family (Figure 1c/d, 3, 6, 9, 10-13).
  kSwift,
  kSwift1G,
  kSwiftProb,
  kSwiftVai,
  kSwiftSf,
  kSwiftVaiSf,    ///< VAI + SF, FBS disabled (Section VI-B).
  kSwiftHai,      ///< Future-work: TIMELY-style hyper AI (Section VI-B).
  // Background baselines (Section II).
  kDcqcn,
  kTimely,
  kDctcp,
};

const char* variant_name(Variant v);
bool variant_is_hpcc(Variant v);
bool variant_is_swift(Variant v);
/// DCQCN and DCTCP need RED/ECN marking enabled at switches.
bool variant_needs_red(Variant v);
/// Marking parameters appropriate for the variant: probabilistic RED for
/// DCQCN, a step function at K for DCTCP.
net::RedParams red_params_for(Variant v);

/// Builds congestion controllers for a given network + variant.
class CcFactory {
 public:
  /// `small_topology` applies the paper's single-switch adjustments (Swift
  /// fs_max_cwnd 100 -> 50).  The minimum BDP (VAI Token_Thresh) is derived
  /// from the first adjacent host pair, matching the paper's ~50 KB.
  CcFactory(net::Network& network, Variant variant, bool small_topology,
            std::uint32_t mtu = net::kDefaultMtu);

  /// Creates a configured controller for a flow over `path`.  The engine is
  /// a value: assigning it into FlowTx.cc allocates nothing.
  cc::CcEngine make(const net::PathInfo& path) const;

  /// Same, but drawing randomness (HPCC/Swift probabilistic feedback) from
  /// `rng` instead of the network's shared stream.  The space-parallel
  /// runner uses this: each shard owns a private Rng, so flows started on
  /// different worker threads never race on — or perturb — one generator.
  cc::CcEngine make(const net::PathInfo& path, sim::Rng* rng) const;

  Variant variant() const { return variant_; }
  double min_bdp_bytes() const { return min_bdp_bytes_; }
  sim::Time min_bdp_delay() const { return min_bdp_delay_; }
  int sampling_freq() const;

  /// Paper constants, exposed for tests and ablations.
  static constexpr int kPaperSamplingFreq = 30;

 private:
  cc::HpccParams hpcc_params(const net::PathInfo& path) const;
  cc::SwiftParams swift_params(const net::PathInfo& path) const;

  net::Network& network_;
  Variant variant_;
  bool small_topology_;
  std::uint32_t mtu_;
  double min_bdp_bytes_ = 0.0;
  sim::Time min_bdp_delay_ = 0;
};

}  // namespace fastcc::exp
