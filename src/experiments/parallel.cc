#include "experiments/parallel.h"

#include <atomic>

namespace fastcc::exp {

void parallel_for_index(
    std::size_t count, unsigned max_threads,
    FASTCC_SHARD_LOCAL const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  unsigned workers = max_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : max_threads;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  // The calling thread is worker 0: spawn only workers - 1 threads and run
  // the claim loop here too.  Saves a thread (and its stack) per sweep and
  // keeps the caller's core busy instead of parked in join().
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
}

std::vector<IncastResult> run_incast_parallel(
    const std::vector<IncastConfig>& configs, unsigned max_threads) {
  std::vector<IncastResult> results(configs.size());
  parallel_for_index(configs.size(), max_threads, [&](std::size_t i) {
    results[i] = run_incast(configs[i]);
  });
  return results;
}

std::vector<DatacenterResult> run_datacenter_parallel(
    const std::vector<DatacenterConfig>& configs, unsigned max_threads) {
  std::vector<DatacenterResult> results(configs.size());
  parallel_for_index(configs.size(), max_threads, [&](std::size_t i) {
    results[i] = run_datacenter(configs[i]);
  });
  return results;
}

}  // namespace fastcc::exp
