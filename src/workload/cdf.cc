#include "workload/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastcc::workload {

Cdf::Cdf(std::string name, std::vector<CdfPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  assert(!points_.empty());
  if (points_.front().cum_prob > 0.0) {
    points_.insert(points_.begin(), CdfPoint{points_.front().size_bytes, 0.0});
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].size_bytes >= points_[i - 1].size_bytes);
    assert(points_[i].cum_prob >= points_[i - 1].cum_prob);
  }
  assert(std::abs(points_.back().cum_prob - 1.0) < 1e-9 &&
         "CDF must end at probability 1");
}

std::uint64_t Cdf::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  // Find the first point with cum_prob >= u and interpolate from its
  // predecessor.
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const CdfPoint& p, double v) {
                               return p.cum_prob < v;
                             });
  if (it == points_.begin()) {
    return static_cast<std::uint64_t>(std::max(1.0, it->size_bytes));
  }
  if (it == points_.end()) --it;
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  double size = hi.size_bytes;
  if (hi.cum_prob > lo.cum_prob) {
    const double frac = (u - lo.cum_prob) / (hi.cum_prob - lo.cum_prob);
    size = lo.size_bytes + frac * (hi.size_bytes - lo.size_bytes);
  }
  return static_cast<std::uint64_t>(std::max(1.0, size));
}

double Cdf::mean_bytes() const {
  // Each linear segment contributes its probability mass times the segment's
  // average size.
  double mean = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum_prob - points_[i - 1].cum_prob;
    const double avg = (points_[i].size_bytes + points_[i - 1].size_bytes) / 2.0;
    mean += mass * avg;
  }
  return mean;
}

double Cdf::probability_below(double size_bytes) const {
  if (size_bytes <= points_.front().size_bytes) return 0.0;
  if (size_bytes >= points_.back().size_bytes) return 1.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].size_bytes >= size_bytes) {
      const CdfPoint& lo = points_[i - 1];
      const CdfPoint& hi = points_[i];
      if (hi.size_bytes == lo.size_bytes) return hi.cum_prob;
      const double frac = (size_bytes - lo.size_bytes) /
                          (hi.size_bytes - lo.size_bytes);
      return lo.cum_prob + frac * (hi.cum_prob - lo.cum_prob);
    }
  }
  return 1.0;
}

}  // namespace fastcc::workload
