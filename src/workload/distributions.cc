#include "workload/distributions.h"

namespace fastcc::workload {

const Cdf& hadoop_cdf() {
  // Anchors from the paper: 95% < 300 KB, 2.5% > 1 MB.  The small-flow body
  // follows the published Facebook Hadoop shape (most flows under a few KB).
  static const Cdf cdf("hadoop", {
                                     {130, 0.00},
                                     {250, 0.15},
                                     {500, 0.30},
                                     {1000, 0.50},
                                     {2000, 0.60},
                                     {10000, 0.70},
                                     {30000, 0.80},
                                     {100000, 0.90},
                                     {300000, 0.95},
                                     {1000000, 0.975},
                                     {2000000, 0.9875},
                                     {5000000, 0.9975},
                                     {10000000, 1.00},
                                 });
  return cdf;
}

const Cdf& websearch_cdf() {
  // The classic DCTCP web-search distribution; ~30% of flows exceed 1 MB,
  // matching the paper's description.
  static const Cdf cdf("websearch", {
                                        {6000, 0.15},
                                        {13000, 0.20},
                                        {19000, 0.30},
                                        {33000, 0.40},
                                        {53000, 0.53},
                                        {133000, 0.60},
                                        {667000, 0.70},
                                        {1333000, 0.80},
                                        {3333000, 0.90},
                                        {6667000, 0.97},
                                        {20000000, 1.00},
                                    });
  return cdf;
}

const Cdf& storage_cdf() {
  // Anchors from the paper: 96% < 128 KB, 100% < 2 MB.
  static const Cdf cdf("storage", {
                                      {512, 0.20},
                                      {1024, 0.35},
                                      {2048, 0.50},
                                      {8192, 0.65},
                                      {16384, 0.75},
                                      {32768, 0.85},
                                      {65536, 0.92},
                                      {131072, 0.96},
                                      {262144, 0.98},
                                      {524288, 0.99},
                                      {1048576, 0.995},
                                      {2097152, 1.00},
                                  });
  return cdf;
}

}  // namespace fastcc::workload
