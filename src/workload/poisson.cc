#include "workload/poisson.h"

#include <algorithm>
#include <cassert>

namespace fastcc::workload {

double component_arrival_rate(const PoissonTrafficParams& params,
                              const TrafficComponent& component) {
  assert(component.cdf != nullptr);
  const double aggregate_bytes_per_ns =
      params.load * component.load_fraction *
      params.host_bandwidth * static_cast<double>(params.host_count);
  return aggregate_bytes_per_ns / component.cdf->mean_bytes();
}

std::vector<net::FlowSpec> generate_poisson_traffic(
    const PoissonTrafficParams& params, sim::Rng& rng) {
  assert(params.host_count >= 2 && params.duration > 0);
  std::vector<net::FlowSpec> flows;
  net::FlowId next_id = params.first_flow_id;

  for (const TrafficComponent& comp : params.components) {
    const double lambda = component_arrival_rate(params, comp);
    assert(lambda > 0.0);
    const double mean_gap_ns = 1.0 / lambda;
    double t = rng.exponential(mean_gap_ns);
    while (t < static_cast<double>(params.duration)) {
      net::FlowSpec spec;
      spec.id = next_id++;
      spec.src = static_cast<net::NodeId>(
          rng.uniform_int(0, params.host_count - 1));
      do {
        spec.dst = static_cast<net::NodeId>(
            rng.uniform_int(0, params.host_count - 1));
      } while (spec.dst == spec.src);
      spec.size_bytes = comp.cdf->sample(rng);
      spec.start_time = static_cast<sim::Time>(t);
      flows.push_back(spec);
      t += rng.exponential(mean_gap_ns);
    }
  }

  std::sort(flows.begin(), flows.end(),
            [](const net::FlowSpec& a, const net::FlowSpec& b) {
              if (a.start_time != b.start_time) return a.start_time < b.start_time;
              return a.id < b.id;
            });
  return flows;
}

}  // namespace fastcc::workload
