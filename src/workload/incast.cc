#include "workload/incast.h"

#include <cassert>

namespace fastcc::workload {

std::vector<net::FlowSpec> make_incast(const IncastPattern& pattern,
                                       const std::vector<net::NodeId>& sender_ids,
                                       net::NodeId receiver) {
  assert(static_cast<int>(sender_ids.size()) >= pattern.senders);
  assert(pattern.flows_per_wave > 0);
  std::vector<net::FlowSpec> flows;
  flows.reserve(pattern.senders);
  for (int i = 0; i < pattern.senders; ++i) {
    net::FlowSpec spec;
    spec.id = static_cast<net::FlowId>(i + 1);
    spec.src = sender_ids[i];
    spec.dst = receiver;
    spec.size_bytes = pattern.flow_bytes;
    spec.start_time = pattern.first_start +
                      (i / pattern.flows_per_wave) * pattern.wave_interval;
    flows.push_back(spec);
  }
  return flows;
}

}  // namespace fastcc::workload
