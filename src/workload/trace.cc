#include "workload/trace.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace fastcc::workload {

namespace {

constexpr std::string_view kHeader =
    "flow_id,src_host,dst_host,size_bytes,start_time_ns";

/// Parses one unsigned field; throws with row context on failure.
template <typename T>
T parse_field(std::string_view field, std::size_t row) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error("flow trace row " + std::to_string(row) +
                             ": bad numeric field '" + std::string(field) +
                             "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::size_t write_flow_trace(std::ostream& os,
                             const std::vector<net::FlowSpec>& flows) {
  os << kHeader << '\n';
  for (const net::FlowSpec& f : flows) {
    os << f.id << ',' << f.src << ',' << f.dst << ',' << f.size_bytes << ','
       << f.start_time << '\n';
  }
  return flows.size();
}

std::vector<net::FlowSpec> read_flow_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("flow trace: missing or wrong header");
  }
  std::vector<net::FlowSpec> flows;
  std::size_t row = 1;
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto fields = split(line);
    if (fields.size() != 5) {
      throw std::runtime_error("flow trace row " + std::to_string(row) +
                               ": expected 5 fields, got " +
                               std::to_string(fields.size()));
    }
    net::FlowSpec spec;
    spec.id = parse_field<net::FlowId>(fields[0], row);
    spec.src = parse_field<net::NodeId>(fields[1], row);
    spec.dst = parse_field<net::NodeId>(fields[2], row);
    spec.size_bytes = parse_field<std::uint64_t>(fields[3], row);
    spec.start_time = parse_field<sim::Time>(fields[4], row);
    flows.push_back(spec);
  }
  return flows;
}

std::size_t save_flow_trace(const std::string& path,
                            const std::vector<net::FlowSpec>& flows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open flow trace for write: " + path);
  return write_flow_trace(os, flows);
}

std::vector<net::FlowSpec> load_flow_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open flow trace: " + path);
  return read_flow_trace(is);
}

}  // namespace fastcc::workload
