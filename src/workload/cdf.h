// Piecewise-linear flow-size CDFs, the representation used by the HPCC
// artifact's distribution files that the paper samples from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace fastcc::workload {

struct CdfPoint {
  double size_bytes;
  double cum_prob;  ///< In [0, 1], non-decreasing; last point must be 1.
};

class Cdf {
 public:
  /// Points must be sorted by size with non-decreasing probability ending at
  /// exactly 1.0.  A leading implicit point (min_size, 0) is added when the
  /// first explicit probability is positive.
  Cdf(std::string name, std::vector<CdfPoint> points);

  /// Inverse-transform sample; linear interpolation between points.
  /// Result is clamped to at least 1 byte.
  std::uint64_t sample(sim::Rng& rng) const;

  /// Expected flow size (exact for the piecewise-linear model).
  double mean_bytes() const;

  /// Fraction of flows at or below `size_bytes`.
  double probability_below(double size_bytes) const;

  double min_bytes() const { return points_.front().size_bytes; }
  double max_bytes() const { return points_.back().size_bytes; }
  const std::string& name() const { return name_; }
  const std::vector<CdfPoint>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<CdfPoint> points_;
};

}  // namespace fastcc::workload
