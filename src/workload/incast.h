// Staggered incast workload (Sections III-D and VI-A): N senders each send
// one fixed-size flow to a single receiver; `flows_per_wave` flows start
// every `wave_interval`.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "sim/time.h"

namespace fastcc::workload {

struct IncastPattern {
  int senders = 16;
  std::uint64_t flow_bytes = 1'000'000;
  int flows_per_wave = 2;
  sim::Time wave_interval = 20 * sim::kMicrosecond;
  sim::Time first_start = 0;
};

/// Expands the pattern into flow specs.  `sender_ids[i]` sources flow i;
/// all flows target `receiver`.  Flow ids are 1..N in start order.
std::vector<net::FlowSpec> make_incast(const IncastPattern& pattern,
                                       const std::vector<net::NodeId>& sender_ids,
                                       net::NodeId receiver);

}  // namespace fastcc::workload
