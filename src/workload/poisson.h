// Poisson datacenter traffic generation (Section VI-A).
//
// Flows arrive as a Poisson process whose rate is chosen so that the
// aggregate offered bytes equal `load` x the total host injection capacity;
// each arrival picks a uniform random (src, dst) host pair (src != dst) and
// a size drawn from a flow-size CDF.  A mix of CDFs splits the load by
// weight, modelling the paper's shared WebSearch + storage cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/cdf.h"

namespace fastcc::workload {

struct TrafficComponent {
  const Cdf* cdf = nullptr;
  double load_fraction = 1.0;  ///< Share of total target load.
};

struct PoissonTrafficParams {
  std::vector<TrafficComponent> components;
  double load = 0.5;            ///< Fraction of aggregate host bandwidth.
  sim::Rate host_bandwidth = 0; ///< Per-host injection capacity.
  int host_count = 0;
  sim::Time duration = 0;       ///< Arrivals generated in [0, duration).
  net::FlowId first_flow_id = 1;
};

/// Pre-generates the full arrival schedule (deterministic given `rng`).
/// Returned specs are sorted by start time.  NOTE: spec.src / spec.dst hold
/// *host indices* in [0, host_count); the experiment driver remaps them to
/// topology node ids.
std::vector<net::FlowSpec> generate_poisson_traffic(
    const PoissonTrafficParams& params, sim::Rng& rng);

/// Flow arrival rate (flows per ns) implied by one component of the mix.
double component_arrival_rate(const PoissonTrafficParams& params,
                              const TrafficComponent& component);

}  // namespace fastcc::workload
