// Flow-trace serialization: save a generated workload (or load a captured
// one) as CSV so runs can be replayed exactly across protocols, seeds, and
// machines — the apples-to-apples comparison the paper's Figures 10-13 rely
// on.
//
// Format (header required):
//   flow_id,src_host,dst_host,size_bytes,start_time_ns
// where src/dst are host *indices* (as produced by the Poisson generator),
// remapped to node ids by the experiment driver.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/flow.h"

namespace fastcc::workload {

/// Writes flow specs as CSV.  Returns the number of rows written.
std::size_t write_flow_trace(std::ostream& os,
                             const std::vector<net::FlowSpec>& flows);

/// Parses a CSV flow trace.  Throws std::runtime_error on malformed input
/// (bad header, non-numeric fields, wrong column count).
std::vector<net::FlowSpec> read_flow_trace(std::istream& is);

/// Convenience file wrappers.
std::size_t save_flow_trace(const std::string& path,
                            const std::vector<net::FlowSpec>& flows);
std::vector<net::FlowSpec> load_flow_trace(const std::string& path);

}  // namespace fastcc::workload
