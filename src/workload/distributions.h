// The paper's three datacenter flow-size distributions.
//
// The exact artifact files are not shipped here; these tables are
// reconstructions anchored to the statistics the paper states and the
// published shapes of the underlying workloads:
//  * Facebook Hadoop (Zeng et al.): mostly tiny flows, 95% < 300 KB,
//    2.5% > 1 MB;
//  * Microsoft WebSearch (the DCTCP workload): heavy-tailed, ~30% of flows
//    over 1 MB carrying most bytes;
//  * Alibaba storage: almost exclusively small, 96% < 128 KB, all < 2 MB.
// Section VI of EXPERIMENTS.md documents this substitution.
#pragma once

#include "workload/cdf.h"

namespace fastcc::workload {

/// Facebook Hadoop flow sizes.
const Cdf& hadoop_cdf();

/// Microsoft WebSearch flow sizes.
const Cdf& websearch_cdf();

/// Alibaba storage flow sizes.
const Cdf& storage_cdf();

}  // namespace fastcc::workload
