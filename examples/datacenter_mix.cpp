// Datacenter example: a shared cluster running the WebSearch + storage mix
// (the paper's Section VI-A "shared environment") over the fat-tree, with a
// protocol of your choice.  Prints the FCT slowdown table split by flow
// size — the view that shows long-flow tails collapsing under VAI SF.
//
// Usage: datacenter_mix [variant] [duration_us] [--save-trace F | --replay F]
//   variant: hpcc | hpcc-vai-sf | swift | swift-vai-sf | dcqcn (default hpcc)
//   --save-trace F  write the generated flow schedule to CSV file F
//   --replay F      replay a previously saved schedule instead of generating
#include <cstdio>
#include <cstring>

#include "experiments/datacenter.h"
#include "sim/random.h"
#include "stats/fct.h"
#include "stats/percentile.h"
#include "workload/distributions.h"
#include "workload/poisson.h"
#include "workload/trace.h"

using namespace fastcc;

namespace {

exp::Variant parse_variant(const char* name) {
  if (std::strcmp(name, "hpcc-vai-sf") == 0) return exp::Variant::kHpccVaiSf;
  if (std::strcmp(name, "swift") == 0) return exp::Variant::kSwift;
  if (std::strcmp(name, "swift-vai-sf") == 0) return exp::Variant::kSwiftVaiSf;
  if (std::strcmp(name, "dcqcn") == 0) return exp::Variant::kDcqcn;
  return exp::Variant::kHpcc;
}

}  // namespace

int main(int argc, char** argv) {
  exp::DatacenterConfig config;
  config.variant = argc > 1 ? parse_variant(argv[1]) : exp::Variant::kHpcc;
  config.topo = topo::scaled_fat_tree();
  config.components = {{&workload::websearch_cdf(), 0.5},
                       {&workload::storage_cdf(), 0.5}};
  config.load = 0.5;
  config.generate_duration =
      (argc > 2 ? std::atoll(argv[2]) : 1000) * sim::kMicrosecond;

  const char* save_path = nullptr;
  const char* replay_path = nullptr;
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--save-trace") == 0) save_path = argv[i + 1];
    if (std::strcmp(argv[i], "--replay") == 0) replay_path = argv[i + 1];
  }
  if (replay_path != nullptr) {
    config.preset_flows = workload::load_flow_trace(replay_path);
    std::printf("replaying %zu flows from %s\n", config.preset_flows.size(),
                replay_path);
  } else if (save_path != nullptr) {
    // Generate the schedule exactly as the driver would, save it, and feed
    // it back so the run matches future replays byte for byte.
    workload::PoissonTrafficParams traffic;
    traffic.components = config.components;
    traffic.load = config.load;
    traffic.host_bandwidth = config.topo.host_bandwidth;
    traffic.host_count = config.topo.host_count();
    traffic.duration = config.generate_duration;
    sim::Rng base(config.seed);
    sim::Rng traffic_rng = base.fork();
    config.preset_flows = generate_poisson_traffic(traffic, traffic_rng);
    workload::save_flow_trace(save_path, config.preset_flows);
    std::printf("saved %zu flows to %s\n", config.preset_flows.size(),
                save_path);
  }

  std::printf("datacenter_mix: %s, %d-host fat-tree, 50%% load\n",
              variant_name(config.variant), config.topo.host_count());

  const exp::DatacenterResult result = run_datacenter(config);
  std::printf("flows completed: %zu (unfinished %zu, drops %llu)\n",
              result.flows.size(), result.unfinished,
              static_cast<unsigned long long>(result.drops));

  const auto rows = stats::slowdown_by_size(result.flows, 12, 99.0);
  std::printf("\n%-14s %10s %8s\n", "size group", "p99 slow", "flows");
  for (const auto& row : rows) {
    std::printf("<= %8.1f KB %10.2f %8zu\n",
                static_cast<double>(row.max_size_bytes) / 1000.0,
                row.slowdown, row.flow_count);
  }

  stats::PercentileEstimator small_flows, long_flows;
  for (const auto& f : result.flows) {
    (f.size_bytes > 1'000'000 ? long_flows : small_flows).add(f.slowdown());
  }
  if (!small_flows.empty() && !long_flows.empty()) {
    std::printf("\nsmall (<=1MB) median slowdown: %.2f\n",
                small_flows.median());
    std::printf("long  (>1MB)  p99.9 slowdown:  %.2f\n", long_flows.p999());
  }
  return 0;
}
