// Quickstart: build a tiny network, run two competing HPCC flows, and watch
// convergence to a fair share.
//
// This is the smallest end-to-end use of the fastcc public API:
//   1. create a Simulator and a Network,
//   2. build a topology (here: 3 hosts on one switch),
//   3. pick a congestion-control variant via CcFactory,
//   4. start flows and run the event loop,
//   5. read results off the flows.
#include <cstdio>

#include "experiments/protocols.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/star.h"

using namespace fastcc;

int main() {
  sim::Simulator simulator;
  net::Network network(simulator, /*seed=*/42);

  topo::StarParams star_params;
  star_params.host_count = 3;  // two senders, one receiver
  topo::Star star = build_star(network, star_params);

  // The paper's full mechanism set on HPCC: Variable AI + Sampling Frequency.
  exp::CcFactory factory(network, exp::Variant::kHpccVaiSf,
                         /*small_topology=*/true);

  net::Host* receiver = star.hosts[2];
  for (int i = 0; i < 2; ++i) {
    net::Host* sender = star.hosts[i];
    const net::PathInfo path = network.path(sender->id(), receiver->id());

    net::FlowTx flow;
    flow.spec.id = static_cast<net::FlowId>(i + 1);
    flow.spec.src = sender->id();
    flow.spec.dst = receiver->id();
    flow.spec.size_bytes = 2'000'000;  // 2 MB each
    // Stagger the second flow so the first initially owns the whole link.
    flow.spec.start_time = i * 20 * sim::kMicrosecond;
    flow.line_rate = sender->port(0).bandwidth();
    flow.base_rtt = path.base_rtt;
    flow.path_hops = path.hops;
    flow.cc = factory.make(path);

    simulator.at(flow.spec.start_time,
                 [sender, f = std::move(flow)]() mutable {
                   sender->start_flow(std::move(f));
                 });
  }

  simulator.run();

  std::printf("quickstart: 2 HPCC VAI SF flows sharing a 100 Gbps link\n");
  for (int i = 0; i < 2; ++i) {
    const net::FlowTx* f = star.hosts[i]->flow(static_cast<net::FlowId>(i + 1));
    std::printf(
        "  flow %d: start %.1f us  finish %.1f us  fct %.1f us\n", i + 1,
        static_cast<double>(f->spec.start_time) / 1e3,
        static_cast<double>(f->finish_time) / 1e3,
        static_cast<double>(f->finish_time - f->spec.start_time) / 1e3);
  }
  std::printf("  events executed: %llu, drops: %llu\n",
              static_cast<unsigned long long>(simulator.events_executed()),
              static_cast<unsigned long long>(network.total_drops()));
  return 0;
}
