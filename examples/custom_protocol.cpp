// Extending fastcc: implement your own congestion-control algorithm against
// the cc::CongestionControl interface and run it through the standard incast
// experiment.
//
// The example protocol is a deliberately simple delay-threshold AIMD
// ("MiniCc"): halve the window once per RTT when the measured RTT exceeds a
// fixed target, otherwise grow by one MTU per RTT.  It also shows how to
// bolt the paper's Sampling Frequency helper onto a brand-new protocol —
// exactly the "broadly applicable to other sender reaction-based protocols"
// claim from Section V.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/sampling_frequency.h"
#include "experiments/incast.h"

using namespace fastcc;

namespace {

class MiniCc final : public cc::CongestionControl {
 public:
  MiniCc(sim::Time target_delay, int sampling_freq)
      : target_(target_delay), sf_(sampling_freq) {}

  void on_flow_start(net::FlowView flow) override {
    // Line-rate start, like the RDMA protocols in the paper.
    window_ = flow.line_rate * static_cast<double>(flow.base_rtt);
    max_window_ = window_;
    apply(flow);
  }

  void on_ack(const cc::AckContext& ack, net::FlowView flow) override {
    const double mtu = flow.mtu;
    if (ack.rtt > target_) {
      // Decrease either on the Sampling-Frequency schedule (every s ACKs —
      // fast flows react more often) or once per RTT when SF is disabled.
      const bool due = sf_.enabled()
                           ? sf_.tick()
                           : (last_decrease_ < 0 ||
                              ack.now - last_decrease_ >= ack.rtt);
      if (due) {
        window_ /= 2.0;
        last_decrease_ = ack.now;
      }
    } else {
      // One MTU per RTT, spread across ACKs.
      window_ += mtu * ack.bytes_acked / std::max(window_, mtu);
    }
    window_ = std::clamp(window_, mtu, max_window_);
    apply(flow);
  }

  const char* name() const override { return "mini-cc"; }

 private:
  void apply(net::FlowView flow) {
    flow.window_bytes = window_;
    flow.rate = window_ / static_cast<double>(flow.base_rtt);
  }

  sim::Time target_;
  core::SamplingFrequency sf_;
  double window_ = 0.0;
  double max_window_ = 0.0;
  sim::Time last_decrease_ = -1;
};

exp::IncastResult run_mini(int sampling_freq) {
  exp::IncastConfig config;
  config.variant = exp::Variant::kHpcc;  // used only for labels/defaults
  config.custom_cc = [sampling_freq](const net::PathInfo& path) {
    // Tolerate one min-BDP of queueing on top of the unloaded RTT.
    const sim::Time target = path.base_rtt + 4 * sim::kMicrosecond;
    // MiniCc is out-of-tree, so it rides the virtual escape hatch: the
    // engine wraps the unique_ptr instead of holding a sealed alternative.
    return cc::CcEngine(std::make_unique<MiniCc>(target, sampling_freq));
  };
  return run_incast(config);
}

}  // namespace

int main() {
  std::printf("custom_protocol: MiniCc on the 16-1 staggered incast\n\n");
  for (const int s : {0, 30}) {
    const exp::IncastResult r = run_mini(s);
    const sim::Time settle = r.jain_settle_time(0.9);
    std::printf(
        "MiniCc %-14s finish_spread=%7.1f us  jain_settle90=%7.1f us  "
        "max_queue=%6.1f KB  drops=%llu\n",
        s == 0 ? "(per-RTT MD)" : "(SF, s=30)",
        static_cast<double>(r.finish_spread()) / 1e3,
        settle < 0 ? -1.0 : static_cast<double>(settle) / 1e3,
        r.queue_bytes.max_value() / 1e3,
        static_cast<unsigned long long>(r.drops));
  }
  std::printf(
      "\nSampling Frequency transplants onto a new protocol unchanged —\n"
      "fast flows receive more ACKs, so they decrease more often.\n");
  return 0;
}
