// Parallel parameter sweep: fan the full protocol-variant catalogue over a
// thread pool (each simulation is independent and deterministic, so the
// sweep scales to the machine's core count) and rank the variants by the
// paper's convergence metrics.
//
// Usage: variant_sweep [senders] [threads]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/convergence.h"
#include "experiments/parallel.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;

  const std::vector<exp::Variant> variants = {
      exp::Variant::kHpcc,     exp::Variant::kHpcc1G,
      exp::Variant::kHpccProb, exp::Variant::kHpccVai,
      exp::Variant::kHpccSf,   exp::Variant::kHpccVaiSf,
      exp::Variant::kSwift,    exp::Variant::kSwift1G,
      exp::Variant::kSwiftProb, exp::Variant::kSwiftVai,
      exp::Variant::kSwiftSf,  exp::Variant::kSwiftVaiSf,
      exp::Variant::kSwiftHai, exp::Variant::kDcqcn,
      exp::Variant::kTimely,
  };

  std::vector<exp::IncastConfig> configs;
  for (const exp::Variant v : variants) {
    exp::IncastConfig c;
    c.variant = v;
    c.pattern.senders = senders;
    c.star.host_count = senders + 1;
    configs.push_back(c);
  }

  std::printf("variant_sweep: %zu variants, %d-1 incast, %s threads\n\n",
              configs.size(), senders,
              threads == 0 ? "auto" : std::to_string(threads).c_str());
  const std::vector<exp::IncastResult> results =
      run_incast_parallel(configs, threads);

  // Rank by unfairness debt (the integral of 1 - Jain over the run).
  std::vector<std::size_t> order(results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<core::ConvergenceSummary> summaries;
  for (const auto& r : results) summaries.push_back(r.convergence(0.9));
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return summaries[a].unfairness_integral_ns <
           summaries[b].unfairness_integral_ns;
  });

  std::printf("%-22s %16s %14s %12s %10s\n", "variant (best first)",
              "unfair debt (us)", "settle90 (us)", "mean jain", "util");
  for (const std::size_t i : order) {
    const auto& s = summaries[i];
    std::printf("%-22s %16.1f %14.1f %12.3f %10.3f\n",
                variant_name(variants[i]), s.unfairness_integral_ns / 1e3,
                s.settle_time < 0 ? -1.0
                                  : static_cast<double>(s.settle_time) / 1e3,
                s.mean_index, results[i].mean_utilization());
  }
  return 0;
}
