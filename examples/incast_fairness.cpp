// Incast fairness demo: reproduces the paper's Section III case study at a
// glance.  Runs the 16-to-1 staggered incast (two 1 MB flows start every
// 20 us) under every protocol variant and prints the three quantities the
// paper cares about: how fast the Jain index settles near 1, how far apart
// the first and last flows finish, and the peak bottleneck queue.
//
// Usage: incast_fairness [senders] [flow_kb]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  int senders = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t flow_kb = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1000;

  const std::vector<exp::Variant> variants = {
      exp::Variant::kHpcc,      exp::Variant::kHpcc1G,
      exp::Variant::kHpccProb,  exp::Variant::kHpccVaiSf,
      exp::Variant::kSwift,     exp::Variant::kSwift1G,
      exp::Variant::kSwiftProb, exp::Variant::kSwiftVaiSf,
      exp::Variant::kDcqcn,
  };

  std::printf("%d-to-1 incast, %llu KB flows, 2 start every 20 us\n\n",
              senders, static_cast<unsigned long long>(flow_kb));
  std::printf("%-22s %14s %16s %14s %12s\n", "variant", "jain settle us",
              "finish spread us", "max queue KB", "last fin us");

  for (const exp::Variant v : variants) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.pattern.flow_bytes = flow_kb * 1000;
    config.star.host_count = senders + 1;
    const exp::IncastResult r = run_incast(config);

    const sim::Time settle = r.jain_settle_time(0.95);
    std::printf("%-22s %14.1f %16.1f %14.1f %12.1f\n", variant_name(v),
                settle < 0 ? -1.0 : static_cast<double>(settle) / 1e3,
                static_cast<double>(r.finish_spread()) / 1e3,
                r.queue_bytes.max_value() / 1e3,
                static_cast<double>(r.completion_time) / 1e3);
  }
  return 0;
}
