// Shared driver for the datacenter FCT-slowdown benches (Figures 10-13).
#pragma once

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "experiments/datacenter.h"
#include "experiments/sharded.h"
#include "stats/fct.h"
#include "stats/percentile.h"

namespace fastcc::bench {

struct FctBenchOptions {
  bool full_scale = false;       ///< --full: paper topology (320 hosts).
  sim::Time duration = 0;        ///< Arrival window; 0 = scale default.
  double load = 0.5;
  int groups = 20;               ///< Flow-size groups per table.
  std::uint64_t seed = 1;
  int shards = 0;                ///< --shards N: sharded run, N workers.
  /// --granularity pod|tor: partition grain for sharded runs (tor gives
  /// one shard per rack, so N can usefully exceed the pod count).
  topo::ShardGranularity granularity = topo::ShardGranularity::kPod;
};

inline FctBenchOptions parse_fct_options(int argc, char** argv) {
  FctBenchOptions opt;
  opt.full_scale = has_flag(argc, argv, "--full");
  opt.duration = flag_value(argc, argv, "--duration-us",
                            opt.full_scale ? 50'000 : 2'000) *
                 sim::kMicrosecond;
  opt.load = static_cast<double>(flag_value(argc, argv, "--load-pct", 50)) / 100.0;
  opt.groups = static_cast<int>(flag_value(argc, argv, "--groups", opt.full_scale ? 100 : 20));
  opt.seed = static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 1));
  opt.shards = static_cast<int>(flag_value(argc, argv, "--shards", 0));
  const char* grain = flag_string(argc, argv, "--granularity", "pod");
  if (std::strcmp(grain, "tor") == 0) {
    opt.granularity = topo::ShardGranularity::kTor;
  } else if (std::strcmp(grain, "pod") != 0) {
    std::fprintf(stderr, "unknown --granularity %s (want pod|tor)\n", grain);
    std::exit(2);
  }
  return opt;
}

/// Runs the four paper variants over the given workload mix and prints the
/// p99.9 and median slowdown-vs-size tables plus the paper's headline ratio
/// (baseline tail / VAI-SF tail for >1 MB flows).
inline void run_fct_bench(const char* title,
                          const std::vector<workload::TrafficComponent>& mix,
                          const FctBenchOptions& opt) {
  const exp::Variant variants[] = {
      exp::Variant::kHpcc, exp::Variant::kHpccVaiSf, exp::Variant::kSwift,
      exp::Variant::kSwiftVaiSf};

  std::printf("=== %s ===\n", title);
  std::printf("topology: %s fat-tree, load %.0f%%, arrivals over %lld us",
              opt.full_scale ? "full-scale (320-host)" : "scaled (32-host)",
              opt.load * 100.0,
              static_cast<long long>(opt.duration / sim::kMicrosecond));
  if (opt.shards > 0) {
    std::printf(", %s-sharded (%d workers)",
                opt.granularity == topo::ShardGranularity::kTor ? "tor"
                                                                : "pod",
                opt.shards);
  }
  std::printf("\n");

  std::vector<std::vector<stats::FlowRecord>> all_flows;
  for (const exp::Variant v : variants) {
    exp::DatacenterConfig config;
    config.variant = v;
    config.topo = opt.full_scale ? topo::full_scale_fat_tree()
                                 : topo::scaled_fat_tree();
    config.components = mix;
    config.load = opt.load;
    config.generate_duration = opt.duration;
    config.seed = opt.seed;
    config.shard_granularity = opt.granularity;
    // --shards switches to the sharded epoch runner (grain per
    // --granularity, opt.shards worker threads).  Its flow population
    // matches the serial entry point seed-for-seed, but per-shard rng
    // streams mean individual FCTs differ slightly; within one invocation
    // all variants use the same runner, so the tables stay
    // apples-to-apples.
    const exp::DatacenterResult r = opt.shards > 0
                                        ? run_datacenter_sharded(config, opt.shards)
                                        : run_datacenter(config);
    std::printf("%-14s flows=%zu unfinished=%zu drops=%llu events=%llu\n",
                variant_name(v), r.flows.size(), r.unfinished,
                static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.events_executed));
    all_flows.push_back(r.flows);
  }

  for (const double pct : {99.9, 50.0}) {
    std::printf("\n-- %s FCT slowdown vs flow size (p%.1f) --\n", title, pct);
    std::printf("group_max_kb");
    for (const exp::Variant v : variants) std::printf(",%s", variant_name(v));
    std::printf("\n");
    std::vector<std::vector<stats::SlowdownRow>> tables;
    for (const auto& flows : all_flows) {
      tables.push_back(stats::slowdown_by_size(flows, opt.groups, pct));
    }
    const std::size_t rows = tables[0].size();
    for (std::size_t i = 0; i < rows; ++i) {
      std::printf("%.1f", static_cast<double>(tables[0][i].max_size_bytes) / 1000.0);
      for (const auto& table : tables) {
        if (i < table.size()) {
          std::printf(",%.2f", table[i].slowdown);
        } else {
          std::printf(",");
        }
      }
      std::printf("\n");
    }
  }

  // Headline claim: tail slowdown of long (>1 MB) flows, baseline vs VAI SF.
  std::printf("\n-- long-flow (>1MB) p99.9 slowdown --\n");
  double long_tail[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    stats::PercentileEstimator est;
    for (const auto& f : all_flows[i]) {
      if (f.size_bytes > 1'000'000) est.add(f.slowdown());
    }
    long_tail[i] = est.empty() ? -1.0 : est.p999();
    std::printf("%-14s %.2f (%zu long flows)\n", variant_name(variants[i]),
                long_tail[i], est.count());
  }
  if (long_tail[1] > 0 && long_tail[3] > 0) {
    std::printf("tail reduction: HPCC %.2fx, Swift %.2fx\n",
                long_tail[0] / long_tail[1], long_tail[2] / long_tail[3]);
  }
}

}  // namespace fastcc::bench
