// Figure 1 (a-d): Jain fairness index and bottleneck queue depth over time
// during a 16-to-1 staggered incast, for HPCC and Swift with their default,
// 1 Gbps-AI, and probabilistic-feedback baselines.
//
// Paper shape to reproduce: default HPCC/Swift take several hundred
// microseconds to approach a Jain index of 1; the 1 Gbps and probabilistic
// variants converge much faster but sustain larger queue oscillations.
//
// Flags: --senders N (default 16), --flow-kb N (default 1000), --seed N,
//        --series (also dump the full CSV series).
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const long long flow_kb = bench::flag_value(argc, argv, "--flow-kb", 1000);
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));
  const bool series = bench::has_flag(argc, argv, "--series");

  std::printf(
      "=== Figure 1: %d-1 incast fairness & queue depth (baselines) ===\n",
      senders);

  const exp::Variant variants[] = {
      exp::Variant::kHpcc,     exp::Variant::kHpcc1G,
      exp::Variant::kHpccProb, exp::Variant::kSwift,
      exp::Variant::kSwift1G,  exp::Variant::kSwiftProb,
  };

  std::vector<exp::IncastResult> results;
  for (const exp::Variant v : variants) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.pattern.flow_bytes = static_cast<std::uint64_t>(flow_kb) * 1000;
    config.star.host_count = senders + 1;
    config.seed = seed;
    results.push_back(run_incast(config));
    bench::print_incast_summary(results.back(), variant_name(v));
  }

  if (series) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("\n-- Jain index vs time_us: %s --\n",
                  variant_name(variants[i]));
      bench::print_series("time_us,jain", results[i].jain);
      std::printf("\n-- Queue depth (KB) vs time_us: %s --\n",
                  variant_name(variants[i]));
      bench::print_series("time_us,queue_kb", results[i].queue_bytes, 80,
                          1000.0);
    }
  }
  return 0;
}
