#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed BENCH_core.json.

Guards the perf trajectory in CI: a fresh run of the core microbenchmarks
must not regress events/sec by more than the threshold on any benchmark
that both files share.  Benchmarks present in only one file (renamed,
added, retired) are reported but never fail the gate, so adding a new
benchmark does not require regenerating the baseline in the same commit.

Usage:
    bench/compare_bench.py BASELINE.json FRESH.json [--threshold 0.15]
    bench/compare_bench.py --interleave BINARY --bench-a NAME --bench-b NAME
                           [--rounds 5] [--min-ratio 1.0]

File-comparison mode: both files use the schema emitted by
bench/run_core_bench.sh:
    {"benchmarks": [{"name": ..., "events_per_second": ...}, ...]}
FRESH.json may also be raw google-benchmark JSON ({"benchmarks":
[{"name": ..., "items_per_second": ...}]}); both spellings are accepted.
Records may carry optional perf-counter columns (a "perf" dict per
benchmark, attached by run_core_bench.sh when `perf stat -j` works).
Counters are reported informationally when both sides have them and warned
about when only one side does; they never gate — hosts without perf_event
access must still be able to run the comparison.

Interleaved A/B mode: instead of comparing two recorded files, launch the
given google-benchmark BINARY 2 x rounds times, alternating strictly
A, B, A, B, ... (one benchmark per process via --benchmark_filter), and
report the per-round rate ratio B/A plus its median.  Pairing adjacent
runs cancels the slow drifts (thermal throttling, frequency scaling,
noisy CI neighbors) that make two widely separated measurements
incomparable — each ratio compares runs seconds apart, and the median
discards outlier rounds entirely.  --min-ratio gates the median (exit 1
below it); without the flag the mode is purely informational.

Exit status: 0 on pass, 1 on regression beyond threshold (or median ratio
below --min-ratio), 2 on bad input.  Stdlib only — no third-party
dependencies.
"""

import argparse
import json
import re
import statistics
import subprocess
import sys


def load_rates(path):
    """Returns ({benchmark name: events/sec}, {name: perf-counter dict})."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rates = {}
    perf = {}
    for b in doc.get("benchmarks", []):
        rate = b.get("events_per_second", b.get("items_per_second"))
        name = b.get("name")
        # Skip aggregate rows (mean/median/stddev) and rate-less benchmarks.
        if name is None or rate is None or b.get("run_type") == "aggregate":
            continue
        rates[name] = float(rate)
        # Optional perf-counter columns (run_core_bench.sh attaches them only
        # when a working `perf` existed at record time).
        if isinstance(b.get("perf"), dict):
            perf[name] = b["perf"]
    if not rates:
        print(f"error: no benchmarks with rates in {path}", file=sys.stderr)
        sys.exit(2)
    return rates, perf


def report_perf_columns(shared, base_perf, fresh_perf):
    """Informational perf-counter comparison; never affects the exit code.

    The counter columns are optional by design — CI VMs and containers
    without perf_event access produce records without them — so a missing
    side warns rather than fails, and the gate stays a pure events/sec
    comparison either way.
    """
    if not base_perf and not fresh_perf:
        return
    if base_perf and not fresh_perf:
        print("warning: perf counters present in baseline only (no working "
              "perf on this host?); counter columns not compared")
        return
    if fresh_perf and not base_perf:
        print("warning: perf counters present in fresh run only (baseline "
              "predates the profiling harness?); counter columns not "
              "compared")
        return
    for name in shared:
        b, f = base_perf.get(name), fresh_perf.get(name)
        if not b or not f:
            continue
        cells = []
        for key, label in (("ipc", "ipc"),
                           ("llc_misses_per_kevent", "LLC-miss/kevt"),
                           ("branch_miss_rate", "br-miss-rate")):
            if b.get(key) is not None and f.get(key) is not None:
                cells.append(f"{label} {b[key]:.3g} -> {f[key]:.3g}")
        if cells:
            print(f"{'perf':>10}  {name}: {', '.join(cells)}")


def measure_once(binary, name):
    """Runs one benchmark in its own process; returns its events/sec.

    One process per measurement is the point: google-benchmark runs
    benchmarks of one process back-to-back, so in-process "interleaving"
    would still measure A entirely before B.  A fresh process per sample
    also resets allocator and cache state, so A and B start equal.
    """
    cmd = [binary, f"--benchmark_filter=^{re.escape(name)}$",
           "--benchmark_format=json"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError as e:
        print(f"error: cannot run {binary}: {e}", file=sys.stderr)
        sys.exit(2)
    if proc.returncode != 0:
        print(f"error: {binary} exited {proc.returncode} for {name}:\n"
              f"{proc.stderr}", file=sys.stderr)
        sys.exit(2)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"error: {binary} emitted malformed JSON for {name}: {e}",
              file=sys.stderr)
        sys.exit(2)
    rows = [b for b in doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate"
            and b.get("events_per_second", b.get("items_per_second"))
            is not None]
    exact = [b for b in rows if b.get("name") == name]
    if exact:
        rows = exact
    if len(rows) != 1:
        print(f"error: filter for {name!r} matched {len(rows)} benchmarks "
              f"in {binary} (need exactly 1)", file=sys.stderr)
        sys.exit(2)
    return float(rows[0].get("events_per_second",
                             rows[0].get("items_per_second")))


def run_interleaved(args):
    """Strict A, B, A, B process alternation; gates on the median ratio."""
    ratios = []
    for r in range(args.rounds):
        rate_a = measure_once(args.interleave, args.bench_a)
        rate_b = measure_once(args.interleave, args.bench_b)
        if rate_a <= 0.0:
            print(f"error: nonpositive rate {rate_a} for {args.bench_a}",
                  file=sys.stderr)
            return 2
        ratios.append(rate_b / rate_a)
        print(f"{'round':>10}  {r + 1}/{args.rounds}: "
              f"{args.bench_a} {rate_a:,.0f} ev/s, "
              f"{args.bench_b} {rate_b:,.0f} ev/s "
              f"(ratio {ratios[-1]:.3f})")

    med = statistics.median(ratios)
    print(f"\nmedian {args.bench_b} / {args.bench_a} rate ratio over "
          f"{args.rounds} paired round(s): {med:.3f}")
    if args.min_ratio is not None and med < args.min_ratio:
        print(f"FAIL: median ratio {med:.3f} below required "
              f"{args.min_ratio:.3f}", file=sys.stderr)
        return 1
    if args.min_ratio is not None:
        print(f"PASS: median ratio {med:.3f} >= {args.min_ratio:.3f}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?",
                        help="committed BENCH_core.json")
    parser.add_argument("fresh", nargs="?",
                        help="fresh run (run_core_bench.sh output "
                        "or raw google-benchmark JSON)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional events/sec drop "
                        "(default: 0.15)")
    parser.add_argument("--interleave", metavar="BINARY",
                        help="google-benchmark binary to launch in "
                        "alternating A/B rounds instead of comparing files")
    parser.add_argument("--bench-a", help="denominator benchmark name "
                        "(interleave mode)")
    parser.add_argument("--bench-b", help="numerator benchmark name "
                        "(interleave mode)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="paired A/B rounds in interleave mode "
                        "(default: 5)")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail (exit 1) when the median B/A ratio in "
                        "interleave mode falls below this")
    args = parser.parse_args()

    if args.interleave:
        if not args.bench_a or not args.bench_b:
            parser.error("--interleave requires --bench-a and --bench-b")
        if args.rounds < 1:
            parser.error("--rounds must be >= 1")
        return run_interleaved(args)
    if not args.baseline or not args.fresh:
        parser.error("baseline and fresh files are required "
                     "(or use --interleave)")

    base, base_perf = load_rates(args.baseline)
    fresh, fresh_perf = load_rates(args.fresh)
    shared = sorted(base.keys() & fresh.keys())
    if not shared:
        print("error: baseline and fresh run share no benchmark names",
              file=sys.stderr)
        return 2

    failures = []
    for name in shared:
        ratio = fresh[name] / base[name]
        verdict = "ok"
        if ratio < 1.0 - args.threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{verdict:>10}  {name}: {base[name]:,.0f} -> "
              f"{fresh[name]:,.0f} events/s ({ratio - 1.0:+.1%} vs baseline)")

    report_perf_columns(shared, base_perf, fresh_perf)

    for name in sorted(base.keys() - fresh.keys()):
        print(f"{'missing':>10}  {name}: in baseline only (not compared)")
    for name in sorted(fresh.keys() - base.keys()):
        print(f"{'new':>10}  {name}: in fresh run only (not compared)")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nPASS: {len(shared)} shared benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
