// Figures 8 and 9: start vs finish time in the 16-to-1 incast, default
// settings vs the VAI SF variants (HPCC in Fig. 8, Swift in Fig. 9).
//
// Paper shape to reproduce: with VAI SF the finish times bunch tightly
// together (the staggered-start inversion pattern of Figs. 2/3 disappears).
//
// Flags: --senders N, --flow-kb N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const long long flow_kb = bench::flag_value(argc, argv, "--flow-kb", 1000);
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf(
      "=== Figures 8 & 9: start vs finish, default vs VAI SF (%d-1) ===\n",
      senders);

  exp::IncastResult results[4];
  const exp::Variant variants[] = {
      exp::Variant::kHpcc, exp::Variant::kHpccVaiSf, exp::Variant::kSwift,
      exp::Variant::kSwiftVaiSf};
  for (int i = 0; i < 4; ++i) {
    exp::IncastConfig config;
    config.variant = variants[i];
    config.pattern.senders = senders;
    config.pattern.flow_bytes = static_cast<std::uint64_t>(flow_kb) * 1000;
    config.star.host_count = senders + 1;
    config.seed = seed;
    results[i] = run_incast(config);
  }

  std::printf("flow,start_us");
  for (const exp::Variant v : variants) std::printf(",%s_finish_us", variant_name(v));
  std::printf("\n");
  for (std::size_t f = 0; f < results[0].flows.size(); ++f) {
    std::printf("%u,%.1f", results[0].flows[f].id,
                static_cast<double>(results[0].flows[f].start) / 1e3);
    for (const auto& r : results) {
      std::printf(",%.1f", static_cast<double>(r.flows[f].finish) / 1e3);
    }
    std::printf("\n");
  }

  std::printf("\nfinish spread (us): ");
  for (int i = 0; i < 4; ++i) {
    std::printf("%s=%.1f  ", variant_name(variants[i]),
                static_cast<double>(results[i].finish_spread()) / 1e3);
  }
  std::printf("\nspread reduction: HPCC %.2fx, Swift %.2fx\n",
              static_cast<double>(results[0].finish_spread()) /
                  static_cast<double>(results[1].finish_spread()),
              static_cast<double>(results[2].finish_spread()) /
                  static_cast<double>(results[3].finish_spread()));
  return 0;
}
