// Google-benchmark microbenchmarks for the hot paths of the simulator and
// the measurement library: event scheduling/dispatch, Jain index, CDF
// sampling, percentile computation, fluid-model integration, and an
// end-to-end packets-per-second figure for the incast pipeline.
#include <benchmark/benchmark.h>

#include <functional>

#include "core/fairness.h"
#include "core/fluid_model.h"
#include "experiments/datacenter.h"
#include "experiments/incast.h"
#include "experiments/protocols.h"
#include "experiments/sharded.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/timing_wheel.h"
#include "stats/percentile.h"
#include "topo/star.h"
#include "workload/distributions.h"

namespace {

using namespace fastcc;

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 7919) % 100000, [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1024)->Arg(16384);

void BM_CalendarQueueScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::CalendarQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule((i * 7919) % 100000, [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CalendarQueueScheduleAndRun)->Arg(1024)->Arg(16384);

// Steady-state pattern closer to a running simulation: a rolling horizon of
// events, each pop scheduling a successor a short bounded time ahead.
template <typename Queue>
void rolling_horizon(benchmark::State& state) {
  const int population = 4096;
  for (auto _ : state) {
    Queue q;
    sim::Time now = 0;
    for (int i = 0; i < population; ++i) q.schedule(i % 500, [] {});
    for (int i = 0; i < 100'000; ++i) {
      now = q.pop_and_run();
      q.schedule(now + 80 + (i * 37) % 400, [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
void BM_EventQueueRollingHorizon(benchmark::State& state) {
  rolling_horizon<sim::EventQueue>(state);
}
void BM_CalendarQueueRollingHorizon(benchmark::State& state) {
  rolling_horizon<sim::CalendarQueue>(state);
}
BENCHMARK(BM_EventQueueRollingHorizon)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CalendarQueueRollingHorizon)->Unit(benchmark::kMillisecond);

// Rolling horizon with the simulator's *actual* hot closure shape: the
// packet lives in a pool slot and the callback carries only {pool pointer,
// 4-byte handle, context pointer}, exactly what Port::start_tx schedules.
// This is the workload the zero-copy pipeline targets: the event slot holds
// 24 bytes instead of a ~330-byte Packet with its INT stack.
template <typename Queue>
void rolling_horizon_packet(benchmark::State& state) {
  const int population = 4096;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    Queue q;
    sim::Time now = 0;
    net::PacketPool pool;
    const net::PacketRef ref = pool.alloc();
    net::init_data(pool.get(ref), /*flow=*/1, /*src=*/0, /*dst=*/1,
                   /*seq=*/0, /*payload=*/1000, /*now=*/0);
    pool.get(ref).int_count = net::kMaxHops;  // full INT stack in the slot
    net::PacketPool* pp = &pool;
    std::uint64_t* out = &sink;
    auto hop = [pp, ref, out] {
      const net::Packet& p = pp->get(ref);
      *out += p.seq + p.wire_bytes;
    };
    static_assert(sizeof(hop) <= 24, "per-hop closure must be handle-sized");
    for (int i = 0; i < population; ++i) q.schedule(i % 500, hop);
    for (int i = 0; i < 100'000; ++i) {
      now = q.pop_and_run();
      pool.get(ref).seq += 1000;
      q.schedule(now + 80 + (i * 37) % 400, hop);
    }
    while (!q.empty()) q.pop_and_run();
    pool.release(ref);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 100'000);
}
void BM_EventQueueRollingHorizonPacket(benchmark::State& state) {
  rolling_horizon_packet<sim::EventQueue>(state);
}
void BM_CalendarQueueRollingHorizonPacket(benchmark::State& state) {
  rolling_horizon_packet<sim::CalendarQueue>(state);
}
BENCHMARK(BM_EventQueueRollingHorizonPacket)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CalendarQueueRollingHorizonPacket)->Unit(benchmark::kMillisecond);

// Cancel-heavy retransmit-timer pattern: every "ACK" event cancels the
// flow's pending RTO timer and re-arms it further out, exactly what
// Host::handle_ack does per flow completion.  Stresses the cancellation
// bookkeeping (formerly a hash set per schedule/pop, now a generation-
// stamped slot table) and the lazy reclamation of tombstoned entries.
template <typename Queue>
void cancel_heavy(benchmark::State& state) {
  const int flows = 256;
  for (auto _ : state) {
    Queue q;
    std::vector<std::uint64_t> rto_timer(flows);
    sim::Time now = 0;
    for (int f = 0; f < flows; ++f) {
      q.schedule(f % 100, [] {});                       // first "ACK"
      rto_timer[f] = q.schedule(10'000 + f, [] {});     // pending RTO
    }
    int flow = 0;
    for (int i = 0; i < 100'000; ++i) {
      now = q.pop_and_run();
      q.cancel(rto_timer[flow]);
      rto_timer[flow] = q.schedule(now + 10'000, [] {});  // re-armed RTO
      q.schedule(now + 80 + (i * 37) % 400, [] {});       // next ACK
      flow = (flow + 1) % flows;
    }
    for (int f = 0; f < flows; ++f) q.cancel(rto_timer[f]);
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  cancel_heavy<sim::EventQueue>(state);
}
void BM_CalendarQueueCancelHeavy(benchmark::State& state) {
  cancel_heavy<sim::CalendarQueue>(state);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CalendarQueueCancelHeavy)->Unit(benchmark::kMillisecond);

void BM_SimulatorSelfRescheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.after(10, [&] { tick(); });
    };
    s.after(10, [&] { tick(); });
    s.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorSelfRescheduling)->Arg(10000);

void BM_JainIndex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  std::vector<double> rates(n);
  for (double& r : rates) r = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::jain_index(rates));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JainIndex)->Arg(16)->Arg(1024);

void BM_CdfSample(benchmark::State& state) {
  sim::Rng rng(2);
  const workload::Cdf& cdf = workload::hadoop_cdf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CdfSample);

void BM_Percentile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(3);
  std::vector<double> values(n);
  for (double& v : values) v = rng.uniform(1.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::percentile(values, 99.9));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Percentile)->Arg(10000);

void BM_FluidModelRk4(benchmark::State& state) {
  core::FluidModelParams p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::integrate_rk4(sim::gbps(100), 100'000, 10.0, p));
  }
}
BENCHMARK(BM_FluidModelRk4);

/// End-to-end figure: full N-to-1 incast (HPCC VAI SF), reported as simulated
/// events per second through the entire packet pipeline.
void BM_IncastEndToEnd(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::IncastConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.pattern.senders = senders;
    config.pattern.flow_bytes = 100'000;
    config.star.host_count = senders + 1;
    const exp::IncastResult r = run_incast(config);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.completion_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_IncastEndToEnd)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

/// End-to-end figure over the multi-hop topology: Poisson CDF-driven traffic
/// on the scaled fat-tree (the Figure 10 shape at CI size), reported as
/// simulated events per second.  Exercises every layer the zero-copy
/// pipeline touches: pooled packets crossing 6 links, ECMP switch
/// forwarding, fused per-hop delivery events, PFC/INT bookkeeping, and the
/// ACK reverse path.
void BM_FatTreeEndToEnd(benchmark::State& state) {
  const double load = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::DatacenterConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.topo = topo::scaled_fat_tree();
    config.components = {{&workload::hadoop_cdf(), 1.0}};
    config.load = load;
    config.generate_duration = 200 * sim::kMicrosecond;
    const exp::DatacenterResult r = run_datacenter(config);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.flows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FatTreeEndToEnd)->Arg(50)->Unit(benchmark::kMillisecond);

/// Space-parallel execution of one simulation: the 8-pod / 64-host tree
/// sharded by pod, run under the conservative epoch loop with the given
/// worker count (Arg).  Arg(1) is the serial-coordinator baseline and
/// Arg(8) the full-width A/B — identical work by construction (results are
/// byte-identical across worker counts), so the ratio of the two rows is
/// pure parallel speedup.  On a single-core host the two rows tie (threads
/// time-slice one core); the row pair is kept so multi-core hosts expose
/// the scaling without a bench change.
void BM_FatTreeFullScale(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::DatacenterConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.topo = topo::sharded_scaled_fat_tree();
    config.components = {{&workload::hadoop_cdf(), 1.0}};
    config.load = 0.5;
    config.generate_duration = 200 * sim::kMicrosecond;
    const exp::DatacenterResult r = run_datacenter_sharded(config, workers);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.flows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
// UseRealTime: with 8 workers the default CPU-time metric counts only the
// calling thread and would overstate throughput ~8x; wall clock is the
// honest figure for a parallel run.
BENCHMARK(BM_FatTreeFullScale)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Rack-grain variant of the same run: 16 shards over the same 8-pod tree,
/// so the Arg(16) row exercises worker counts past the pod count and the
/// adaptive-horizon planner at twice the boundary surface.  A separate
/// benchmark (not more Args on BM_FatTreeFullScale) so the committed
/// BENCH_core.json baseline keeps gating the pod rows unchanged; new names
/// are reported but never gated by compare_bench.py.
void BM_FatTreeFullScaleTor(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::DatacenterConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.topo = topo::sharded_scaled_fat_tree();
    config.components = {{&workload::hadoop_cdf(), 1.0}};
    config.load = 0.5;
    config.generate_duration = 200 * sim::kMicrosecond;
    config.shard_granularity = topo::ShardGranularity::kTor;
    const exp::DatacenterResult r = run_datacenter_sharded(config, workers);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.flows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FatTreeFullScaleTor)
    ->Arg(1)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The per-host timer subsystem in isolation: a pacing-style chain (arm,
/// fire, re-arm at a few-hundred-ns gap) running next to a far RTO that is
/// repeatedly cancelled and re-armed — the exact mix Host generates per
/// flow.  Items = timer firings.
void BM_TimingWheel(benchmark::State& state) {
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::TimingWheel wheel;
    std::uint64_t local = 0;
    constexpr sim::Time kGap = 300;
    constexpr int kFirings = 4096;
    std::function<void()> pace = [&] {
      ++local;
      if (local < kFirings) wheel.arm(wheel.now() + kGap, [&] { pace(); });
    };
    wheel.arm(kGap, [&] { pace(); });
    sim::TimerId rto = wheel.arm(1 * sim::kMillisecond, [] {});
    int since_rearm = 0;
    while (!wheel.empty()) {
      wheel.advance(wheel.next_deadline());
      // Re-arm the RTO every 16 pacing ticks, as ACK arrivals would.
      if (++since_rearm == 16 && local < kFirings) {
        since_rearm = 0;
        wheel.cancel(rto);
        rto = wheel.arm(wheel.now() + 1 * sim::kMillisecond, [] {});
      }
    }
    fired += local;
    benchmark::DoNotOptimize(wheel.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_TimingWheel)->Unit(benchmark::kMicrosecond);

/// Large-fan-in stress: 256 senders through one bottleneck.  256 concurrent
/// flows put ~256 pacing timers plus RTOs on one receiver-side ACK path and
/// make the per-ACK flow lookup genuinely contended — the scale where the
/// timing wheel, NIC arbiter, and static CC dispatch must hold up, not just
/// the 8/16-sender shapes above.
void BM_Incast256(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::IncastConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.pattern.senders = 256;
    config.pattern.flow_bytes = 20'000;
    config.star.host_count = 257;
    const exp::IncastResult r = run_incast(config);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.completion_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Incast256)->Unit(benchmark::kMillisecond);

/// The batched-ACK hot path in isolation: one host sources 64 concurrent
/// flows fanned out to 64 receivers over a star, so every returning ACK
/// stream converges on the single sender-side link and arrives as dense
/// multi-flow deliver_batch chains.  This is the worst case for the
/// per-batch flow dedup and the one-CC/arbiter-pass-per-flow coalescing —
/// the slab's ACK storm shape, where per-packet work must stay on hot
/// lanes.  Items = simulator events.
void BM_AckBatchDrain(benchmark::State& state) {
  constexpr int kFlows = 64;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network network(simulator);
    topo::StarParams params;
    params.host_count = kFlows + 1;
    topo::Star star = build_star(network, params);
    net::Host* src = star.hosts.front();
    exp::CcFactory factory(network, exp::Variant::kHpccVaiSf,
                           /*small_topology=*/true);
    int done = 0;
    src->set_completion_callback([&done](const net::FlowTx&) { ++done; });
    for (int i = 0; i < kFlows; ++i) {
      net::Host* dst = star.hosts[1 + i];
      const net::PathInfo& path = network.path(src->id(), dst->id());
      net::FlowTx flow;
      flow.spec.id = static_cast<net::FlowId>(i + 1);
      flow.spec.src = src->id();
      flow.spec.dst = dst->id();
      flow.spec.size_bytes = 100'000;
      flow.line_rate = src->port(0).bandwidth();
      flow.base_rtt = path.base_rtt;
      flow.path_hops = path.hops;
      flow.cc = factory.make(path);
      src->start_flow(std::move(flow));
    }
    simulator.run(50 * sim::kMillisecond);
    assert(done == kFlows);
    benchmark::DoNotOptimize(done);
    events += simulator.events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_AckBatchDrain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
