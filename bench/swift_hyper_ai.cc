// Future-work experiment (Section VI-B): the paper observes Swift's single
// constant AI makes median FCT recover slowly in the Hadoop workload
// (Figure 12) and suggests "a hyper additive increase setting like in
// Timely".  This bench implements that suggestion and measures it: Hadoop
// traffic on the fat-tree, Swift vs Swift+HyperAI vs Swift VAI SF, reporting
// the median and long-flow-tail slowdowns.
//
// Flags: --duration-us N (default 1500), --load-pct N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/datacenter.h"
#include "stats/percentile.h"
#include "workload/distributions.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const sim::Time duration =
      bench::flag_value(argc, argv, "--duration-us", 1500) * sim::kMicrosecond;
  const double load =
      static_cast<double>(bench::flag_value(argc, argv, "--load-pct", 50)) / 100.0;
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Future work: Swift hyper-AI on Hadoop traffic ===\n");
  std::printf("%-16s %12s %14s %14s %14s\n", "variant", "flows",
              "median slow", "p99 slow", "long p99.9");

  for (const exp::Variant v :
       {exp::Variant::kSwift, exp::Variant::kSwiftHai,
        exp::Variant::kSwiftVaiSf}) {
    exp::DatacenterConfig config;
    config.variant = v;
    config.components = {{&workload::hadoop_cdf(), 1.0}};
    config.load = load;
    config.generate_duration = duration;
    config.seed = seed;
    const exp::DatacenterResult r = run_datacenter(config);

    stats::PercentileEstimator all, long_flows;
    for (const auto& f : r.flows) {
      all.add(f.slowdown());
      if (f.size_bytes > 1'000'000) long_flows.add(f.slowdown());
    }
    std::printf("%-16s %12zu %14.2f %14.2f %14.2f\n", variant_name(v),
                r.flows.size(), all.median(), all.percentile(99.0),
                long_flows.empty() ? -1.0 : long_flows.p999());
  }
  std::printf(
      "\nexpectation: HyperAI trims the median/99p of mid-size flows (the\n"
      "Figure 12 gap) but does not by itself fix the long-flow tail —\n"
      "that still needs the paper's fairness mechanisms.\n");
  return 0;
}
