// Ablation: the Variable-AI dampener (Algorithm 1's feedback breaker).
//
// Sweeps the dampener constant (higher = weaker damping) plus a disabled
// configuration on the 96-to-1 incast, where the paper says the dampener
// matters most ("in the case with many concurrent senders, dampener
// increases quickly so the elevated AI creates less congestion").  Expected
// shape: weak/no damping converges fastest but sustains visibly larger
// queues; the paper's constant (8) balances the two.
//
// Flags: --senders N (default 96), --seed N.
#include <cstdio>

#include "bench_util.h"
#include "cc/hpcc.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 96));
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Ablation: VAI dampener constant, HPCC VAI SF, %d-1 ===\n",
              senders);

  struct Setting {
    const char* label;
    double dampener_constant;
    bool dampener_off;
  };
  const Setting settings[] = {
      {"dampener_c=2 (strong)", 2.0, false},
      {"dampener_c=8 (paper)", 8.0, false},
      {"dampener_c=32 (weak)", 32.0, false},
      {"dampener off", 0.0, true},
  };

  for (const Setting& s : settings) {
    exp::IncastConfig config;
    config.variant = exp::Variant::kHpccVaiSf;  // labelling + defaults
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    config.custom_cc = [&s](const net::PathInfo& path) {
      cc::HpccParams p;
      p.sampling_freq = exp::CcFactory::kPaperSamplingFreq;
      p.vai = cc::hpcc_paper_vai(path.bottleneck *
                                 static_cast<double>(path.base_rtt));
      if (s.dampener_off) {
        // An enormous constant makes the divisor ~1: damping disabled.
        p.vai.dampener_constant = 1e12;
      } else {
        p.vai.dampener_constant = s.dampener_constant;
      }
      return cc::Hpcc(p);
    };
    bench::print_incast_summary(run_incast(config), s.label);
  }
  return 0;
}
