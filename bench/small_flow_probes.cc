// Small-flow impact check: the abstract promises the mechanisms reduce long
// flow tails "without compromising small flow performance".  Injects short
// probe flows (default 2 KB every 50 us) into the 16-1 long-flow incast and
// reports probe FCT percentiles per variant — they should be indistinguish-
// able between default and VAI SF (and track the queue each variant holds).
//
// Flags: --senders N, --probes N, --probe-kb N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"
#include "stats/percentile.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const int probes = static_cast<int>(bench::flag_value(argc, argv, "--probes", 25));
  const long long probe_kb = bench::flag_value(argc, argv, "--probe-kb", 2);
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf(
      "=== Small-flow probes during %d-1 incast (%lld KB every 50 us) ===\n",
      senders, probe_kb);
  std::printf("%-22s %14s %14s %14s %16s\n", "variant", "probe p50 us",
              "probe p99 us", "probe max us", "long spread us");

  for (const exp::Variant v :
       {exp::Variant::kHpcc, exp::Variant::kHpcc1G, exp::Variant::kHpccVaiSf,
        exp::Variant::kSwift, exp::Variant::kSwift1G,
        exp::Variant::kSwiftVaiSf}) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.probe_count = probes;
    config.probe_bytes = static_cast<std::uint64_t>(probe_kb) * 1000;
    config.seed = seed;
    const exp::IncastResult r = run_incast(config);

    stats::PercentileEstimator est;
    for (const auto& p : r.probes) est.add(static_cast<double>(p.fct()));
    std::printf("%-22s %14.1f %14.1f %14.1f %16.1f\n", variant_name(v),
                est.median() / 1e3, est.percentile(99.0) / 1e3,
                est.max() / 1e3,
                static_cast<double>(r.finish_spread()) / 1e3);
  }
  return 0;
}
