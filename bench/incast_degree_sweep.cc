// Incast-degree scaling: the paper demonstrates its mechanisms at 16-1 and
// 96-1 ("the same trends continue when we scale the incast").  This bench
// fills in the curve: convergence debt and finish spread as a function of
// the incast degree, default vs VAI SF, for both protocols.
//
// Expected shape: the default protocols' spread grows roughly linearly with
// degree (every join re-starves the incumbents), while VAI SF holds the
// spread to a small fraction of it at every degree.
//
// Flags: --seed N, --flow-kb N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/parallel.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));
  const long long flow_kb = bench::flag_value(argc, argv, "--flow-kb", 1000);

  const int degrees[] = {4, 8, 16, 32, 64, 96};
  const exp::Variant variants[] = {
      exp::Variant::kHpcc, exp::Variant::kHpccVaiSf, exp::Variant::kSwift,
      exp::Variant::kSwiftVaiSf};

  std::printf("=== Incast degree sweep (%lld KB flows) ===\n", flow_kb);
  std::printf("degree");
  for (const exp::Variant v : variants) {
    std::printf(",%s spread_us,%s debt_us", variant_name(v), variant_name(v));
  }
  std::printf("\n");

  for (const int n : degrees) {
    std::vector<exp::IncastConfig> configs;
    for (const exp::Variant v : variants) {
      exp::IncastConfig c;
      c.variant = v;
      c.pattern.senders = n;
      c.pattern.flow_bytes = static_cast<std::uint64_t>(flow_kb) * 1000;
      c.star.host_count = n + 1;
      c.seed = seed;
      configs.push_back(c);
    }
    const auto results = run_incast_parallel(configs);
    std::printf("%d", n);
    for (const auto& r : results) {
      std::printf(",%.1f,%.1f", static_cast<double>(r.finish_spread()) / 1e3,
                  r.convergence(0.9).unfairness_integral_ns / 1e3);
    }
    std::printf("\n");
  }
  return 0;
}
