#!/usr/bin/env python3
"""Unit tests for bench/compare_bench.py — the CI perf-regression gate.

The gate's failure modes are exactly the ones a test must pin down: a
regression beyond threshold must exit 1, a new/renamed benchmark must warn
but NOT fail (so adding a benchmark doesn't force a baseline regen in the
same commit), and malformed input must exit 2 rather than silently pass.

Runs the script as a subprocess — the same way CI invokes it — against
temp JSON files.  Stdlib only; executed under ctest as compare_bench_unit.
Usage: python3 bench/test_compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def bench_doc(rates, rate_key="events_per_second", extra_rows=()):
    doc = {"benchmarks": [{"name": n, rate_key: r} for n, r in rates.items()]}
    doc["benchmarks"].extend(extra_rows)
    return doc


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="compare_bench_test_")
        self.addCleanup(self._tmp.cleanup)

    def write_json(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_compare(self, baseline, fresh, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, baseline, fresh, *extra],
            capture_output=True, text=True)

    def test_identical_runs_pass(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 1e6}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("PASS", res.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        # 20% drop against the default 15% threshold.
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 8e5}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 1)
        self.assertIn("REGRESSION", res.stdout)
        self.assertIn("dispatch", res.stderr)

    def test_drop_within_threshold_passes(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 9e5}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_threshold_flag_tightens_the_gate(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 9e5}))
        res = self.run_compare(base, fresh, "--threshold", "0.05")
        self.assertEqual(res.returncode, 1)

    def test_new_benchmark_warns_but_does_not_fail(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json(
            "fresh.json", bench_doc({"dispatch": 1e6, "pfc_storm": 5e5}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("new", res.stdout)
        self.assertIn("pfc_storm", res.stdout)

    def test_retired_benchmark_warns_but_does_not_fail(self):
        base = self.write_json(
            "base.json", bench_doc({"dispatch": 1e6, "legacy": 2e6}))
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 1e6}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("missing", res.stdout)

    def test_google_benchmark_items_per_second_accepted(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json(
            "fresh.json", bench_doc({"dispatch": 1e6},
                                    rate_key="items_per_second"))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)

    def test_aggregate_rows_skipped(self):
        # mean/median/stddev rows must not be compared as benchmarks: the
        # stddev row would otherwise read as a catastrophic regression.
        agg = [{"name": "dispatch_stddev", "run_type": "aggregate",
                "events_per_second": 1e3}]
        base = self.write_json(
            "base.json", bench_doc({"dispatch": 1e6}, extra_rows=agg))
        fresh = self.write_json(
            "fresh.json", bench_doc({"dispatch": 1e6}, extra_rows=agg))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertNotIn("dispatch_stddev", res.stdout)

    def test_perf_columns_on_one_side_warn_but_pass(self):
        # A baseline recorded on a perf-capable host must still gate a fresh
        # run from a CI VM without perf_event access: warn, never fail.
        base_doc = bench_doc({"dispatch": 1e6})
        base_doc["benchmarks"][0]["perf"] = {
            "instructions": 1e9, "cycles": 2e9, "ipc": 0.5,
            "llc_misses_per_kevent": 12.0, "branch_miss_rate": 0.001}
        base = self.write_json("base.json", base_doc)
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 1e6}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("warning", res.stdout)
        self.assertIn("counter columns not compared", res.stdout)
        self.assertIn("PASS", res.stdout)

    def test_perf_columns_on_both_sides_reported_not_gated(self):
        # Counters on both sides are shown for attribution, but even a large
        # IPC drop must not fail the gate — only events/sec gates.
        def doc(ipc):
            d = bench_doc({"dispatch": 1e6})
            d["benchmarks"][0]["perf"] = {
                "instructions": 1e9, "cycles": 1e9 / ipc, "ipc": ipc,
                "llc_misses_per_kevent": 12.0, "branch_miss_rate": 0.001}
            return d
        base = self.write_json("base.json", doc(2.0))
        fresh = self.write_json("fresh.json", doc(0.5))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("perf", res.stdout)
        self.assertIn("ipc 2 -> 0.5", res.stdout)
        self.assertNotIn("warning", res.stdout)

    def test_no_perf_columns_anywhere_stays_silent(self):
        # The pre-harness schema (no "perf" keys at all) must not trigger
        # the missing-counters warning.
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", bench_doc({"dispatch": 1e6}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertNotIn("warning", res.stdout)

    def test_malformed_json_exits_2(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", "{not valid json")
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 2)
        self.assertIn("error", res.stderr)

    def test_missing_file_exits_2(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        res = self.run_compare(base, os.path.join(self._tmp.name, "nope.json"))
        self.assertEqual(res.returncode, 2)

    def test_empty_benchmark_list_exits_2(self):
        base = self.write_json("base.json", bench_doc({"dispatch": 1e6}))
        fresh = self.write_json("fresh.json", {"benchmarks": []})
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 2)

    def test_disjoint_benchmark_sets_exit_2(self):
        base = self.write_json("base.json", bench_doc({"old_name": 1e6}))
        fresh = self.write_json("fresh.json", bench_doc({"new_name": 1e6}))
        res = self.run_compare(base, fresh)
        self.assertEqual(res.returncode, 2)
        self.assertIn("share no benchmark", res.stderr)


# A stand-in google-benchmark binary for interleave-mode tests: honors
# --benchmark_filter / --benchmark_format=json, logs every invocation (so a
# test can assert the strict A, B, A, B process order), and serves rates
# from a config file — per-call lists let a test simulate drift or an
# outlier round.
FAKE_BENCH = r'''#!/usr/bin/env python3
import json, os, sys
cfg = json.load(open(os.environ["FAKE_BENCH_CFG"]))
if cfg.get("garbage"):
    print("this is not benchmark json")
    sys.exit(0)
filt = next(a.split("=", 1)[1] for a in sys.argv[1:]
            if a.startswith("--benchmark_filter="))
name = filt[1:-1].replace("\\", "")  # strip ^...$ and regex escaping
prior = []
if os.path.exists(cfg["log"]):
    with open(cfg["log"]) as f:
        prior = f.read().split()
with open(cfg["log"], "a") as f:
    f.write(name + "\n")
rates = cfg["rates"].get(name)
if rates is None:
    print(json.dumps({"benchmarks": []}))
    sys.exit(0)
if isinstance(rates, list):
    call = prior.count(name)
    rates = rates[min(call, len(rates) - 1)]
print(json.dumps({"benchmarks": [
    {"name": name, "run_type": "iteration", "events_per_second": rates}]}))
'''


class InterleaveModeTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="interleave_test_")
        self.addCleanup(self._tmp.cleanup)
        self.binary = os.path.join(self._tmp.name, "fake_bench")
        with open(self.binary, "w", encoding="utf-8") as f:
            f.write(FAKE_BENCH)
        os.chmod(self.binary, 0o755)
        self.log = os.path.join(self._tmp.name, "calls.log")
        self.cfg = os.path.join(self._tmp.name, "cfg.json")

    def configure(self, rates, garbage=False):
        with open(self.cfg, "w", encoding="utf-8") as f:
            json.dump({"rates": rates, "log": self.log, "garbage": garbage}, f)

    def run_interleave(self, *extra):
        env = dict(os.environ, FAKE_BENCH_CFG=self.cfg)
        return subprocess.run(
            [sys.executable, SCRIPT, "--interleave", self.binary,
             "--bench-a", "BM_A/8", "--bench-b", "BM_B/8", *extra],
            capture_output=True, text=True, env=env)

    def calls(self):
        with open(self.log, encoding="utf-8") as f:
            return f.read().split()

    def test_strict_alternation_and_median(self):
        # Per-round ratios 2.5, 2.4, 2.6: median must be 2.5, and the
        # process order must be A, B, A, B, A, B — adjacent pairing is the
        # whole drift-cancellation argument.
        self.configure({"BM_A/8": 1e6, "BM_B/8": [2.5e6, 2.4e6, 2.6e6]})
        res = self.run_interleave("--rounds", "3")
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("median", res.stdout)
        self.assertIn("2.500", res.stdout)
        self.assertEqual(self.calls(),
                         ["BM_A/8", "BM_B/8"] * 3)

    def test_median_discards_outlier_round(self):
        # One round hit by a noisy neighbor (ratio 0.1) must not drag the
        # verdict down: the median of {2.5, 0.1, 2.5} is 2.5.
        self.configure({"BM_A/8": 1e6, "BM_B/8": [2.5e6, 1e5, 2.5e6]})
        res = self.run_interleave("--rounds", "3", "--min-ratio", "2.0")
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertIn("PASS", res.stdout)

    def test_min_ratio_gate_fails(self):
        self.configure({"BM_A/8": 1e6, "BM_B/8": 1e6})
        res = self.run_interleave("--rounds", "3", "--min-ratio", "2.5")
        self.assertEqual(res.returncode, 1)
        self.assertIn("FAIL", res.stderr)

    def test_without_min_ratio_is_informational(self):
        self.configure({"BM_A/8": 1e6, "BM_B/8": 1e5})
        res = self.run_interleave("--rounds", "1")
        self.assertEqual(res.returncode, 0, res.stderr)
        self.assertNotIn("PASS", res.stdout)  # no gate, no verdict

    def test_missing_benchmark_exits_2(self):
        self.configure({"BM_A/8": 1e6})  # BM_B/8 unknown to the binary
        res = self.run_interleave("--rounds", "1")
        self.assertEqual(res.returncode, 2)
        self.assertIn("matched 0", res.stderr)

    def test_malformed_benchmark_output_exits_2(self):
        self.configure({}, garbage=True)
        res = self.run_interleave("--rounds", "1")
        self.assertEqual(res.returncode, 2)
        self.assertIn("malformed", res.stderr)

    def test_interleave_requires_bench_names(self):
        env = dict(os.environ, FAKE_BENCH_CFG=self.cfg)
        res = subprocess.run(
            [sys.executable, SCRIPT, "--interleave", self.binary],
            capture_output=True, text=True, env=env)
        self.assertEqual(res.returncode, 2)
        self.assertIn("--bench-a", res.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
