#!/usr/bin/env bash
# Runs the core microbenchmarks and emits BENCH_core.json: git revision plus
# events/sec and ns/event per benchmark, so successive PRs accumulate a perf
# trajectory.  Usage:
#
#   bench/run_core_bench.sh [build_dir] [out.json]
#
# Defaults: build_dir=build, out=BENCH_core.json (repo root).  Requires jq.
#
# Each benchmark runs 3 repetitions and the record keeps the best rep
# (highest events/sec).  items_per_second is wall-clock-based, and on the
# shared/virtualized hosts this runs on, wall time absorbs hypervisor steal
# the guest cannot see — a single shot measures the neighbours as much as
# the code.  Best-of-N is the standard noise-robust throughput estimator;
# it applies identically to the committed record and to CI's fresh side of
# compare_bench.py, so comparisons stay symmetric.  (For optimization work,
# prefer interleaved A/B runs within one session over record deltas.)
#
# Attributed profiling: when a working `perf` is on PATH, the suite run is
# wrapped in `perf stat -j` (instructions, cycles, LLC-misses,
# branch-misses) and a short second pass re-runs each benchmark alone under
# perf, attaching per-benchmark counter columns (ipc, instructions/event,
# LLC-misses per kilo-event, branch-miss rate) to its record.  The
# normalization divides whole-process counters by the events the measured
# loop executed, so per-event figures include benchmark setup and binary
# startup — a small, documented dilution, fine for attributing a win to
# cache behavior vs. instruction count.  Without perf (CI VMs, containers
# without perf_event access) the script emits the identical schema minus
# the counter columns and stamps perf_source: "unavailable";
# compare_bench.py warns-but-passes on the missing columns.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
OUT=${2:-BENCH_core.json}
BIN="$BUILD_DIR/bench/microbench_core"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 1; }

PERF_EVENTS='instructions,cycles,LLC-misses,branch-misses'
PERF_OK=0
if [[ ${FASTCC_NO_PERF:-0} == 1 ]]; then
  # Forced fallback (CI smoke-tests the counter-less path deterministically,
  # independent of whatever perf the runner image happens to ship).
  echo "note: FASTCC_NO_PERF=1 — skipping perf counters" >&2
elif command -v perf >/dev/null 2>&1 &&
    perf stat -j -e "$PERF_EVENTS" -o /dev/null -- true >/dev/null 2>&1; then
  PERF_OK=1
else
  echo "note: perf unavailable (not installed, or perf_event_paranoid/" >&2
  echo "      container policy denies counters); emitting records without" >&2
  echo "      perf-counter columns" >&2
fi

GIT_REV=$(git rev-parse HEAD 2>/dev/null || echo unknown)
RAW=$(mktemp)
PERF_RAW=$(mktemp)
trap 'rm -f "$RAW" "$PERF_RAW"' EXIT

# Wraps a command in `perf stat -j` writing counters to $1 when perf works;
# otherwise truncates $1 and runs the command bare.
perf_wrap() {
  local pfile=$1
  shift
  if [[ $PERF_OK == 1 ]]; then
    perf stat -j -e "$PERF_EVENTS" -o "$pfile" -- "$@"
  else
    : >"$pfile"
    "$@"
  fi
}

# Converts one `perf stat -j` output file (JSON lines, one counter per line)
# into a compact {instructions, cycles, llc_misses, branch_misses, ipc,
# branch_miss_rate} object on stdout, or `null` when the file is empty or a
# counter came back "<not supported>" on this machine.
perf_to_obj() {
  local pfile=$1
  if [[ ! -s "$pfile" ]]; then
    echo null
    return
  fi
  grep '^{' "$pfile" | jq -s '
    map(select(.event != null)
        | {key: (.event | sub(":[uk]+$"; "") | ascii_downcase
                 | gsub("-"; "_")),
           value: (."counter-value" | try tonumber catch null)})
    | from_entries
    | {instructions, cycles,
       llc_misses: .llc_misses, branch_misses: .branch_misses}
    | . + {ipc: (if (.cycles // 0) > 0 and .instructions != null
                 then .instructions / .cycles else null end),
           branch_miss_rate:
             (if (.instructions // 0) > 0 and .branch_misses != null
              then .branch_misses / .instructions else null end)}
  ' 2>/dev/null || echo null
}

perf_wrap "$PERF_RAW" "$BIN" \
  --benchmark_filter='RollingHorizon|CancelHeavy|ScheduleAndRun|SelfRescheduling|IncastEndToEnd|FatTreeEndToEnd|FatTreeFullScale|TimingWheel|Incast256|AckBatchDrain' \
  --benchmark_repetitions=3 \
  --benchmark_format=json >"$RAW"

SUITE_PERF=$(perf_to_obj "$PERF_RAW")
PERF_SOURCE=unavailable
[[ $PERF_OK == 1 ]] && PERF_SOURCE='perf stat -j'

jq --arg rev "$GIT_REV" --arg psrc "$PERF_SOURCE" \
   --argjson suite_perf "$SUITE_PERF" '{
  git_rev: $rev,
  date: .context.date,
  host: .context.host_name,
  perf_source: $psrc,
  suite_perf_counters: $suite_perf,
  benchmarks: ([.benchmarks[] | select((.run_type // "iteration") == "iteration")]
    | group_by(.run_name // .name)
    | map(max_by(.items_per_second // 0))
    | map({
        name: (.run_name // .name),
        events_per_second: (.items_per_second // null),
        ns_per_event: (if .items_per_second then (1e9 / .items_per_second) else null end),
        real_time, cpu_time, time_unit
      }))
}' "$RAW" >"$OUT"

# Attribution pass: one short perf-wrapped run per benchmark, so counters
# can be pinned to a single workload instead of the whole suite.  Skipped
# entirely without perf — the timing records above are already complete.
if [[ $PERF_OK == 1 ]]; then
  ATTR_RAW=$(mktemp)
  ATTR_PERF=$(mktemp)
  trap 'rm -f "$RAW" "$PERF_RAW" "$ATTR_RAW" "$ATTR_PERF"' EXIT
  while IFS= read -r name; do
    # Anchor the filter so BM_Foo does not also re-run BM_Foo/50 variants.
    if ! perf_wrap "$ATTR_PERF" "$BIN" \
        --benchmark_filter="^$(printf '%s' "$name" | sed 's/[][\.|$(){}?+*^/]/\\&/g')\$" \
        --benchmark_min_time=0.5 \
        --benchmark_format=json >"$ATTR_RAW" 2>/dev/null; then
      echo "warning: attribution run failed for $name; leaving its perf column null" >&2
      continue
    fi
    BENCH_PERF=$(perf_to_obj "$ATTR_PERF")
    [[ "$BENCH_PERF" == null ]] && continue
    # Events the measured loop executed: items/sec x per-iteration wall
    # seconds x iterations.  real_time is per-iteration in time_unit.
    jq --arg name "$name" --argjson perf "$BENCH_PERF" \
       --slurpfile attr "$ATTR_RAW" '
      def unit_sec: {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1}[.] // 1e-9;
      ($attr[0] | [.benchmarks[]
                   | select((.run_type // "iteration") == "iteration")][0])
        as $run |
      ($run | if . and .items_per_second then
                .items_per_second * (.real_time * (.time_unit | unit_sec))
                  * .iterations
              else null end) as $events |
      .benchmarks |= map(
        if .name == $name then
          . + {perf: ($perf + {
            instructions_per_event:
              (if $events != null and $events > 0 and $perf.instructions != null
               then $perf.instructions / $events else null end),
            llc_misses_per_kevent:
              (if $events != null and $events > 0 and $perf.llc_misses != null
               then 1e3 * $perf.llc_misses / $events else null end)})}
        else . end)
    ' "$OUT" >"$OUT.tmp" && mv "$OUT.tmp" "$OUT"
  done < <(jq -r '.benchmarks[].name' "$OUT")
fi

echo "wrote $OUT (rev $GIT_REV, best of 3 repetitions, perf: $PERF_SOURCE)"
jq -r '.benchmarks[] | "\(.name): \(.events_per_second // 0 | floor) events/s"' "$OUT"
