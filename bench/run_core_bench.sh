#!/usr/bin/env bash
# Runs the core microbenchmarks and emits BENCH_core.json: git revision plus
# events/sec and ns/event per benchmark, so successive PRs accumulate a perf
# trajectory.  Usage:
#
#   bench/run_core_bench.sh [build_dir] [out.json]
#
# Defaults: build_dir=build, out=BENCH_core.json (repo root).  Requires jq.
#
# Each benchmark runs 3 repetitions and the record keeps the best rep
# (highest events/sec).  items_per_second is wall-clock-based, and on the
# shared/virtualized hosts this runs on, wall time absorbs hypervisor steal
# the guest cannot see — a single shot measures the neighbours as much as
# the code.  Best-of-N is the standard noise-robust throughput estimator;
# it applies identically to the committed record and to CI's fresh side of
# compare_bench.py, so comparisons stay symmetric.  (For optimization work,
# prefer interleaved A/B runs within one session over record deltas.)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
OUT=${2:-BENCH_core.json}
BIN="$BUILD_DIR/bench/microbench_core"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 1; }

GIT_REV=$(git rev-parse HEAD 2>/dev/null || echo unknown)
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" \
  --benchmark_filter='RollingHorizon|CancelHeavy|ScheduleAndRun|SelfRescheduling|IncastEndToEnd|FatTreeEndToEnd|FatTreeFullScale|TimingWheel|Incast256' \
  --benchmark_repetitions=3 \
  --benchmark_format=json >"$RAW"

jq --arg rev "$GIT_REV" '{
  git_rev: $rev,
  date: .context.date,
  host: .context.host_name,
  benchmarks: ([.benchmarks[] | select((.run_type // "iteration") == "iteration")]
    | group_by(.run_name // .name)
    | map(max_by(.items_per_second // 0))
    | map({
        name: (.run_name // .name),
        events_per_second: (.items_per_second // null),
        ns_per_event: (if .items_per_second then (1e9 / .items_per_second) else null end),
        real_time, cpu_time, time_unit
      }))
}' "$RAW" >"$OUT"

echo "wrote $OUT (rev $GIT_REV, best of 3 repetitions)"
jq -r '.benchmarks[] | "\(.name): \(.events_per_second // 0 | floor) events/s"' "$OUT"
