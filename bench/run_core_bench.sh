#!/usr/bin/env bash
# Runs the core microbenchmarks and emits BENCH_core.json: git revision plus
# events/sec and ns/event per benchmark, so successive PRs accumulate a perf
# trajectory.  Usage:
#
#   bench/run_core_bench.sh [build_dir] [out.json]
#
# Defaults: build_dir=build, out=BENCH_core.json (repo root).  Requires jq.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
OUT=${2:-BENCH_core.json}
BIN="$BUILD_DIR/bench/microbench_core"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 1; }

GIT_REV=$(git rev-parse HEAD 2>/dev/null || echo unknown)
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" \
  --benchmark_filter='RollingHorizon|CancelHeavy|ScheduleAndRun|SelfRescheduling|IncastEndToEnd|FatTreeEndToEnd' \
  --benchmark_format=json >"$RAW"

jq --arg rev "$GIT_REV" '{
  git_rev: $rev,
  date: .context.date,
  host: .context.host_name,
  benchmarks: [.benchmarks[] | {
    name,
    events_per_second: (.items_per_second // null),
    ns_per_event: (if .items_per_second then (1e9 / .items_per_second) else null end),
    real_time, cpu_time, time_unit
  }]
}' "$RAW" >"$OUT"

echo "wrote $OUT (rev $GIT_REV)"
jq -r '.benchmarks[] | "\(.name): \(.events_per_second // 0 | floor) events/s"' "$OUT"
