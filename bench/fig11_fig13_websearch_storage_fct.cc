// Figures 11 and 13: FCT slowdown vs flow size under the shared-cluster mix
// (Microsoft WebSearch + Alibaba storage, each contributing half the load)
// on the fat-tree — the 99.9th percentile (Fig. 11) and the median
// (Fig. 13).
//
// Paper shape to reproduce: the slowdown of >1 MB flows grows to several
// times that of small flows under the baselines, and stays several times
// lower with VAI SF; medians are essentially unchanged.
//
// Flags: --full, --duration-us N, --load-pct N, --groups N, --seed N,
// --shards N (see fig10_fig12_hadoop_fct for defaults).
#include "fct_bench_common.h"
#include "workload/distributions.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const bench::FctBenchOptions opt = bench::parse_fct_options(argc, argv);
  bench::run_fct_bench(
      "Figures 11 & 13: WebSearch + storage mix",
      {{&workload::websearch_cdf(), 0.5}, {&workload::storage_cdf(), 0.5}},
      opt);
  return 0;
}
