// Section II baseline comparison: all four sender-side reaction protocols
// (HPCC, Swift, DCQCN, TIMELY) on the 16-to-1 staggered incast.
//
// Context for the paper's argument: DCQCN's probabilistic RED/ECN feedback
// makes it naturally fairer than the deterministic-feedback protocols
// (Section III-C), at the cost of much larger queues; TIMELY's hyper-AI
// recovers bandwidth faster than Swift's single constant AI (the fix the
// paper suggests for Swift's Hadoop median slowdown in Section VI-B).
//
// Flags: --senders N, --seed N, --convergence (print full summaries).
#include <cstdio>

#include "bench_util.h"
#include "core/convergence.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Baseline protocols, %d-1 staggered incast ===\n", senders);

  for (const exp::Variant v :
       {exp::Variant::kHpcc, exp::Variant::kSwift, exp::Variant::kDcqcn,
        exp::Variant::kTimely, exp::Variant::kDctcp, exp::Variant::kHpccVaiSf,
        exp::Variant::kSwiftVaiSf}) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    const exp::IncastResult r = run_incast(config);
    bench::print_incast_summary(r, variant_name(v));
    const core::ConvergenceSummary c = r.convergence(0.9);
    std::printf(
        "    convergence: first_reach=%.1fus unfairness_debt=%.1f "
        "mean_jain=%.3f worst=%.3f\n",
        c.first_reach_time < 0 ? -1.0
                               : static_cast<double>(c.first_reach_time) / 1e3,
        c.unfairness_integral_ns / 1e3, c.mean_index, c.worst_index);
  }
  return 0;
}
