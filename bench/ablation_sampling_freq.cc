// Ablation: the Sampling Frequency value `s` (ACKs per committed decrease).
//
// The paper picks s = 30.  Smaller s reacts to more congestion signals
// (better fairness and lower queues, at some bandwidth cost); larger s
// approaches the once-per-RTT baseline.  Sweeps s for both protocols on the
// 16-to-1 incast.
//
// Flags: --senders N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "cc/hpcc.h"
#include "cc/swift.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Ablation: Sampling Frequency value, %d-1 incast ===\n",
              senders);

  const int sweep[] = {5, 15, 30, 60, 120};

  std::printf("\n-- HPCC VAI + SF(s) --\n");
  for (const int s : sweep) {
    exp::IncastConfig config;
    config.variant = exp::Variant::kHpccVaiSf;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    config.custom_cc = [s](const net::PathInfo& path) {
      cc::HpccParams p;
      p.sampling_freq = s;
      p.vai = cc::hpcc_paper_vai(path.bottleneck *
                                 static_cast<double>(path.base_rtt));
      return cc::Hpcc(p);
    };
    char label[32];
    std::snprintf(label, sizeof(label), "s=%d%s", s, s == 30 ? " (paper)" : "");
    bench::print_incast_summary(run_incast(config), label);
  }

  std::printf("\n-- Swift VAI + SF(s), no FBS --\n");
  for (const int s : sweep) {
    exp::IncastConfig config;
    config.variant = exp::Variant::kSwiftVaiSf;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    config.custom_cc = [s](const net::PathInfo& path) {
      cc::SwiftParams p;
      p.sampling_freq = s;
      p.always_ai = true;
      p.use_fbs = false;
      p.fs_max_cwnd = 50.0;
      const sim::Time target =
          p.base_target +
          cc::Swift::scaling_hops(path.hops) * p.per_hop_scaling;
      const auto min_bdp_delay = static_cast<sim::Time>(
          path.bottleneck * static_cast<double>(path.base_rtt) /
          path.bottleneck);
      p.vai = cc::swift_paper_vai(target, path.base_rtt, min_bdp_delay);
      return cc::Swift(p);
    };
    char label[32];
    std::snprintf(label, sizeof(label), "s=%d%s", s, s == 30 ? " (paper)" : "");
    bench::print_incast_summary(run_incast(config), label);
  }
  return 0;
}
