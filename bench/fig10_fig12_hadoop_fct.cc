// Figures 10 and 12: FCT slowdown vs flow size under the Facebook Hadoop
// trace on the fat-tree — the 99.9th percentile (Fig. 10) and the median
// (Fig. 12), for HPCC / Swift with and without VAI SF.
//
// Paper shape to reproduce: small flows stay near the ideal; above ~1 MB the
// baselines' tail slowdown blows up (20-40x in the paper) while VAI SF
// roughly halves it (10-15x); medians are essentially unaffected.
//
// The default run is a scaled configuration (32-host fat-tree, 1 ms arrival
// window) sized for a single-core CI budget; pass --full for the paper's
// 320-host / 50 ms setup (hours of CPU).  Flags: --full, --duration-us N,
// --load-pct N, --groups N, --seed N, --shards N (pod-sharded parallel run
// with N worker threads — combine with --full to spread the 5 pods over
// cores).
#include "fct_bench_common.h"
#include "workload/distributions.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const bench::FctBenchOptions opt = bench::parse_fct_options(argc, argv);
  bench::run_fct_bench("Figures 10 & 12: Hadoop traffic",
                       {{&workload::hadoop_cdf(), 1.0}}, opt);
  return 0;
}
