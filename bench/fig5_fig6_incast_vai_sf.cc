// Figures 5 and 6: Jain fairness index and queue depth during 16-to-1 and
// 96-to-1 incast with the paper's mechanisms enabled — HPCC variants
// (Fig. 5) and Swift variants (Fig. 6).
//
// Paper shape to reproduce: VAI SF converges to a Jain index of ~1 about as
// fast as the high-AI / probabilistic baselines while keeping near-zero
// steady queues (HPCC) / the smallest queues of all variants (Swift, which
// drops FBS in VAI SF mode).
//
// Flags: --seed N, --series, --skip-96 (16-1 only, for quick runs).
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"

using namespace fastcc;

namespace {

void run_family(const char* title, int senders,
                const std::vector<exp::Variant>& variants, std::uint64_t seed,
                bool series) {
  std::printf("\n=== %s: %d-1 incast ===\n", title, senders);
  for (const exp::Variant v : variants) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    const exp::IncastResult r = run_incast(config);
    bench::print_incast_summary(r, variant_name(v));
    if (series) {
      std::printf("-- Jain: %s --\n", variant_name(v));
      bench::print_series("time_us,jain", r.jain, 60);
      std::printf("-- Queue KB: %s --\n", variant_name(v));
      bench::print_series("time_us,queue_kb", r.queue_bytes, 60, 1000.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));
  const bool series = bench::has_flag(argc, argv, "--series");
  const bool skip96 = bench::has_flag(argc, argv, "--skip-96");

  const std::vector<exp::Variant> hpcc = {
      exp::Variant::kHpcc, exp::Variant::kHpcc1G, exp::Variant::kHpccProb,
      exp::Variant::kHpccVaiSf};
  const std::vector<exp::Variant> swift = {
      exp::Variant::kSwift, exp::Variant::kSwift1G, exp::Variant::kSwiftProb,
      exp::Variant::kSwiftVaiSf};

  run_family("Figure 5(a,b) HPCC", 16, hpcc, seed, series);
  run_family("Figure 6(a,b) Swift", 16, swift, seed, series);
  if (!skip96) {
    run_family("Figure 5(c,d) HPCC", 96, hpcc, seed, series);
    run_family("Figure 6(c,d) Swift", 96, swift, seed, series);
  }
  return 0;
}
