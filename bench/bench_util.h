// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/incast.h"
#include "stats/timeseries.h"

namespace fastcc::bench {

/// True when `--name` appears on the command line.
inline bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Value of `--name <value>` or the default.
inline long long flag_value(int argc, char** argv, const char* name,
                            long long def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return def;
}

/// Value of `--name <value>` as a string, or the default.
inline const char* flag_string(int argc, char** argv, const char* name,
                               const char* def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return def;
}

/// Prints a time series as CSV, downsampled to at most `max_rows` rows so
/// long runs stay readable in terminal output.
inline void print_series(const char* header, const stats::TimeSeries& series,
                         std::size_t max_rows = 80,
                         double value_divisor = 1.0) {
  std::printf("%s\n", header);
  const auto& pts = series.points();
  const std::size_t stride = pts.size() > max_rows ? pts.size() / max_rows : 1;
  for (std::size_t i = 0; i < pts.size(); i += stride) {
    std::printf("%.1f,%.4f\n", static_cast<double>(pts[i].t) / 1e3,
                pts[i].value / value_divisor);
  }
}

/// One-line summary of an incast run (settle time / spread / queue stats).
inline void print_incast_summary(const exp::IncastResult& r,
                                 const char* label) {
  const sim::Time settle = r.jain_settle_time(0.9);
  std::printf(
      "%-22s jain_settle90_us=%8.1f finish_spread_us=%8.1f "
      "max_queue_kb=%8.1f steady_queue_kb=%7.1f util=%5.3f "
      "last_finish_us=%8.1f drops=%llu\n",
      label, settle < 0 ? -1.0 : static_cast<double>(settle) / 1e3,
      static_cast<double>(r.finish_spread()) / 1e3,
      r.queue_bytes.max_value() / 1e3,
      r.queue_bytes.mean_after(r.completion_time / 2) / 1e3,
      r.mean_utilization(),
      static_cast<double>(r.completion_time) / 1e3,
      static_cast<unsigned long long>(r.drops));
}

}  // namespace fastcc::bench
