// Ablation: Variable AI vs Sampling Frequency in isolation and combined.
//
// The paper always evaluates VAI+SF together; this ablation splits them to
// show each mechanism's individual contribution to convergence (VAI refills
// bandwidth after joins; SF makes fast flows decrease more often).
//
// Flags: --senders N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Ablation: mechanism split (%d-1 incast) ===\n", senders);

  const exp::Variant variants[] = {
      exp::Variant::kHpcc,     exp::Variant::kHpccVai,
      exp::Variant::kHpccSf,   exp::Variant::kHpccVaiSf,
      exp::Variant::kSwift,    exp::Variant::kSwiftVai,
      exp::Variant::kSwiftSf,  exp::Variant::kSwiftVaiSf,
  };

  for (const exp::Variant v : variants) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.star.host_count = senders + 1;
    config.seed = seed;
    bench::print_incast_summary(run_incast(config), variant_name(v));
  }
  return 0;
}
