// Figure 4: fluid-model fairness difference between per-RTT multiplicative
// decrease and per-s-ACK (Sampling Frequency) decrease.
//
// Paper parameters: r = 30000 ns, MTU = 1000 B, s = 30, beta = 0.5, initial
// rates 100 Gbps and 50 Gbps.  The plotted quantity is
// (R1(t)-R0(t)) - (S1(t)-S0(t)); positive means Sampling Frequency has
// converged further toward fairness.  The curve rises quickly and then
// diminishes — "the goal is to converge to nearly fair rates quickly".
//
// Flags: --horizon-us N (default 300), --step-us N (default 5).
#include <cstdio>

#include "bench_util.h"
#include "core/fluid_model.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const double horizon_ns =
      static_cast<double>(bench::flag_value(argc, argv, "--horizon-us", 300)) * 1000.0;
  const double step_ns =
      static_cast<double>(bench::flag_value(argc, argv, "--step-us", 5)) * 1000.0;

  core::FluidModelParams p;
  p.beta = 0.5;
  p.rtt_ns = 30'000;
  p.mtu_bytes = 1000;
  p.s_acks = 30;

  std::printf("=== Figure 4: fluid-model fairness difference ===\n");
  std::printf("condition 1/r < (C1+C0)/(s*MTU): %s\n",
              core::sf_converges_faster(sim::gbps(100), sim::gbps(50), p)
                  ? "holds (SF converges faster)"
                  : "violated");
  std::printf("t_us,sf_gap_gbps,rtt_gap_gbps,difference_gbps\n");

  const auto series = core::fairness_difference_series(
      sim::gbps(100), sim::gbps(50), horizon_ns, step_ns, p);
  for (const auto& pt : series) {
    std::printf("%.1f,%.4f,%.4f,%.4f\n", pt.t_ns / 1000.0,
                sim::to_gbps(pt.sf_gap), sim::to_gbps(pt.rtt_gap),
                sim::to_gbps(pt.difference));
  }

  // Numerical cross-check of the closed forms (RK4).
  const core::FluidRates rk4 =
      core::integrate_rk4(sim::gbps(100), horizon_ns, 10.0, p);
  std::printf(
      "rk4 cross-check at t=%.0fus: sf=%.4f gbps (closed %.4f), "
      "rtt=%.4f gbps (closed %.4f)\n",
      horizon_ns / 1000.0, sim::to_gbps(rk4.sf_rate),
      sim::to_gbps(core::sampling_frequency_rate(sim::gbps(100), horizon_ns, p)),
      sim::to_gbps(rk4.rtt_rate),
      sim::to_gbps(core::per_rtt_rate(sim::gbps(100), horizon_ns, p)));
  return 0;
}
