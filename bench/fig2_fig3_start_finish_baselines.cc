// Figures 2 and 3: start time vs finish time of each flow in the 16-to-1
// staggered incast, HPCC baselines (Fig. 2) and Swift baselines (Fig. 3).
//
// Paper shape to reproduce: with default settings, flows that start *last*
// finish *first* (existing flows have decreased their rates several more
// times than recent joiners); the 1 Gbps-AI and probabilistic variants
// finish at roughly the same time.
//
// Flags: --senders N, --flow-kb N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/incast.h"

using namespace fastcc;

namespace {

void print_table(const exp::IncastResult& r, const char* label) {
  std::printf("\n-- %s: start_us -> finish_us --\n", label);
  std::printf("flow,start_us,finish_us,fct_us\n");
  for (const exp::FlowTiming& f : r.flows) {
    std::printf("%u,%.1f,%.1f,%.1f\n", f.id,
                static_cast<double>(f.start) / 1e3,
                static_cast<double>(f.finish) / 1e3,
                static_cast<double>(f.fct()) / 1e3);
  }
  // The paper's visual takeaway condensed into one number: Kendall-style
  // count of start/finish inversions (later start but earlier finish).
  int inversions = 0, pairs = 0;
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    for (std::size_t j = i + 1; j < r.flows.size(); ++j) {
      if (r.flows[i].start == r.flows[j].start) continue;
      ++pairs;
      if (r.flows[j].finish < r.flows[i].finish) ++inversions;
    }
  }
  std::printf("start/finish inversions: %d of %d pairs (%.0f%%)\n",
              inversions, pairs, 100.0 * inversions / pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));
  const long long flow_kb = bench::flag_value(argc, argv, "--flow-kb", 1000);
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf(
      "=== Figures 2 & 3: start vs finish time, %d-1 staggered incast ===\n",
      senders);

  for (const exp::Variant v :
       {exp::Variant::kHpcc, exp::Variant::kHpcc1G, exp::Variant::kHpccProb,
        exp::Variant::kSwift, exp::Variant::kSwift1G,
        exp::Variant::kSwiftProb}) {
    exp::IncastConfig config;
    config.variant = v;
    config.pattern.senders = senders;
    config.pattern.flow_bytes = static_cast<std::uint64_t>(flow_kb) * 1000;
    config.star.host_count = senders + 1;
    config.seed = seed;
    print_table(run_incast(config), variant_name(v));
  }
  return 0;
}
