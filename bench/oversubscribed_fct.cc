// Extension experiment (beyond the paper): does VAI SF still reduce the
// long-flow tail when the fabric is oversubscribed and the congestion point
// moves off the edge links into the core?
//
// The paper evaluates a non-blocking fat-tree only; production fabrics are
// commonly 2:1 or 4:1 oversubscribed.  Runs the Hadoop workload at the same
// offered load over oversubscription ratios {1, 2, 4} and reports the
// long-flow tail for baseline vs VAI SF per ratio.
//
// Flags: --duration-us N (default 1000), --load-pct N, --seed N.
#include <cstdio>

#include "bench_util.h"
#include "experiments/datacenter.h"
#include "stats/percentile.h"
#include "workload/distributions.h"

using namespace fastcc;

int main(int argc, char** argv) {
  const sim::Time duration =
      bench::flag_value(argc, argv, "--duration-us", 1000) * sim::kMicrosecond;
  const double load =
      static_cast<double>(bench::flag_value(argc, argv, "--load-pct", 40)) / 100.0;
  const auto seed = static_cast<std::uint64_t>(bench::flag_value(argc, argv, "--seed", 1));

  std::printf("=== Extension: oversubscribed fabric, Hadoop @ %.0f%% ===\n",
              load * 100.0);
  std::printf(
      "%-8s %-14s %12s %14s %12s\n", "ratio", "variant", "flows",
      "long p99.9", "median");

  for (const double ratio : {1.0, 2.0, 4.0}) {
    for (const exp::Variant v :
         {exp::Variant::kHpcc, exp::Variant::kHpccVaiSf}) {
      exp::DatacenterConfig config;
      config.variant = v;
      config.topo = topo::with_oversubscription(topo::scaled_fat_tree(), ratio);
      config.components = {{&workload::hadoop_cdf(), 1.0}};
      config.load = load;
      config.generate_duration = duration;
      config.seed = seed;
      const exp::DatacenterResult r = run_datacenter(config);

      stats::PercentileEstimator long_flows, all;
      for (const auto& f : r.flows) {
        all.add(f.slowdown());
        if (f.size_bytes > 1'000'000) long_flows.add(f.slowdown());
      }
      std::printf("%-8.0f %-14s %12zu %14.2f %12.2f%s\n", ratio,
                  variant_name(v), r.flows.size(),
                  long_flows.empty() ? -1.0 : long_flows.p999(),
                  all.empty() ? -1.0 : all.median(),
                  r.unfinished > 0 ? "  (unfinished!)" : "");
    }
  }
  return 0;
}
