// Robustness of the headline incast result across random seeds.
//
// The incast experiment itself is deterministic per seed; seeds perturb the
// probabilistic-feedback draws and ECMP tie-breaking.  This bench runs the
// 16-1 incast across several seeds for the key variants and reports
// mean +/- stddev of the finish spread and Jain settle time, demonstrating
// that the paper's ordering (VAI SF << default) is not a seed artifact.
//
// Flags: --seeds N (default 8), --senders N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "experiments/parallel.h"

using namespace fastcc;

namespace {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
};

Moments moments(const std::vector<double>& xs) {
  Moments m;
  if (xs.empty()) return m;
  for (const double x : xs) m.mean += x;
  m.mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - m.mean) * (x - m.mean);
  m.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = static_cast<int>(bench::flag_value(argc, argv, "--seeds", 8));
  const int senders = static_cast<int>(bench::flag_value(argc, argv, "--senders", 16));

  std::printf("=== Seed sensitivity: %d-1 incast over %d seeds ===\n",
              senders, seeds);
  std::printf("%-22s %22s %24s\n", "variant", "spread us (mean+/-sd)",
              "settle90 us (mean+/-sd)");

  for (const exp::Variant v :
       {exp::Variant::kHpcc, exp::Variant::kHpccProb, exp::Variant::kHpccVaiSf,
        exp::Variant::kSwift, exp::Variant::kSwiftProb,
        exp::Variant::kSwiftVaiSf}) {
    std::vector<exp::IncastConfig> configs;
    for (int s = 1; s <= seeds; ++s) {
      exp::IncastConfig c;
      c.variant = v;
      c.pattern.senders = senders;
      c.star.host_count = senders + 1;
      c.seed = static_cast<std::uint64_t>(s);
      configs.push_back(c);
    }
    const auto results = run_incast_parallel(configs);

    std::vector<double> spreads, settles;
    for (const auto& r : results) {
      spreads.push_back(static_cast<double>(r.finish_spread()) / 1e3);
      const sim::Time settle = r.jain_settle_time(0.9);
      if (settle >= 0) settles.push_back(static_cast<double>(settle) / 1e3);
    }
    const Moments sp = moments(spreads);
    const Moments st = moments(settles);
    std::printf("%-22s %12.1f +/- %5.1f %13.1f +/- %6.1f  (%zu/%d settled)\n",
                variant_name(v), sp.mean, sp.stddev, st.mean, st.stddev,
                settles.size(), seeds);
  }
  return 0;
}
