#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topo/star.h"

namespace fastcc::net {
namespace {

TEST(Network, StarConstruction) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::StarParams params;
  params.host_count = 5;
  topo::Star star = build_star(network, params);
  EXPECT_EQ(star.hosts.size(), 5u);
  EXPECT_EQ(network.hosts().size(), 5u);
  EXPECT_EQ(network.switches().size(), 1u);
  EXPECT_EQ(star.hub->port_count(), 5);
}

TEST(Network, StarPathMetricsAreExact) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::StarParams params;  // 17 hosts, 100 Gbps, 1 us links
  topo::Star star = build_star(network, params);
  const PathInfo p =
      network.path(star.hosts[0]->id(), star.hosts[16]->id(), 1000);
  EXPECT_EQ(p.hops, 2);
  EXPECT_DOUBLE_EQ(p.bottleneck, sim::gbps(100));
  // Per link: 2 us RTT propagation + 84 ns data + 6 ns ACK serialization.
  const sim::Time per_link = 2000 + sim::serialization_time(1048, sim::gbps(100)) +
                             sim::serialization_time(kAckBytes, sim::gbps(100));
  EXPECT_EQ(p.base_rtt, 2 * per_link);
  EXPECT_EQ(p.one_way_delay, 2 * (1000 + 84));
}

TEST(Network, PathToSelfIsEmpty) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::Star star = build_star(network, topo::StarParams{});
  const PathInfo p = network.path(star.hosts[0]->id(), star.hosts[0]->id());
  EXPECT_EQ(p.hops, 0);
  EXPECT_EQ(p.base_rtt, 0);
}

TEST(Network, HubRoutesDirectlyToEveryHost) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::StarParams params;
  params.host_count = 4;
  topo::Star star = build_star(network, params);
  for (Host* h : star.hosts) {
    const auto& routes = star.hub->routes(h->id());
    ASSERT_EQ(routes.size(), 1u);
    EXPECT_EQ(star.hub->port(routes[0]).peer(), h);
  }
}

TEST(Network, DropCounterAggregatesAllPorts) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::Star star = build_star(network, topo::StarParams{});
  EXPECT_EQ(network.total_drops(), 0u);
}

TEST(Network, BufferLimitAppliesToSwitchPorts) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::Star star = build_star(network, topo::StarParams{});
  network.set_buffer_limit_all(12345);
  // No direct getter; rely on behaviour: enqueue more than the limit through
  // the datapath is covered by pfc_test.  Here just confirm the call is safe
  // on a built topology.
  SUCCEED();
}

TEST(Network, RedAppliesToSwitchPorts) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::Star star = build_star(network, topo::StarParams{});
  RedParams red;
  red.enabled = true;
  red.kmin_bytes = 0;
  red.kmax_bytes = 1;
  red.pmax = 1.0;
  network.set_red_all(red);
  SUCCEED();
}

}  // namespace
}  // namespace fastcc::net
