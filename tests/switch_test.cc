#include "net/switch_node.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"
#include "test_util.h"

namespace fastcc::net {
namespace {

using test::SinkNode;
using test::test_packet;

TEST(SwitchNode, SinglePortRouteAlwaysSelected) {
  sim::Simulator simulator;
  SwitchNode sw(simulator, 0, "sw");
  sw.add_port();
  sw.set_routes(7, {0});
  for (FlowId f = 0; f < 16; ++f) {
    EXPECT_EQ(sw.select_port(7, f, 1), 0);
  }
}

TEST(SwitchNode, EcmpIsDeterministicPerFlow) {
  sim::Simulator simulator;
  SwitchNode sw(simulator, 0, "sw");
  for (int i = 0; i < 4; ++i) sw.add_port();
  sw.set_routes(9, {0, 1, 2, 3});
  for (FlowId f = 0; f < 32; ++f) {
    const int first = sw.select_port(9, f, 5);
    for (int repeat = 0; repeat < 5; ++repeat) {
      EXPECT_EQ(sw.select_port(9, f, 5), first);
    }
  }
}

TEST(SwitchNode, EcmpSpreadsFlowsAcrossCandidates) {
  sim::Simulator simulator;
  SwitchNode sw(simulator, 3, "sw");
  for (int i = 0; i < 4; ++i) sw.add_port();
  sw.set_routes(9, {0, 1, 2, 3});
  std::set<int> used;
  for (FlowId f = 0; f < 64; ++f) used.insert(sw.select_port(9, f, 5));
  EXPECT_EQ(used.size(), 4u);  // 64 flows should touch every port
}

TEST(SwitchNode, DifferentSwitchesMakeDecorrelatedPicks) {
  sim::Simulator simulator;
  SwitchNode sw_a(simulator, 1, "a"), sw_b(simulator, 2, "b");
  for (int i = 0; i < 4; ++i) {
    sw_a.add_port();
    sw_b.add_port();
  }
  sw_a.set_routes(9, {0, 1, 2, 3});
  sw_b.set_routes(9, {0, 1, 2, 3});
  int same = 0;
  const int flows = 256;
  for (FlowId f = 0; f < flows; ++f) {
    if (sw_a.select_port(9, f, 5) == sw_b.select_port(9, f, 5)) ++same;
  }
  // Independent uniform picks agree ~25% of the time; correlated picks would
  // agree near 100%.
  EXPECT_LT(same, flows / 2);
}

TEST(SwitchNode, ForwardsViaSelectedPort) {
  sim::Simulator simulator;
  PacketPool pool;
  SwitchNode sw(simulator, 0, "sw");
  SinkNode h1(simulator, 1, "h1"), h2(simulator, 2, "h2");
  test::bind_pool(pool, {&sw, &h1, &h2});
  const int p1 = sw.add_port();
  const int p2 = sw.add_port();
  h1.add_port();
  h2.add_port();
  sw.port(p1).connect(&h1, 0, sim::gbps(100), 10);
  h1.port(0).connect(&sw, p1, sim::gbps(100), 10);
  sw.port(p2).connect(&h2, 0, sim::gbps(100), 10);
  h2.port(0).connect(&sw, p2, sim::gbps(100), 10);
  sw.set_routes(1, {p1});
  sw.set_routes(2, {p2});

  h1.port(0).enqueue(test_packet(1000, /*flow=*/1, /*src=*/1, /*dst=*/2));
  simulator.run();
  EXPECT_EQ(h2.count(), 1u);
  EXPECT_EQ(h1.count(), 0u);
}

TEST(SwitchNode, RoutesForUnknownDestinationAreEmpty) {
  sim::Simulator simulator;
  SwitchNode sw(simulator, 0, "sw");
  EXPECT_TRUE(sw.routes(42).empty());
}

}  // namespace
}  // namespace fastcc::net
