#include "core/sampling_frequency.h"

#include <gtest/gtest.h>

namespace fastcc::core {
namespace {

TEST(SamplingFrequency, DisabledNeverFires) {
  SamplingFrequency sf(0);
  EXPECT_FALSE(sf.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sf.tick());
}

TEST(SamplingFrequency, FiresEverySAcks) {
  SamplingFrequency sf(30);
  EXPECT_TRUE(sf.enabled());
  int fires = 0;
  for (int i = 1; i <= 90; ++i) {
    if (sf.tick()) {
      ++fires;
      EXPECT_EQ(i % 30, 0) << "fired off-schedule at ack " << i;
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST(SamplingFrequency, ResetRestartsTheCount) {
  SamplingFrequency sf(5);
  sf.tick();
  sf.tick();
  sf.reset();
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(sf.tick());
  EXPECT_TRUE(sf.tick());
}

TEST(SamplingFrequency, PeriodOfOneFiresEveryAck) {
  SamplingFrequency sf(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(sf.tick());
}

TEST(SamplingFrequency, CounterExposedForIntrospection) {
  SamplingFrequency sf(10);
  sf.tick();
  sf.tick();
  sf.tick();
  EXPECT_EQ(sf.acks_since_commit(), 3);
  EXPECT_EQ(sf.period(), 10);
}

}  // namespace
}  // namespace fastcc::core
