// Protocol "physics" checks: steady-state operating points predicted by each
// protocol's design must emerge from the packet-level simulation.
#include <gtest/gtest.h>

#include "experiments/incast.h"

namespace fastcc::exp {
namespace {

IncastResult steady_run(Variant v, int senders, std::uint64_t flow_bytes) {
  IncastConfig c;
  c.variant = v;
  c.pattern.senders = senders;
  c.pattern.flow_bytes = flow_bytes;
  c.pattern.flows_per_wave = senders;  // all start together
  c.star.host_count = senders + 1;
  return run_incast(c);
}

TEST(ProtocolPhysics, SoloHpccConvergesToEtaUtilization) {
  // HPCC drives the bottleneck toward eta = 95% utilization: a single long
  // flow should settle there, NOT at 100%.
  const IncastResult r = steady_run(Variant::kHpcc, 1, 3'000'000);
  // Skip the line-rate start transient: average the second half.
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : r.utilization.points()) {
    if (p.t > r.completion_time / 2) {
      sum += p.value;
      ++n;
    }
  }
  ASSERT_GT(n, 5u);
  const double steady = sum / static_cast<double>(n);
  // The per-ACK EWMA lags the true utilization, so the incStage/maxStage
  // sawtooth oscillates under the eta = 0.95 setpoint rather than pinning
  // it; the operating point must sit high and strictly below line rate.
  EXPECT_GT(steady, 0.80);
  EXPECT_LT(steady, 0.98);
}

TEST(ProtocolPhysics, SoloHpccKeepsQueueEmpty) {
  const IncastResult r = steady_run(Variant::kHpcc, 1, 3'000'000);
  EXPECT_LT(r.queue_bytes.mean_after(r.completion_time / 2), 1'000.0);
}

TEST(ProtocolPhysics, SwiftAlwaysAiSettlesAtDelayTarget) {
  // Swift in always-AI (SF) mode reaches equilibrium where the measured
  // delay equals the target: the standing queue is (target - base_rtt) x
  // bottleneck bandwidth.  Star: target = 5 us + 2 us x 1 switch hop = 7 us,
  // base_rtt ~ 4.2 us -> ~2.8 us x 12.5 B/ns ~ 35 KB.
  const IncastResult r = steady_run(Variant::kSwiftSf, 4, 2'000'000);
  const double steady =
      r.queue_bytes.mean_after(r.completion_time / 2);
  EXPECT_NEAR(steady, 35'000.0, 12'000.0);
}

TEST(ProtocolPhysics, StockSwiftHoldsQueueBelowFbsTarget) {
  // Stock Swift's MD stops once delay crosses below target: the queue never
  // exceeds the (FBS-raised) target's worth of queueing for long.
  const IncastResult r = steady_run(Variant::kSwift, 4, 2'000'000);
  // FBS-raised target at cwnd ~ 15 pkts is ~7.5-8 us; bound generously.
  const double tolerated = (11'000.0 - 4'200.0) * sim::gbps(100);
  EXPECT_LT(r.queue_bytes.mean_after(r.completion_time / 2), tolerated);
}

TEST(ProtocolPhysics, FairShareSplitsBandwidthEvenly) {
  // Four simultaneous equal flows: each should finish in about 4x the solo
  // time; huge skews would mean broken arbitration.
  const IncastResult solo = steady_run(Variant::kHpccVaiSf, 1, 1'000'000);
  const IncastResult four = steady_run(Variant::kHpccVaiSf, 4, 1'000'000);
  const double solo_fct = static_cast<double>(solo.flows[0].fct());
  for (const FlowTiming& f : four.flows) {
    EXPECT_GT(static_cast<double>(f.fct()), 3.2 * solo_fct);
    EXPECT_LT(static_cast<double>(f.fct()), 5.0 * solo_fct);
  }
}

TEST(ProtocolPhysics, SimultaneousStartIsFairFromTheOutset) {
  // With no staggering there is no new-flow unfairness to fix: even default
  // HPCC should hold a high Jain index throughout.
  const IncastResult r = steady_run(Variant::kHpcc, 8, 500'000);
  EXPECT_GT(r.convergence(0.9).mean_index, 0.9);
}

}  // namespace
}  // namespace fastcc::exp
