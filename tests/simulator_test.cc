#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace fastcc::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.at(100, [&] { seen.push_back(s.now()); });
  s.at(250, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{100, 250}));
  EXPECT_EQ(s.now(), 250);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  Time inner = -1;
  s.at(40, [&] { s.after(5, [&] { inner = s.now(); }); });
  s.run();
  EXPECT_EQ(inner, 45);
}

TEST(Simulator, RunHonorsDeadlineAndKeepsPendingEvents) {
  Simulator s;
  bool late_ran = false;
  s.at(10, [] {});
  s.at(100, [&] { late_ran = true; });
  s.run(50);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.now(), 50);  // clock parked at the deadline
  s.run();
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, EventExactlyAtDeadlineRuns) {
  Simulator s;
  bool ran = false;
  s.at(50, [&] { ran = true; });
  s.run(50);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.at(i, [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  s.run();  // resume drains the rest
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 17; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 17u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, SelfReschedulingEventChains) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) s.after(10, [&] { tick(); });
  };
  s.after(10, [&] { tick(); });
  s.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(s.now(), 50);
}

}  // namespace
}  // namespace fastcc::sim
