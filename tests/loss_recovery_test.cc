// Loss recovery (go-back-N): drops induced by tiny switch buffers must be
// detected via duplicate cumulative ACKs or RTO and repaired, with the flow
// still delivering every byte exactly in order.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "net/network.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "topo/star.h"

namespace fastcc::net {
namespace {

using test::FixedCc;

struct LossHarness : ::testing::Test {
  sim::Simulator simulator;
  Network network{simulator};
  topo::Star star;

  void SetUp() override {
    topo::StarParams params;
    params.host_count = 3;
    star = build_star(network, params);
  }

  FlowTx make_flow(Host* src, Host* dst, std::uint64_t bytes, double window,
                   sim::Rate rate) {
    const PathInfo path = network.path(src->id(), dst->id());
    FlowTx f;
    f.spec.id = 1;
    f.spec.src = src->id();
    f.spec.dst = dst->id();
    f.spec.size_bytes = bytes;
    f.line_rate = src->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::make_unique<FixedCc>(window, rate);
    return f;
  }
};

TEST_F(LossHarness, DropsAreRepairedAndEveryByteDelivered) {
  // Two line-rate bursts colliding in a 10-packet switch buffer must drop,
  // yet both flows complete with all bytes cumulatively acked.
  network.set_buffer_limit_all(10 * 1048);
  Host* src = star.hosts[0];
  Host* other = star.hosts[1];
  Host* dst = star.hosts[2];
  src->set_min_rto(50 * sim::kMicrosecond);
  other->set_min_rto(50 * sim::kMicrosecond);
  const std::uint64_t size = 200'000;
  src->start_flow(make_flow(src, dst, size, 1e12, sim::gbps(100)));
  FlowTx f2 = make_flow(other, dst, size, 1e12, sim::gbps(100));
  f2.spec.id = 2;
  other->start_flow(std::move(f2));
  simulator.run(50 * sim::kMillisecond);

  const FlowTx* f = src->flow(1);
  const FlowTx* g = other->flow(2);
  ASSERT_TRUE(f->finished());
  ASSERT_TRUE(g->finished());
  EXPECT_EQ(f->cum_acked, size);
  EXPECT_EQ(g->cum_acked, size);
  EXPECT_GT(network.total_drops(), 0u);
  // The deterministic arrival interleaving may place every drop on one of
  // the two flows; recovery must have happened somewhere.
  EXPECT_GT(f->bytes_retransmitted + g->bytes_retransmitted, 0u);
  EXPECT_GT(f->retransmit_events + g->retransmit_events, 0u);
}

TEST_F(LossHarness, TripleDuplicateAckTriggersFastRetransmit) {
  network.set_buffer_limit_all(10 * 1048);
  Host* src = star.hosts[0];
  Host* other = star.hosts[1];
  Host* dst = star.hosts[2];
  // Enormous RTO: only the dup-ACK path can repair the loss in time.
  src->set_min_rto(40 * sim::kMillisecond);
  other->set_min_rto(40 * sim::kMillisecond);
  const std::uint64_t size = 100'000;
  src->start_flow(make_flow(src, dst, size, 1e12, sim::gbps(100)));
  FlowTx f2 = make_flow(other, dst, size, 1e12, sim::gbps(100));
  f2.spec.id = 2;
  other->start_flow(std::move(f2));
  simulator.run(200 * sim::kMillisecond);
  const FlowTx* f = src->flow(1);
  const FlowTx* g = other->flow(2);
  ASSERT_TRUE(f->finished());
  ASSERT_TRUE(g->finished());
  // Mid-stream losses are repaired by triple-dup fast retransmit long before
  // the 40 ms RTO; at least one flow must finish that fast.  (A *tail* loss
  // produces no duplicate ACKs — go-back-N's known blind spot — so the other
  // flow may legitimately wait out the RTO.)
  EXPECT_LT(std::min(f->finish_time, g->finish_time),
            10 * sim::kMillisecond);
  EXPECT_GT(f->retransmit_events + g->retransmit_events, 0u);
}

TEST_F(LossHarness, RtoRecoversWhenDupAcksCannotArrive) {
  // Window of exactly one packet: a dropped packet produces no later
  // arrivals, hence no duplicate ACKs — only the RTO can recover.
  network.set_buffer_limit_all(1048);  // one-packet buffer
  Host* a = star.hosts[0];
  Host* b = star.hosts[1];
  Host* c = star.hosts[2];
  a->set_min_rto(100 * sim::kMicrosecond);
  b->set_min_rto(100 * sim::kMicrosecond);
  // Two senders to one receiver collide in the single-packet buffer.
  FlowTx f1 = make_flow(a, c, 20'000, 2 * 1048.0, sim::gbps(100));
  FlowTx f2 = make_flow(b, c, 20'000, 2 * 1048.0, sim::gbps(100));
  f2.spec.id = 2;
  a->start_flow(std::move(f1));
  b->start_flow(std::move(f2));
  simulator.run(100 * sim::kMillisecond);
  ASSERT_TRUE(a->flow(1)->finished());
  ASSERT_TRUE(b->flow(2)->finished());
  EXPECT_GT(network.total_drops(), 0u);
}

TEST_F(LossHarness, NoSpuriousRetransmissionsWhenLossless) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  src->start_flow(make_flow(src, dst, 500'000, 1e12, sim::gbps(100)));
  simulator.run();
  const FlowTx* f = src->flow(1);
  ASSERT_TRUE(f->finished());
  EXPECT_EQ(f->bytes_retransmitted, 0u);
  EXPECT_EQ(f->retransmit_events, 0u);
  EXPECT_EQ(network.total_drops(), 0u);
}

TEST_F(LossHarness, ReceiverIgnoresOutOfOrderBeyondGap) {
  // Under go-back-N the receiver's cumulative counter never advances past a
  // gap; retransmitted bytes cover it.  Conservation: cumulative acked bytes
  // equal the flow size even though raw deliveries exceed it.
  network.set_buffer_limit_all(6 * 1048);
  Host* src = star.hosts[0];
  Host* other = star.hosts[1];
  Host* dst = star.hosts[2];
  src->set_min_rto(50 * sim::kMicrosecond);
  other->set_min_rto(50 * sim::kMicrosecond);
  const std::uint64_t size = 60'000;
  src->start_flow(make_flow(src, dst, size, 1e12, sim::gbps(100)));
  FlowTx f2 = make_flow(other, dst, size, 1e12, sim::gbps(100));
  f2.spec.id = 2;
  other->start_flow(std::move(f2));
  simulator.run(50 * sim::kMillisecond);
  const FlowTx* f = src->flow(1);
  ASSERT_TRUE(f->finished());
  EXPECT_EQ(f->cum_acked, size);
  // snd_nxt ends exactly at flow size despite the rewinds.
  EXPECT_EQ(f->snd_nxt, size);
}

TEST_F(LossHarness, RtoDerivedFromBaseRttWhenUnset) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  src->set_min_rto(1);  // force the 3 x base_rtt branch
  FlowTx f = make_flow(src, dst, 10'000, 1e12, sim::gbps(100));
  const PathInfo path = network.path(src->id(), dst->id());
  src->start_flow(std::move(f));
  EXPECT_EQ(src->flow(1)->rto, 3 * path.base_rtt);
}

}  // namespace
}  // namespace fastcc::net
