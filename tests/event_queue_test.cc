#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fastcc::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.schedule(50, [] {});
  q.schedule(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> order;
  const EventId first = q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), 20);
  q.pop_and_run();
  EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, SchedulingInsideCallbackWorks) {
  EventQueue q;
  std::vector<Time> fired;
  q.schedule(10, [&] {
    fired.push_back(10);
    q.schedule(15, [&] { fired.push_back(15); });
  });
  while (!q.empty()) fired.push_back(q.pop_and_run());
  // Interleaving: outer callback records 10, pop returns 10, then 15 twice.
  EXPECT_EQ(fired, (std::vector<Time>{10, 10, 15, 15}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported) {
  EventQueue q;
  auto token = std::make_unique<int>(7);
  int observed = 0;
  q.schedule(1, [t = std::move(token), &observed] { observed = *t; });
  q.pop_and_run();
  EXPECT_EQ(observed, 7);
}

TEST(EventQueue, CancelHeavyRearmReusesSlotsCorrectly) {
  // The retransmit-timer pattern: every pop cancels a pending far-future
  // timer and re-arms it.  Slots are recycled constantly, so any confusion
  // between a slot's old and new occupant (a generation-stamp bug) would
  // fire the wrong callback or resurrect a cancelled one.
  EventQueue q;
  constexpr int kFlows = 16;
  std::vector<EventId> rto(kFlows);
  std::vector<int> rto_fired(kFlows, 0);
  int acks = 0;
  for (int f = 0; f < kFlows; ++f) {
    q.schedule(f, [&acks] { ++acks; });
    rto[f] = q.schedule(100'000 + f, [&rto_fired, f] { ++rto_fired[f]; });
  }
  Time now = 0;
  for (int i = 0; i < 2000; ++i) {
    now = q.pop_and_run();
    const int f = i % kFlows;
    EXPECT_TRUE(q.cancel(rto[f])) << "re-armed timer must still be live";
    rto[f] = q.schedule(now + 100'000, [&rto_fired, f] { ++rto_fired[f]; });
    q.schedule(now + 1 + i % 7, [&acks] { ++acks; });
  }
  // Cancel all timers: only ACK callbacks may ever have run.
  for (int f = 0; f < kFlows; ++f) EXPECT_TRUE(q.cancel(rto[f]));
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(acks, kFlows + 2000);  // every ACK ran, initial + rescheduled
  for (int f = 0; f < kFlows; ++f) EXPECT_EQ(rto_fired[f], 0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    const Time t = (i * 7919) % 1000;  // scattered times
    q.schedule(t, [] {});
  }
  while (!q.empty()) {
    const Time t = q.pop_and_run();
    monotone = monotone && (t >= last);
    last = t;
  }
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace fastcc::sim
