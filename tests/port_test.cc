#include "net/port.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace fastcc::net {
namespace {

using test::SinkNode;
using test::test_packet;

struct PortHarness {
  sim::Simulator simulator;
  PacketPool pool;
  SinkNode a{simulator, 0, "a"};
  SinkNode b{simulator, 1, "b"};

  PortHarness(sim::Rate bw = sim::gbps(100), sim::Time delay = 1000) {
    test::bind_pool(pool, {&a, &b});
    a.add_port();
    b.add_port();
    a.port(0).connect(&b, 0, bw, delay);
    b.port(0).connect(&a, 0, bw, delay);
  }
};

TEST(Port, DeliversAfterSerializationPlusPropagation) {
  PortHarness h;  // 100 Gbps, 1 us
  h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  ASSERT_EQ(h.b.count(), 1u);
  // 1048 wire bytes: 84 ns serialization + 1000 ns propagation.
  EXPECT_EQ(h.b.arrivals()[0].at, 84 + 1000);
}

TEST(Port, BackToBackPacketsSpaceBySerializationTime) {
  PortHarness h;
  h.a.port(0).enqueue(test_packet(1000));
  h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  ASSERT_EQ(h.b.count(), 2u);
  EXPECT_EQ(h.b.arrivals()[1].at - h.b.arrivals()[0].at, 84);
}

TEST(Port, ControlPacketsPreemptQueuedData) {
  PortHarness h;
  // Three data packets; while the first serializes, an ACK arrives.  The ACK
  // must overtake the two still-queued data packets but not the in-flight
  // one.
  for (int i = 0; i < 3; ++i) h.a.port(0).enqueue(test_packet(1000));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.wire_bytes = kAckBytes;
  ack.flow = 99;
  h.simulator.after(10, [&] { h.a.port(0).enqueue(Packet(ack)); });
  h.simulator.run();
  ASSERT_EQ(h.b.count(), 4u);
  EXPECT_EQ(h.b.arrivals()[0].packet.type, PacketType::kData);
  EXPECT_EQ(h.b.arrivals()[1].packet.type, PacketType::kAck);
}

TEST(Port, IntRecordStampedOnDataOnly) {
  PortHarness h;
  h.a.port(0).enqueue(test_packet(1000));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.wire_bytes = kAckBytes;
  h.a.port(0).enqueue(std::move(ack));
  h.simulator.run();
  ASSERT_EQ(h.b.count(), 2u);
  EXPECT_EQ(h.b.arrivals()[0].packet.int_count, 1);
  EXPECT_EQ(h.b.arrivals()[1].packet.int_count, 0);
}

TEST(Port, IntRecordContentsMatchLinkState) {
  PortHarness h;
  // The first enqueue starts transmitting synchronously, so packet 0 leaves
  // an empty queue behind; packets 1 and 2 queue up behind it.
  h.a.port(0).enqueue(test_packet(1000));
  h.a.port(0).enqueue(test_packet(1000));
  h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  const IntRecord& p0 = h.b.arrivals()[0].packet.ints[0];
  const IntRecord& p1 = h.b.arrivals()[1].packet.ints[0];
  const IntRecord& p2 = h.b.arrivals()[2].packet.ints[0];
  EXPECT_DOUBLE_EQ(p0.bandwidth, sim::gbps(100));
  EXPECT_EQ(p0.timestamp, 0);
  EXPECT_EQ(p0.qlen_bytes, 0u);  // started before the others arrived
  EXPECT_EQ(p0.tx_bytes, 1048u);
  EXPECT_EQ(p1.timestamp, 84);
  EXPECT_EQ(p1.qlen_bytes, 1048u);  // packet 2 waits behind it
  EXPECT_EQ(p1.tx_bytes, 2096u);
  EXPECT_EQ(p2.timestamp, 168);
  EXPECT_EQ(p2.qlen_bytes, 0u);
  EXPECT_EQ(p2.tx_bytes, 3144u);
}

TEST(Port, PauseFreezesAndResumeRestartsTransmitter) {
  PortHarness h;
  h.a.port(0).set_paused(true);
  h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run(5000);
  EXPECT_EQ(h.b.count(), 0u);
  h.a.port(0).set_paused(false);
  h.simulator.run();
  ASSERT_EQ(h.b.count(), 1u);
  // Released at t=5000: serialization + propagation later.
  EXPECT_EQ(h.b.arrivals()[0].at, 5000 + 84 + 1000);
}

TEST(Port, BufferLimitDropsExcess) {
  PortHarness h;
  h.a.port(0).set_buffer_limit(3000);
  for (int i = 0; i < 5; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  EXPECT_GT(h.a.port(0).drops(), 0u);
  EXPECT_LT(h.b.count(), 5u);
  EXPECT_EQ(h.b.count() + h.a.port(0).drops(), 5u);
}

TEST(Port, TracksMaxQueueDepth) {
  PortHarness h;
  for (int i = 0; i < 4; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  // The first packet dequeues synchronously, so the peak backlog is 3.
  EXPECT_EQ(h.a.port(0).max_queue_bytes(), 3u * 1048u);
  EXPECT_EQ(h.a.port(0).queue_bytes(), 0u);
}

TEST(Port, RedMarksAlwaysAboveKmax) {
  PortHarness h;
  sim::Rng rng(1);
  RedParams red;
  red.enabled = true;
  red.kmin_bytes = 1000;
  red.kmax_bytes = 3000;
  red.pmax = 0.01;
  h.a.port(0).set_red(red);
  h.a.port(0).set_rng(&rng);
  for (int i = 0; i < 8; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run();
  // Packets enqueued while backlog >= kmax must be marked.
  int marked_late = 0;
  for (std::size_t i = 4; i < h.b.count(); ++i) {
    if (h.b.arrivals()[i].packet.ecn) ++marked_late;
  }
  EXPECT_EQ(marked_late, 4);
  // The first packet saw an empty queue: never marked.
  EXPECT_FALSE(h.b.arrivals()[0].packet.ecn);
}

TEST(Port, RedMarkingIsProbabilisticBetweenThresholds) {
  // Statistical: between kmin and kmax the marking probability interpolates
  // linearly up to pmax; with pmax = 1.0 and a queue held at the midpoint,
  // roughly half of enqueued packets should be marked.
  sim::Simulator simulator;
  PacketPool pool;
  SinkNode a(simulator, 0, "a"), b(simulator, 1, "b");
  test::bind_pool(pool, {&a, &b});
  a.add_port();
  b.add_port();
  // Slow link so the queue stays put while we enqueue.
  a.port(0).connect(&b, 0, sim::gbps(0.001), 0);
  b.port(0).connect(&a, 0, sim::gbps(0.001), 0);
  sim::Rng rng(2);
  RedParams red;
  red.enabled = true;
  red.kmin_bytes = 0;
  red.kmax_bytes = 200 * 1048;
  red.pmax = 1.0;
  a.port(0).set_red(red);
  a.port(0).set_rng(&rng);
  int marked = 0;
  const int n = 100;  // backlog ramps 0..~n packets: mean mark prob ~ 0.25
  for (int i = 0; i < n; ++i) {
    Packet p = test_packet(1000);
    a.port(0).enqueue(std::move(p));
  }
  simulator.run();
  for (const auto& arr : b.arrivals()) {
    if (arr.packet.ecn) ++marked;
  }
  EXPECT_GT(marked, 5);
  EXPECT_LT(marked, 60);
}

}  // namespace
}  // namespace fastcc::net
