// Randomized robustness properties for every congestion controller: under
// arbitrary (but well-formed) feedback streams, windows and rates must stay
// finite, positive, and within [floor, line-rate] bounds — no NaNs, no
// runaway state, regardless of feedback ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "cc/engine.h"
#include "net/flow.h"
#include "sim/random.h"

namespace fastcc::cc {
namespace {

constexpr sim::Time kBaseRtt = 5000;
constexpr sim::Rate kLine = sim::gbps(100);

struct FuzzCase {
  const char* protocol;
  std::uint64_t seed;
};

class CcFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  sim::Rng cc_rng_{99};

  CcEngine make(const std::string& name) {
    if (name == "hpcc") return Hpcc(HpccParams{}, &cc_rng_);
    if (name == "hpcc-vai-sf") {
      HpccParams p;
      p.sampling_freq = 30;
      p.vai = hpcc_paper_vai(50'000);
      return Hpcc(p, &cc_rng_);
    }
    if (name == "swift") return Swift(SwiftParams{}, &cc_rng_);
    if (name == "swift-vai-sf") {
      SwiftParams p;
      p.sampling_freq = 30;
      p.always_ai = true;
      p.use_fbs = false;
      p.vai = swift_paper_vai(7000, kBaseRtt, 4000);
      return Swift(p, &cc_rng_);
    }
    if (name == "timely") return Timely(TimelyParams{});
    if (name == "dcqcn") return Dcqcn(DcqcnParams{});
    ADD_FAILURE() << "unknown protocol " << name;
    return {};
  }
};

TEST_P(CcFuzz, StateStaysBoundedUnderRandomFeedback) {
  const FuzzCase param = GetParam();
  sim::Rng rng(param.seed);
  CcEngine cc = make(param.protocol);
  ASSERT_TRUE(static_cast<bool>(cc));

  net::FlowTx flow;
  flow.spec.size_bytes = 1'000'000'000;
  flow.line_rate = kLine;
  flow.base_rtt = kBaseRtt;
  flow.mtu = 1000;
  flow.path_hops = 2;
  cc.on_flow_start(flow);

  sim::Time now = 0;
  std::uint64_t acked = 0;
  std::uint64_t tx_bytes = 0;
  net::IntRecord ints[1];

  for (int i = 0; i < 5000; ++i) {
    now += rng.uniform_int(1, 5000);
    // Fire any controller deadlines that fell due, as the host wheel would.
    for (sim::Time t; (t = cc.next_timer()) >= 0 && t <= now;) {
      cc.on_timer(now, flow);
    }
    const sim::Time rtt = kBaseRtt + rng.uniform_int(0, 100'000);
    acked += 1000;
    tx_bytes += static_cast<std::uint64_t>(rng.uniform(0.0, 1.0) * 12'500);

    AckContext ctx;
    ctx.now = now;
    ctx.rtt = rtt;
    ctx.ack_seq = acked;
    ctx.bytes_acked = 1000;
    ctx.ecn = rng.chance(0.1);
    ctx.cnp = rng.chance(0.02);
    ints[0].timestamp = now - rng.uniform_int(0, 1000);
    ints[0].tx_bytes = tx_bytes;
    ints[0].qlen_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 500'000));
    ints[0].bandwidth = kLine;
    ctx.ints = std::span<const net::IntRecord>(ints, 1);
    flow.snd_nxt = acked + static_cast<std::uint64_t>(rng.uniform_int(0, 60)) * 1000;

    cc.on_ack(ctx, flow);

    ASSERT_TRUE(std::isfinite(flow.window_bytes)) << "ack " << i;
    ASSERT_TRUE(std::isfinite(flow.rate)) << "ack " << i;
    ASSERT_GT(flow.window_bytes, 0.0) << "ack " << i;
    ASSERT_GT(flow.rate, 0.0) << "ack " << i;
    // Rate never exceeds line rate... except window-protocols may ask for
    // more; the NIC clamps.  Enforce a sane ceiling anyway.
    ASSERT_LE(flow.rate, kLine * 1.0001) << "ack " << i;
  }
  // Drain remaining controller deadlines: they must quiesce, not re-arm
  // forever (the bounded guard below would otherwise trip).
  int guard = 0;
  for (sim::Time t; (t = cc.next_timer()) >= 0;) {
    now = t > now ? t : now;
    cc.on_timer(now, flow);
    ASSERT_LT(++guard, 100'000) << "controller timers never quiesce";
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, CcFuzz,
    ::testing::Values(FuzzCase{"hpcc", 1}, FuzzCase{"hpcc", 2},
                      FuzzCase{"hpcc-vai-sf", 3}, FuzzCase{"hpcc-vai-sf", 4},
                      FuzzCase{"swift", 5}, FuzzCase{"swift", 6},
                      FuzzCase{"swift-vai-sf", 7}, FuzzCase{"swift-vai-sf", 8},
                      FuzzCase{"timely", 9}, FuzzCase{"timely", 10},
                      FuzzCase{"dcqcn", 11}, FuzzCase{"dcqcn", 12}),
    [](const auto& param_info) {
      std::string name = param_info.param.protocol;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace fastcc::cc
