// Full-scale smoke test: the paper's 320-host fat-tree carries real traffic
// end to end (a brief low-load slice of the Figure 10 configuration), so the
// `--full` bench path is known-good without paying hours of CPU in CI.
#include <gtest/gtest.h>

#include "experiments/datacenter.h"
#include "workload/distributions.h"

namespace fastcc::exp {
namespace {

TEST(FullScale, PaperTopologyCarriesHadoopTraffic) {
  DatacenterConfig c;
  c.variant = Variant::kHpccVaiSf;
  c.topo = topo::full_scale_fat_tree();
  c.components = {{&workload::hadoop_cdf(), 1.0}};
  c.load = 0.1;
  c.generate_duration = 60 * sim::kMicrosecond;
  const DatacenterResult r = run_datacenter(c);
  EXPECT_GT(r.flows.size(), 50u);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_EQ(r.drops, 0u);
  for (const auto& f : r.flows) {
    EXPECT_GE(f.slowdown(), 0.999);
  }
}

TEST(FullScale, CrossPodFlowsUseTheSpineLayer) {
  // Path metrics on the full topology: worst case 6 links / 5 switch hops,
  // the value Swift's topology scaling relies on.
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTree tree = build_fat_tree(network, topo::full_scale_fat_tree());
  int max_hops = 0;
  // First host against a representative in every pod.
  for (int pod = 0; pod < 5; ++pod) {
    const net::PathInfo p = network.path(
        tree.hosts[0]->id(), tree.hosts[pod * 64 + 63]->id());
    max_hops = std::max(max_hops, p.hops);
  }
  EXPECT_EQ(max_hops, 6);
}

}  // namespace
}  // namespace fastcc::exp
