// Host/NIC datapath: windowing, pacing, per-packet ACKs, flow completion.
#include "net/host.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.h"
#include "sim/simulator.h"
#include "stats/fct.h"
#include "test_util.h"
#include "topo/star.h"

namespace fastcc::net {
namespace {

using test::FixedCc;

struct HostHarness : ::testing::Test {
  sim::Simulator simulator;
  Network network{simulator};
  topo::Star star;

  void SetUp() override {
    topo::StarParams params;
    params.host_count = 3;
    star = build_star(network, params);
  }

  FlowTx make_flow(FlowId id, Host* src, Host* dst, std::uint64_t bytes,
                   std::unique_ptr<cc::CongestionControl> cc) {
    const PathInfo path = network.path(src->id(), dst->id());
    FlowTx f;
    f.spec.id = id;
    f.spec.src = src->id();
    f.spec.dst = dst->id();
    f.spec.size_bytes = bytes;
    f.spec.start_time = simulator.now();
    f.line_rate = src->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::move(cc);
    return f;
  }
};

TEST_F(HostHarness, SoloFlowCompletesNearIdealFct) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  const std::uint64_t size = 500'000;
  src->start_flow(make_flow(1, src, dst, size,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  simulator.run();
  const FlowTx* f = src->flow(1);
  ASSERT_TRUE(f->finished());
  const PathInfo path = network.path(src->id(), dst->id());
  const sim::Time ideal = stats::ideal_fct(path, size, kDefaultMtu);
  EXPECT_GE(f->finish_time, ideal);
  // An unloaded path should complete within 5% of the analytic minimum.
  EXPECT_LT(static_cast<double>(f->finish_time),
            1.05 * static_cast<double>(ideal));
}

TEST_F(HostHarness, EveryByteIsAcked) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[2];
  const std::uint64_t size = 123'457;  // non-multiple of MTU
  src->start_flow(make_flow(1, src, dst, size,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  simulator.run();
  const FlowTx* f = src->flow(1);
  EXPECT_EQ(f->cum_acked, size);
  EXPECT_EQ(f->snd_nxt, size);
  // 124 MTU-sized packets (123 full + 1 partial of 457 B).
  EXPECT_EQ(f->acks_received, (size + kDefaultMtu - 1) / kDefaultMtu);
}

TEST_F(HostHarness, PacingRateBoundsThroughput) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  const std::uint64_t size = 100'000;
  const sim::Rate rate = sim::gbps(10);  // 10x below line rate
  src->start_flow(
      make_flow(1, src, dst, size, std::make_unique<FixedCc>(1e12, rate)));
  simulator.run();
  const FlowTx* f = src->flow(1);
  // 100 packets * 1048 wire bytes at 1.25 B/ns ~ 84 us minimum.
  const double min_duration = 100.0 * 1048.0 / rate;
  EXPECT_GT(static_cast<double>(f->finish_time), 0.95 * min_duration);
}

TEST_F(HostHarness, WindowLimitsInflightBytes) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  // Window of 2 MTUs: at most 2 packets in flight; completion takes at least
  // (packets/2) RTT-ish round trips.
  const std::uint64_t size = 50'000;
  src->start_flow(make_flow(
      1, src, dst, size, std::make_unique<FixedCc>(2000.0, sim::gbps(100))));
  const PathInfo path = network.path(src->id(), dst->id());
  simulator.run();
  const FlowTx* f = src->flow(1);
  // 50 packets, 2 per window turn -> >= 24 additional RTT-ish waits.
  EXPECT_GT(f->finish_time, 24 * (path.base_rtt - 200));
}

TEST_F(HostHarness, SubMtuWindowStillProgresses) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  src->start_flow(make_flow(
      1, src, dst, 5'000, std::make_unique<FixedCc>(10.0, sim::gbps(100))));
  simulator.run();
  EXPECT_TRUE(src->flow(1)->finished());
}

TEST_F(HostHarness, ConcurrentFlowsShareTheNic) {
  Host* src = star.hosts[0];
  Host* d1 = star.hosts[1];
  Host* d2 = star.hosts[2];
  src->start_flow(make_flow(1, src, d1, 100'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  src->start_flow(make_flow(2, src, d2, 100'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  EXPECT_EQ(src->active_flow_count(), 2u);
  simulator.run();
  EXPECT_TRUE(src->flow(1)->finished());
  EXPECT_TRUE(src->flow(2)->finished());
  EXPECT_EQ(src->active_flow_count(), 0u);
  // Two flows through one 100 Gbps NIC: at least 200 KB of serialization.
  EXPECT_GT(simulator.now(), 2 * 100 * 1048 * 8 / 1000 / 2);
}

TEST_F(HostHarness, IncrementalRateSumMatchesRecompute) {
  // Host::total_send_rate() folds per-flow deltas into a running sum (O(1)
  // per CC update) instead of summing all flows per monitor sample.  It must
  // track the O(n) recompute through flow start, rate divergence, and the
  // contribution dropping to zero at finish — within FP accumulation error.
  Host* src = star.hosts[0];
  Host* d1 = star.hosts[1];
  Host* d2 = star.hosts[2];
  src->start_flow(make_flow(1, src, d1, 200'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(40))));
  src->start_flow(make_flow(2, src, d2, 50'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(25))));
  int samples = 0;
  for (int i = 1; i <= 40; ++i) {
    simulator.after(i * 2 * sim::kMicrosecond, [&] {
      ++samples;
      EXPECT_NEAR(src->total_send_rate(), src->total_send_rate_recomputed(),
                  1e-6 * (1.0 + src->total_send_rate_recomputed()))
          << "at t=" << simulator.now();
    });
  }
  simulator.run();
  EXPECT_EQ(samples, 40);
  // Both flows done: the incremental sum must have returned exactly to the
  // recomputed value (zero), not drifted.
  EXPECT_TRUE(src->flow(1)->finished());
  EXPECT_TRUE(src->flow(2)->finished());
  EXPECT_NEAR(src->total_send_rate(), 0.0, 1e-6);
  EXPECT_EQ(src->total_send_rate_recomputed(), 0.0);
}

TEST_F(HostHarness, CompletionCallbackFiresOnce) {
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  int calls = 0;
  src->set_completion_callback([&](const FlowTx& f) {
    ++calls;
    EXPECT_EQ(f.spec.id, 1u);
    EXPECT_TRUE(f.finished());
  });
  src->start_flow(make_flow(1, src, dst, 10'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  simulator.run();
  EXPECT_EQ(calls, 1);
}

TEST_F(HostHarness, CnpFlagRateLimited) {
  // Two ECN-marked data packets arriving close together must produce exactly
  // one CNP-flagged ACK (DCQCN receiver rule).
  Host* src = star.hosts[0];
  Host* dst = star.hosts[1];
  dst->set_cnp_interval(50 * sim::kMicrosecond);
  RedParams red;
  red.enabled = true;
  red.kmin_bytes = 0;
  red.kmax_bytes = 1;  // mark everything
  red.pmax = 1.0;
  network.set_red_all(red);
  src->start_flow(make_flow(1, src, dst, 10'000,
                            std::make_unique<FixedCc>(1e12, sim::gbps(100))));
  simulator.run();
  // The flow lasts ~10 us < 50 us: only the first marked packet triggers CNP.
  // Indirectly verified: the flow completes and at least one ack carried the
  // echo.  Direct CNP accounting is covered in dcqcn_test.
  EXPECT_TRUE(src->flow(1)->finished());
}

}  // namespace
}  // namespace fastcc::net
