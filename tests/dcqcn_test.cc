// DCQCN unit tests: CNP reaction, alpha dynamics, staged recovery.
#include "cc/dcqcn.h"

#include <gtest/gtest.h>

#include "net/flow.h"
#include "sim/simulator.h"

namespace fastcc::cc {
namespace {

constexpr sim::Rate kLine = sim::gbps(100);

struct DcqcnHarness {
  sim::Simulator simulator;
  DcqcnParams params;
  net::FlowTx flow;
  std::unique_ptr<Dcqcn> cc;

  DcqcnHarness() {
    flow.spec.size_bytes = 1'000'000'000;
    flow.line_rate = kLine;
    flow.base_rtt = 5000;
    flow.mtu = 1000;
    cc = std::make_unique<Dcqcn>(params, simulator);
    cc->on_flow_start(flow);
  }

  void ack(bool cnp, std::uint32_t bytes = 1000) {
    AckContext ctx;
    ctx.now = simulator.now();
    ctx.rtt = 6000;
    ctx.cnp = cnp;
    ctx.bytes_acked = bytes;
    cc->on_ack(ctx, flow);
  }
};

TEST(Dcqcn, StartsAtLineRateWithUnlimitedWindow) {
  DcqcnHarness h;
  EXPECT_DOUBLE_EQ(h.flow.rate, kLine);
  EXPECT_GT(h.flow.window_bytes, 1e15);
}

TEST(Dcqcn, CnpCutsRateByAlphaHalf) {
  DcqcnHarness h;
  // First CNP: alpha ~1 -> rate roughly halves.
  h.ack(true);
  EXPECT_NEAR(h.flow.rate, kLine * 0.5, kLine * 0.01);
  EXPECT_DOUBLE_EQ(h.cc->target_rate(), kLine);
}

TEST(Dcqcn, RepeatedCnpsKeepCutting) {
  DcqcnHarness h;
  h.ack(true);
  const double after_one = h.flow.rate;
  h.ack(true);
  EXPECT_LT(h.flow.rate, after_one);
  EXPECT_GE(h.flow.rate, h.params.min_rate);
}

TEST(Dcqcn, RateNeverBelowMinRate) {
  DcqcnHarness h;
  for (int i = 0; i < 100; ++i) h.ack(true);
  EXPECT_GE(h.flow.rate, h.params.min_rate);
}

TEST(Dcqcn, AlphaDecaysWithoutCnps) {
  DcqcnHarness h;
  h.ack(true);
  const double alpha_after_cnp = h.cc->alpha();
  h.simulator.run(h.simulator.now() + 20 * h.params.alpha_update_interval);
  EXPECT_LT(h.cc->alpha(), alpha_after_cnp * 0.95);
}

TEST(Dcqcn, TimerDrivenRecoveryClimbsBackTowardTarget) {
  DcqcnHarness h;
  h.ack(true);
  const double cut_rate = h.flow.rate;
  // Let several increase-timer periods elapse (fast recovery halves the gap
  // to the pre-cut target each time).
  h.simulator.run(h.simulator.now() + 6 * h.params.rate_increase_timer);
  EXPECT_GT(h.flow.rate, cut_rate * 1.5);
}

TEST(Dcqcn, ByteCounterDrivesRecoveryToo) {
  DcqcnHarness h;
  h.ack(true);
  const double cut_rate = h.flow.rate;
  // Ack one full byte-counter worth of data without CNPs.
  const int acks = static_cast<int>(h.params.byte_counter / 1000) + 1;
  for (int i = 0; i < acks; ++i) h.ack(false);
  EXPECT_GT(h.flow.rate, cut_rate);
}

TEST(Dcqcn, HyperIncreaseAfterManyQuietStages) {
  DcqcnHarness h;
  h.ack(true);
  // Run long enough for timer stages to pass fast recovery into additive /
  // hyper territory: rate should recover essentially to line rate.
  h.simulator.run(h.simulator.now() + 60 * h.params.rate_increase_timer);
  EXPECT_GT(h.flow.rate, 0.95 * kLine);
}

TEST(Dcqcn, TimersStopOnceFlowFinishes) {
  DcqcnHarness h;
  h.ack(true);
  h.flow.finish_time = h.simulator.now();  // flow completes
  // Each armed timer may fire once more, observe the finished flow, and must
  // not re-arm — otherwise simulations would never drain their event queues.
  const auto executed = h.simulator.events_executed();
  h.simulator.run(h.simulator.now() + 100 * h.params.rate_increase_timer);
  EXPECT_LE(h.simulator.events_executed() - executed, 2u);
}

TEST(Dcqcn, RecoveryTimerQuiescesAtLineRate) {
  DcqcnHarness h;
  h.ack(true);
  // Long quiet period: rate snaps back to exactly line rate and the
  // increase timer stops re-arming (alpha decay may still tick).
  h.simulator.run(h.simulator.now() + 100 * h.params.rate_increase_timer);
  EXPECT_DOUBLE_EQ(h.flow.rate, kLine);
}

TEST(Dcqcn, CnpAfterRecoveryRestartsCycle) {
  DcqcnHarness h;
  h.ack(true);
  h.simulator.run(h.simulator.now() + 60 * h.params.rate_increase_timer);
  ASSERT_GT(h.flow.rate, 0.9 * kLine);
  h.ack(true);
  EXPECT_LT(h.flow.rate, 0.8 * kLine);
}

}  // namespace
}  // namespace fastcc::cc
