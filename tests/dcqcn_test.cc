// DCQCN unit tests: CNP reaction, alpha dynamics, staged recovery.
//
// DCQCN no longer schedules its own simulator events; it exposes deadlines
// via next_timer() and the owning Host pumps on_timer() from its timing
// wheel.  The harness plays the Host's role: run_until() fires every due
// deadline in order, exactly as the wheel would.
#include "cc/dcqcn.h"

#include <gtest/gtest.h>

#include "net/flow.h"

namespace fastcc::cc {
namespace {

constexpr sim::Rate kLine = sim::gbps(100);

struct DcqcnHarness {
  DcqcnParams params;
  net::FlowTx flow;
  Dcqcn cc{params};
  sim::Time now = 0;

  DcqcnHarness() {
    flow.spec.size_bytes = 1'000'000'000;
    flow.line_rate = kLine;
    flow.base_rtt = 5000;
    flow.mtu = 1000;
    cc.on_flow_start(flow);
  }

  void ack(bool cnp, std::uint32_t bytes = 1000) {
    AckContext ctx;
    ctx.now = now;
    ctx.rtt = 6000;
    ctx.cnp = cnp;
    ctx.bytes_acked = bytes;
    cc.on_ack(ctx, flow);
  }

  /// Fires every controller deadline up to `until`, like the host wheel.
  void run_until(sim::Time until) {
    while (true) {
      const sim::Time t = cc.next_timer();
      if (t < 0 || t > until) break;
      now = t;
      cc.on_timer(now, flow);
    }
    now = until;
  }
};

TEST(Dcqcn, StartsAtLineRateWithUnlimitedWindow) {
  DcqcnHarness h;
  EXPECT_DOUBLE_EQ(h.flow.rate, kLine);
  EXPECT_GT(h.flow.window_bytes, 1e15);
}

TEST(Dcqcn, CnpCutsRateByAlphaHalf) {
  DcqcnHarness h;
  // First CNP: alpha ~1 -> rate roughly halves.
  h.ack(true);
  EXPECT_NEAR(h.flow.rate, kLine * 0.5, kLine * 0.01);
  EXPECT_DOUBLE_EQ(h.cc.target_rate(), kLine);
}

TEST(Dcqcn, RepeatedCnpsKeepCutting) {
  DcqcnHarness h;
  h.ack(true);
  const double after_one = h.flow.rate;
  h.ack(true);
  EXPECT_LT(h.flow.rate, after_one);
  EXPECT_GE(h.flow.rate, h.params.min_rate);
}

TEST(Dcqcn, RateNeverBelowMinRate) {
  DcqcnHarness h;
  for (int i = 0; i < 100; ++i) h.ack(true);
  EXPECT_GE(h.flow.rate, h.params.min_rate);
}

TEST(Dcqcn, AlphaDecaysWithoutCnps) {
  DcqcnHarness h;
  h.ack(true);
  const double alpha_after_cnp = h.cc.alpha();
  h.run_until(h.now + 20 * h.params.alpha_update_interval);
  EXPECT_LT(h.cc.alpha(), alpha_after_cnp * 0.95);
}

TEST(Dcqcn, TimerDrivenRecoveryClimbsBackTowardTarget) {
  DcqcnHarness h;
  h.ack(true);
  const double cut_rate = h.flow.rate;
  // Let several increase-timer periods elapse (fast recovery halves the gap
  // to the pre-cut target each time).
  h.run_until(h.now + 6 * h.params.rate_increase_timer);
  EXPECT_GT(h.flow.rate, cut_rate * 1.5);
}

TEST(Dcqcn, ByteCounterDrivesRecoveryToo) {
  DcqcnHarness h;
  h.ack(true);
  const double cut_rate = h.flow.rate;
  // Ack one full byte-counter worth of data without CNPs.
  const int acks = static_cast<int>(h.params.byte_counter / 1000) + 1;
  for (int i = 0; i < acks; ++i) h.ack(false);
  EXPECT_GT(h.flow.rate, cut_rate);
}

TEST(Dcqcn, HyperIncreaseAfterManyQuietStages) {
  DcqcnHarness h;
  h.ack(true);
  // Run long enough for timer stages to pass fast recovery into additive /
  // hyper territory: rate should recover essentially to line rate.
  h.run_until(h.now + 60 * h.params.rate_increase_timer);
  EXPECT_GT(h.flow.rate, 0.95 * kLine);
}

TEST(Dcqcn, TimersQuiesceAfterFullRecovery) {
  DcqcnHarness h;
  h.ack(true);
  // Once the rate snaps back to line and alpha decays away, next_timer()
  // must report no deadline — otherwise the owning host's wheel would tick
  // forever and simulations would never drain their event queues.
  h.run_until(h.now + 5000 * h.params.alpha_update_interval);
  EXPECT_EQ(h.cc.next_timer(), sim::Time{-1});
}

TEST(Dcqcn, RecoveryTimerQuiescesAtLineRate) {
  DcqcnHarness h;
  h.ack(true);
  // Long quiet period: rate snaps back to exactly line rate and the
  // increase timer stops re-arming (alpha decay may still tick).
  h.run_until(h.now + 100 * h.params.rate_increase_timer);
  EXPECT_DOUBLE_EQ(h.flow.rate, kLine);
}

TEST(Dcqcn, CnpAfterRecoveryRestartsCycle) {
  DcqcnHarness h;
  h.ack(true);
  h.run_until(h.now + 60 * h.params.rate_increase_timer);
  ASSERT_GT(h.flow.rate, 0.9 * kLine);
  h.ack(true);
  EXPECT_LT(h.flow.rate, 0.8 * kLine);
}

}  // namespace
}  // namespace fastcc::cc
