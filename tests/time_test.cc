#include "sim/time.h"

#include <gtest/gtest.h>

namespace fastcc::sim {
namespace {

TEST(Time, UnitConstantsCompose) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(Time, GbpsConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(gbps(100.0), 12.5);  // 100 Gbps == 12.5 B/ns
  EXPECT_DOUBLE_EQ(gbps(400.0), 50.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(37.5)), 37.5);
}

TEST(Time, SerializationIsExactForPaperRates) {
  // 1 KB payload + 48 B header at 100 Gbps: 1048 / 12.5 = 83.84 -> 84 ns.
  EXPECT_EQ(serialization_time(1048, gbps(100)), 84);
  // Exact division stays exact: 1000 B at 100 Gbps = 80 ns.
  EXPECT_EQ(serialization_time(1000, gbps(100)), 80);
  // 400 Gbps fabric: 1000 B = 20 ns.
  EXPECT_EQ(serialization_time(1000, gbps(400)), 20);
}

TEST(Time, SerializationRoundsUpNeverDown) {
  // A transmitter must never finish early.
  EXPECT_EQ(serialization_time(1, gbps(100)), 1);    // 0.08 -> 1
  EXPECT_EQ(serialization_time(64, gbps(400)), 2);   // 1.28 -> 2
  EXPECT_EQ(serialization_time(0, gbps(100)), 0);
}

TEST(Time, SerializationScalesLinearly) {
  const Time one = serialization_time(1000, gbps(100));
  const Time ten = serialization_time(10000, gbps(100));
  EXPECT_EQ(ten, 10 * one);
}

}  // namespace
}  // namespace fastcc::sim
