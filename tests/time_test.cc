#include "sim/time.h"

#include <gtest/gtest.h>

namespace fastcc::sim {
namespace {

TEST(Time, UnitConstantsCompose) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(Time, GbpsConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(gbps(100.0), 12.5);  // 100 Gbps == 12.5 B/ns
  EXPECT_DOUBLE_EQ(gbps(400.0), 50.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(37.5)), 37.5);
}

TEST(Time, SerializationIsExactForPaperRates) {
  // 1 KB payload + 48 B header at 100 Gbps: 1048 / 12.5 = 83.84 -> 84 ns.
  EXPECT_EQ(serialization_time(1048, gbps(100)), 84);
  // Exact division stays exact: 1000 B at 100 Gbps = 80 ns.
  EXPECT_EQ(serialization_time(1000, gbps(100)), 80);
  // 400 Gbps fabric: 1000 B = 20 ns.
  EXPECT_EQ(serialization_time(1000, gbps(400)), 20);
}

TEST(Time, SerializationRoundsUpNeverDown) {
  // A transmitter must never finish early.
  EXPECT_EQ(serialization_time(1, gbps(100)), 1);    // 0.08 -> 1
  EXPECT_EQ(serialization_time(64, gbps(400)), 2);   // 1.28 -> 2
  EXPECT_EQ(serialization_time(0, gbps(100)), 0);
}

TEST(Time, SerializationGuardsDegenerateInputs) {
  // Non-positive byte counts cost zero time.
  EXPECT_EQ(serialization_time(0, gbps(100)), 0);
  EXPECT_EQ(serialization_time(-1, gbps(100)), 0);
  EXPECT_EQ(serialization_time(-1'000'000, gbps(100)), 0);
  // A zero or negative rate means "this link never finishes": kMaxTime, not
  // the UB of casting an infinite double to int64.
  EXPECT_EQ(serialization_time(1000, 0.0), kMaxTime);
  EXPECT_EQ(serialization_time(1000, -12.5), kMaxTime);
  EXPECT_EQ(serialization_time(1, 0.0), kMaxTime);
}

TEST(Time, SerializationSaturatesInsteadOfOverflowing) {
  // A huge transfer over a denormal-slow link exceeds the Time range; the
  // result clamps to kMaxTime instead of wrapping.
  const Rate crawl = 1e-12;  // ~one byte per 1000 s
  EXPECT_EQ(serialization_time((std::int64_t{1} << 62), crawl), kMaxTime);
  // Just inside the representable range still computes normally: 1e6 B at
  // 1e-12 B/ns is ~1e18 ns, comfortably below kMaxTime (~9.2e18).
  const Time huge = serialization_time(1'000'000, crawl);
  EXPECT_LT(huge, kMaxTime);
  EXPECT_GT(huge, Time{900'000'000'000'000'000});
}

TEST(Time, SerializationCeilContract) {
  // ceil(bytes / rate): result * rate >= bytes and (result-1) * rate < bytes
  // for every sampled operating point.
  const std::int64_t sizes[] = {1, 63, 64, 1000, 1048, 4096, 1'000'000};
  const Rate rates[] = {gbps(10), gbps(25), gbps(100), gbps(400), 3.0, 7.0};
  for (std::int64_t bytes : sizes) {
    for (Rate rate : rates) {
      const Time t = serialization_time(bytes, rate);
      EXPECT_GE(static_cast<double>(t) * rate, static_cast<double>(bytes))
          << bytes << " B @ " << rate << " B/ns";
      EXPECT_LT(static_cast<double>(t - 1) * rate, static_cast<double>(bytes))
          << bytes << " B @ " << rate << " B/ns";
    }
  }
}

TEST(Time, SerializationScalesLinearly) {
  const Time one = serialization_time(1000, gbps(100));
  const Time ten = serialization_time(10000, gbps(100));
  EXPECT_EQ(ten, 10 * one);
}

}  // namespace
}  // namespace fastcc::sim
