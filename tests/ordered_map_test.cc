#include "util/ordered_map.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace fastcc::util {
namespace {

TEST(InsertionOrderedMap, IteratesInInsertionOrder) {
  InsertionOrderedMap<int, std::string> m;
  // Keys chosen to collide-and-scatter in typical hash layouts: insertion
  // order, not key order or hash order, must come back out.
  const int keys[] = {42, 7, 1024, 3, 512, 9};
  for (int k : keys) m.try_emplace(k, "v" + std::to_string(k));

  std::vector<int> seen;
  for (const auto& [k, v] : m) {
    seen.push_back(k);
    EXPECT_EQ(v, "v" + std::to_string(k));
  }
  EXPECT_EQ(seen, std::vector<int>(std::begin(keys), std::end(keys)));
}

TEST(InsertionOrderedMap, TryEmplaceIsFirstWriterWins) {
  InsertionOrderedMap<int, std::string> m;
  auto [first, inserted1] = m.try_emplace(5, "first");
  EXPECT_TRUE(inserted1);
  auto [again, inserted2] = m.try_emplace(5, "second");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(first, again);
  EXPECT_EQ(*again, "first");
  EXPECT_EQ(m.size(), 1u);
}

TEST(InsertionOrderedMap, FindReturnsNullForMissing) {
  InsertionOrderedMap<int, double> m;
  EXPECT_EQ(m.find(1), nullptr);
  m.try_emplace(1, 2.5);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 2.5);
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(2));

  const auto& cm = m;
  ASSERT_NE(cm.find(1), nullptr);
  EXPECT_EQ(cm.find(2), nullptr);
}

TEST(InsertionOrderedMap, SubscriptDefaultConstructs) {
  InsertionOrderedMap<std::string, int> m;
  EXPECT_EQ(m["a"], 0);
  m["a"] = 7;
  m["b"] = 9;
  EXPECT_EQ(m["a"], 7);
  EXPECT_EQ(m.size(), 2u);
}

TEST(InsertionOrderedMap, MoveOnlyValues) {
  InsertionOrderedMap<int, std::unique_ptr<int>> m;
  auto [slot, inserted] = m.try_emplace(1, std::make_unique<int>(41));
  ASSERT_TRUE(inserted);
  **slot += 1;
  EXPECT_EQ(**m.find(1), 42);
}

TEST(InsertionOrderedMap, StableOrderAcrossGrowth) {
  InsertionOrderedMap<int, int> m;
  const int n = 10'000;  // forces many rehashes of the index and vector growth
  for (int i = 0; i < n; ++i) m.try_emplace(i * 7 + 3, i);
  int expected = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, expected * 7 + 3);
    EXPECT_EQ(v, expected);
    ++expected;
  }
  EXPECT_EQ(expected, n);
}

}  // namespace
}  // namespace fastcc::util
