// Parallel sweep correctness: results must be identical to serial runs and
// ordered like the inputs, for any worker count.
#include "experiments/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <mutex>

namespace fastcc::exp {
namespace {

std::vector<IncastConfig> sweep_configs() {
  std::vector<IncastConfig> configs;
  for (const Variant v : {Variant::kHpcc, Variant::kHpccVaiSf,
                          Variant::kSwift, Variant::kSwiftVaiSf}) {
    IncastConfig c;
    c.variant = v;
    c.pattern.senders = 6;
    c.pattern.flow_bytes = 100'000;
    c.star.host_count = 7;
    configs.push_back(c);
  }
  return configs;
}

TEST(ParallelRunner, MatchesSerialExecution) {
  const auto configs = sweep_configs();
  std::vector<IncastResult> serial;
  for (const auto& c : configs) serial.push_back(run_incast(c));
  const auto parallel = run_incast_parallel(configs, 4);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].events_executed, serial[i].events_executed);
    EXPECT_EQ(parallel[i].completion_time, serial[i].completion_time);
    ASSERT_EQ(parallel[i].flows.size(), serial[i].flows.size());
    for (std::size_t f = 0; f < serial[i].flows.size(); ++f) {
      EXPECT_EQ(parallel[i].flows[f].finish, serial[i].flows[f].finish);
    }
  }
}

TEST(ParallelRunner, SingleThreadFallback) {
  const auto configs = sweep_configs();
  const auto one = run_incast_parallel(configs, 1);
  const auto many = run_incast_parallel(configs, 8);
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].events_executed, many[i].events_executed);
  }
}

// The determinism contract: a sweep's results are a pure function of its
// configs, independent of how many workers executed it.  Compares every
// observable of every run — full per-flow timings and the sampled series,
// not just summary counters — across worker counts.
TEST(ParallelRunner, ThreadCountInvariance) {
  const auto configs = sweep_configs();
  const auto baseline = run_incast_parallel(configs, 1);
  for (int threads : {2, 8}) {
    const auto got = run_incast_parallel(configs, threads);
    ASSERT_EQ(got.size(), baseline.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " config=" + std::to_string(i));
      const IncastResult& a = baseline[i];
      const IncastResult& b = got[i];
      EXPECT_EQ(b.events_executed, a.events_executed);
      EXPECT_EQ(b.completion_time, a.completion_time);
      EXPECT_EQ(b.drops, a.drops);
      ASSERT_EQ(b.flows.size(), a.flows.size());
      for (std::size_t f = 0; f < a.flows.size(); ++f) {
        EXPECT_EQ(b.flows[f].id, a.flows[f].id);
        EXPECT_EQ(b.flows[f].start, a.flows[f].start);
        EXPECT_EQ(b.flows[f].finish, a.flows[f].finish);
      }
      ASSERT_EQ(b.jain.size(), a.jain.size());
      for (std::size_t p = 0; p < a.jain.points().size(); ++p) {
        EXPECT_EQ(b.jain.points()[p].t, a.jain.points()[p].t);
        // Bit-identical, not approximately equal: double accumulation order
        // must not depend on the worker count.
        EXPECT_EQ(b.jain.points()[p].value, a.jain.points()[p].value);
      }
      ASSERT_EQ(b.queue_bytes.size(), a.queue_bytes.size());
      for (std::size_t p = 0; p < a.queue_bytes.points().size(); ++p) {
        EXPECT_EQ(b.queue_bytes.points()[p].t, a.queue_bytes.points()[p].t);
        EXPECT_EQ(b.queue_bytes.points()[p].value, a.queue_bytes.points()[p].value);
      }
    }
  }
}

TEST(ParallelRunner, EmptySweepIsFine) {
  EXPECT_TRUE(run_incast_parallel({}, 4).empty());
}

TEST(ParallelForIndex, VisitsEveryIndexExactlyOnce) {
  std::mutex mu;
  std::set<std::size_t> seen;
  std::atomic<int> calls{0};
  parallel_for_index(100, 8, [&](std::size_t i) {
    ++calls;
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(i).second) << "index " << i << " visited twice";
  });
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ParallelForIndex, MoreWorkersThanWorkIsSafe) {
  std::atomic<int> calls{0};
  parallel_for_index(3, 64, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelForIndex, CallingThreadParticipatesAsWorkerZero) {
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> caller_ran{false};
  std::atomic<int> calls{0};
  // Spawned workers park inside their first claimed index until the caller
  // has run one itself (bounded wait, so a regression fails rather than
  // hangs).  They can pin at most workers-1 indices while parked, so the
  // caller — whose claim loop runs unconditionally after spawning — always
  // finds indices left to prove participation on.
  parallel_for_index(64, 4, [&](std::size_t) {
    ++calls;
    if (std::this_thread::get_id() == caller) {
      caller_ran = true;
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (!caller_ran && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
  });
  EXPECT_TRUE(caller_ran.load())
      << "calling thread never claimed an index: it spawned workers and "
         "parked in join() instead of working";
  EXPECT_EQ(calls.load(), 64);
}

}  // namespace
}  // namespace fastcc::exp
