// TIMELY unit tests: gradient computation, guard bands, HAI mode.
#include "cc/timely.h"

#include <gtest/gtest.h>

#include "net/flow.h"

namespace fastcc::cc {
namespace {

constexpr sim::Time kBaseRtt = 5000;
constexpr sim::Rate kLine = sim::gbps(100);

class TimelyDriver {
 public:
  explicit TimelyDriver(const TimelyParams& params) : timely_(params) {
    flow_.spec.size_bytes = 1'000'000'000;
    flow_.line_rate = kLine;
    flow_.base_rtt = kBaseRtt;
    flow_.mtu = 1000;
    timely_.on_flow_start(flow_);
  }

  void ack(sim::Time rtt, sim::Time dt = 1000) {
    now_ += dt;
    AckContext ctx;
    ctx.now = now_;
    ctx.rtt = rtt;
    ctx.bytes_acked = 1000;
    timely_.on_ack(ctx, flow_);
  }

  net::FlowTx& flow() { return flow_; }
  Timely& timely() { return timely_; }

 private:
  Timely timely_;
  net::FlowTx flow_;
  sim::Time now_ = 0;
};

TEST(Timely, StartsAtLineRate) {
  TimelyDriver d{TimelyParams{}};
  EXPECT_DOUBLE_EQ(d.flow().rate, kLine);
  EXPECT_GT(d.flow().window_bytes, 1e15);  // rate-based: unlimited window
}

TEST(Timely, BelowTlowAlwaysIncreases) {
  TimelyParams p;
  p.use_hai = false;
  TimelyDriver d{p};
  // Drag the rate down first with steep RTT growth above t_high.
  d.ack(kBaseRtt);
  for (int i = 0; i < 50; ++i) d.ack(kBaseRtt + 40'000, 30'000);
  const double low = d.flow().rate;
  ASSERT_LT(low, kLine);
  // RTT below t_low (base+2us): rate must climb by delta per ACK.
  d.ack(kBaseRtt);
  EXPECT_NEAR(d.flow().rate, low + p.additive_step, 1e-9);
}

TEST(Timely, AboveThighAlwaysDecreases) {
  TimelyDriver d{TimelyParams{}};
  d.ack(kBaseRtt);  // prime prev_rtt
  d.ack(kBaseRtt + 50'000, 30'000);  // way above t_high (base + 20 us)
  EXPECT_LT(d.flow().rate, kLine);
}

TEST(Timely, NegativeGradientInBandIncreases) {
  TimelyParams p;
  p.use_hai = false;
  TimelyDriver d{p};
  d.ack(kBaseRtt + 10'000);  // in band (between t_low and t_high)
  // Falling RTTs: negative gradient -> additive increase even though the
  // absolute RTT is elevated... rate is already at line, so drop it first.
  for (int i = 0; i < 30; ++i) d.ack(kBaseRtt + 15'000, 30'000);
  const double low = d.flow().rate;
  ASSERT_LT(low, kLine);
  d.ack(kBaseRtt + 9'000, 30'000);   // falling
  d.ack(kBaseRtt + 5'000, 30'000);   // falling further: EWMA goes negative
  EXPECT_GT(d.flow().rate, low);
}

TEST(Timely, PositiveGradientInBandDecreasesOncePerRtt) {
  TimelyDriver d{TimelyParams{}};
  d.ack(kBaseRtt + 3'000);
  // Two rising in-band samples closer together than the RTT: only one MD.
  d.ack(kBaseRtt + 6'000, 100);
  const double after_first = d.flow().rate;
  d.ack(kBaseRtt + 9'000, 100);
  EXPECT_DOUBLE_EQ(d.flow().rate, after_first);
  // After a full RTT the next decrease commits.
  d.ack(kBaseRtt + 12'000, 30'000);
  EXPECT_LT(d.flow().rate, after_first);
}

TEST(Timely, HaiKicksInAfterConsecutiveGoodUpdates) {
  TimelyParams p;
  p.hai_threshold = 5;
  p.hai_multiplier = 5;
  TimelyDriver d{p};
  d.ack(kBaseRtt);
  // Sink the rate, then recover with flat RTTs below t_low.
  for (int i = 0; i < 50; ++i) d.ack(kBaseRtt + 40'000, 30'000);
  const double start = d.flow().rate;
  for (int i = 0; i < 5; ++i) d.ack(kBaseRtt);  // streak builds
  EXPECT_TRUE(d.timely().in_hai());
  const double before_hai_step = d.flow().rate;
  d.ack(kBaseRtt);
  EXPECT_NEAR(d.flow().rate - before_hai_step, 5 * p.additive_step, 1e-9);
  EXPECT_GT(d.flow().rate, start);
}

TEST(Timely, DecreaseResetsHaiStreak) {
  TimelyParams p;
  TimelyDriver d{p};
  d.ack(kBaseRtt);
  for (int i = 0; i < 10; ++i) d.ack(kBaseRtt);
  ASSERT_TRUE(d.timely().in_hai());
  d.ack(kBaseRtt + 50'000, 30'000);  // above t_high
  EXPECT_FALSE(d.timely().in_hai());
}

TEST(Timely, RateClampedToMinAndLine) {
  TimelyParams p;
  TimelyDriver d{p};
  d.ack(kBaseRtt);
  for (int i = 0; i < 500; ++i) d.ack(kBaseRtt + 100'000, 30'000);
  EXPECT_GE(d.flow().rate, p.min_rate);
  for (int i = 0; i < 100'000 / 50; ++i) d.ack(kBaseRtt);
  EXPECT_LE(d.flow().rate, kLine);
}

}  // namespace
}  // namespace fastcc::cc
