// Swift unit tests with synthetic RTT feeds.
#include "cc/swift.h"

#include <gtest/gtest.h>

#include "net/flow.h"
#include "sim/random.h"

namespace fastcc::cc {
namespace {

constexpr sim::Time kBaseRtt = 5000;
constexpr sim::Rate kLine = sim::gbps(100);
const double kBdpPkts = kLine * kBaseRtt / 1000.0;  // 62.5 packets

class SwiftDriver {
 public:
  explicit SwiftDriver(const SwiftParams& params, sim::Rng* rng = nullptr)
      : swift_(params, rng) {
    flow_.spec.size_bytes = 1'000'000'000;
    flow_.line_rate = kLine;
    flow_.base_rtt = kBaseRtt;
    flow_.mtu = 1000;
    flow_.path_hops = 2;  // star: host-switch-host -> 1 switch hop
    swift_.on_flow_start(flow_);
  }

  void ack(sim::Time rtt, sim::Time dt = 500) {
    now_ += dt;
    AckContext ctx;
    ctx.now = now_;
    ctx.rtt = rtt;
    acked_ += 1000;
    ctx.ack_seq = acked_;
    ctx.bytes_acked = 1000;
    flow_.snd_nxt = acked_ + 10'000;  // one synthetic RTT = 10 ACKs
    swift_.on_ack(ctx, flow_);
  }

  net::FlowTx& flow() { return flow_; }
  Swift& swift() { return swift_; }

 private:
  Swift swift_;
  net::FlowTx flow_;
  sim::Time now_ = 0;
  std::uint64_t acked_ = 0;
};

TEST(Swift, StartsAtLineRateBdp) {
  SwiftDriver d{SwiftParams{}};
  EXPECT_NEAR(d.swift().cwnd(), kBdpPkts, 1e-9);
  EXPECT_DOUBLE_EQ(d.flow().rate, kLine);
}

TEST(Swift, TargetDelayUsesTopologyScaling) {
  SwiftParams p;
  p.use_fbs = false;
  Swift s(p);
  // base 5 us + 2 us per switch hop.
  EXPECT_EQ(s.target_delay(10.0, 1), 7000);
  EXPECT_EQ(s.target_delay(10.0, 5), 15000);
}

TEST(Swift, ScalingHopsCountsSwitches) {
  EXPECT_EQ(Swift::scaling_hops(2), 1);  // star
  EXPECT_EQ(Swift::scaling_hops(6), 5);  // fat-tree cross-pod
  EXPECT_EQ(Swift::scaling_hops(0), 0);
}

TEST(Swift, FbsRaisesTargetForSmallWindows) {
  SwiftParams p;  // FBS on
  Swift s(p);
  const sim::Time big = s.target_delay(p.fs_max_cwnd, 1);
  const sim::Time small = s.target_delay(p.fs_min_cwnd, 1);
  const sim::Time tiny = s.target_delay(p.fs_min_cwnd / 10, 1);
  EXPECT_GT(small, big);
  EXPECT_EQ(small - big, p.fs_range);  // full range at fs_min_cwnd
  EXPECT_EQ(tiny, small);              // clamped beyond fs_min
}

TEST(Swift, FbsIsMonotoneDecreasingInCwnd) {
  SwiftParams p;
  Swift s(p);
  sim::Time prev = s.target_delay(0.05, 1);
  for (double c = 0.1; c <= 120.0; c *= 1.5) {
    const sim::Time t = s.target_delay(c, 1);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(Swift, BelowTargetGrowsAdditively) {
  SwiftParams p;
  p.use_fbs = false;
  SwiftDriver d{p};
  const double c0 = d.swift().cwnd();
  for (int i = 0; i < 10; ++i) d.ack(kBaseRtt);  // well below 7 us target
  EXPECT_GT(d.swift().cwnd(), c0 - 1e-9);
  // ~one ai_pkts_per_rtt over the 10-ack RTT: tiny with 50 Mbps AI.
  const double ai_pkts = p.ai_rate * kBaseRtt / 1000.0;
  EXPECT_NEAR(d.swift().cwnd() - c0, ai_pkts, ai_pkts);
}

TEST(Swift, AboveTargetDecreasesAtMostOncePerRtt) {
  SwiftParams p;
  p.use_fbs = false;
  SwiftDriver d{p};
  // Two closely spaced congested ACKs: only the first may commit (the gate
  // requires a full measured RTT between decreases).
  d.ack(20'000, /*dt=*/100);
  const double after_first = d.swift().cwnd();
  d.ack(20'000, /*dt=*/100);
  EXPECT_DOUBLE_EQ(d.swift().cwnd(), after_first);
  // After a full RTT the next decrease commits.
  d.ack(20'000, /*dt=*/25'000);
  EXPECT_LT(d.swift().cwnd(), after_first);
}

TEST(Swift, MdFactorScalesWithSeverityAndFloors) {
  SwiftParams p;
  p.use_fbs = false;
  SwiftDriver mild{p}, severe{p};
  mild.ack(7'500, 10'000);    // 0.5 us over the 7 us target
  severe.ack(700'000, 10'000);  // catastily over target: floor kicks in
  const double c = kBdpPkts;
  EXPECT_GT(mild.swift().cwnd(), 0.9 * c);
  EXPECT_NEAR(severe.swift().cwnd(), p.max_mdf * c, 0.01 * c);
}

TEST(Swift, CwndClampedToMaxAndMin) {
  SwiftParams p;
  p.use_fbs = false;
  SwiftDriver d{p};
  for (int i = 0; i < 50; ++i) d.ack(kBaseRtt);
  EXPECT_LE(d.swift().cwnd(), kBdpPkts + 1.0);
  for (int i = 0; i < 2000; ++i) d.ack(1'000'000, 30'000);
  EXPECT_GE(d.swift().cwnd(), p.min_cwnd - 1e-12);
}

TEST(Swift, SubPacketWindowSwitchesToPacing) {
  SwiftParams p;
  p.use_fbs = false;
  SwiftDriver d{p};
  for (int i = 0; i < 2000; ++i) d.ack(1'000'000, 30'000);
  ASSERT_LT(d.swift().cwnd(), 1.0);
  EXPECT_LT(d.flow().rate, kLine);  // paced below line rate
  EXPECT_GT(d.flow().rate, 0.0);
}

TEST(Swift, SamplingFrequencyCommitsDecreasesEverySAcks) {
  SwiftParams p;
  p.use_fbs = false;
  p.sampling_freq = 5;
  p.always_ai = true;
  SwiftDriver d{p};
  int commits = 0;
  double last_ref = d.swift().reference_cwnd();
  for (int i = 1; i <= 20; ++i) {
    d.ack(20'000, /*dt=*/100);  // persistent congestion, sub-RTT spacing
    const double ref = d.swift().reference_cwnd();
    if (ref < last_ref) {
      ++commits;
      EXPECT_EQ(i % 5, 0) << "decrease committed off the s-ACK schedule";
    }
    last_ref = ref;
  }
  EXPECT_EQ(commits, 4);
}

TEST(Swift, AlwaysAiAddsTermEvenUnderCongestion) {
  // Compare within SF mode (commit every ACK): with always_ai the additive
  // term persists under congestion; without it the decrease branch is pure
  // multiplicative, so it must end strictly lower.
  SwiftParams p;
  p.use_fbs = false;
  p.sampling_freq = 1;
  p.always_ai = true;
  SwiftParams bare = p;
  bare.always_ai = false;
  SwiftDriver with{p}, without{bare};
  for (int i = 0; i < 40; ++i) {
    with.ack(8'000, 600);
    without.ack(8'000, 600);
  }
  EXPECT_GT(with.swift().cwnd(), without.swift().cwnd());
}

TEST(Swift, VaiBanksTokensFromQueueingDelay) {
  SwiftParams p;
  p.use_fbs = false;
  p.always_ai = true;
  p.vai = swift_paper_vai(/*target=*/7000, /*base_rtt=*/kBaseRtt,
                          /*min_bdp_delay=*/4000);
  SwiftDriver d{p};
  // Queueing delay 15 us >> threshold (7 + 4 - 5 = 6 us).
  for (int i = 0; i < 25; ++i) d.ack(kBaseRtt + 15'000, 600);
  EXPECT_GT(d.swift().vai().bank(), 0.0);
}

TEST(Swift, HyperAiEngagesAfterQuietRtts) {
  SwiftParams p;
  p.use_fbs = false;
  p.use_hyper_ai = true;
  p.hai_threshold = 3;
  p.hai_multiplier = 4.0;
  SwiftDriver d{p};
  EXPECT_FALSE(d.swift().in_hyper_ai());
  // Each synthetic RTT is 10 ACKs below target: streak accumulates.
  for (int i = 0; i < 40; ++i) d.ack(kBaseRtt);
  EXPECT_TRUE(d.swift().in_hyper_ai());
}

TEST(Swift, HyperAiGrowsFasterThanStock) {
  SwiftParams hai;
  hai.use_fbs = false;
  hai.use_hyper_ai = true;
  hai.hai_threshold = 2;
  SwiftParams stock = hai;
  stock.use_hyper_ai = false;
  SwiftDriver fast{hai}, slow{stock};
  // Sink both windows with identical congestion, then recover quietly.
  fast.ack(50'000, 30'000);
  slow.ack(50'000, 30'000);
  for (int i = 0; i < 3; ++i) {
    fast.ack(40'000, 30'000);
    slow.ack(40'000, 30'000);
  }
  ASSERT_NEAR(fast.swift().cwnd(), slow.swift().cwnd(), 1e-9);
  for (int i = 0; i < 60; ++i) {
    fast.ack(kBaseRtt);
    slow.ack(kBaseRtt);
  }
  EXPECT_GT(fast.swift().cwnd(), slow.swift().cwnd());
}

TEST(Swift, CongestionResetsHyperAiStreak) {
  SwiftParams p;
  p.use_fbs = false;
  p.use_hyper_ai = true;
  p.hai_threshold = 3;
  SwiftDriver d{p};
  for (int i = 0; i < 40; ++i) d.ack(kBaseRtt);
  ASSERT_TRUE(d.swift().in_hyper_ai());
  // One congested RTT (all 10 acks above target) ends the streak.
  for (int i = 0; i < 12; ++i) d.ack(20'000, 600);
  EXPECT_FALSE(d.swift().in_hyper_ai());
}

TEST(Swift, PaperVaiThresholdConvertsToQueueingDelay) {
  const core::VariableAiParams vai = swift_paper_vai(9000, 4180, 4000);
  EXPECT_DOUBLE_EQ(vai.token_thresh, 9000 + 4000 - 4180);
  EXPECT_DOUBLE_EQ(vai.ai_div, 30.0);
}

}  // namespace
}  // namespace fastcc::cc
