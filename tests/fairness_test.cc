#include "core/fairness.h"

#include <gtest/gtest.h>

#include <array>

namespace fastcc::core {
namespace {

TEST(JainIndex, EqualAllocationIsPerfectlyFair) {
  const std::array<double, 4> x{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(x), 1.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::array<double, 3> a{1.0, 2.0, 3.0};
  const std::array<double, 3> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(JainIndex, OneHotAllocationScoresOneOverN) {
  const std::array<double, 8> x{1.0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(x), 1.0 / 8.0);
}

TEST(JainIndex, KnownTwoFlowValue) {
  // Rates 2:1 -> (3)^2 / (2 * 5) = 0.9.
  const std::array<double, 2> x{2.0, 1.0};
  EXPECT_DOUBLE_EQ(jain_index(x), 0.9);
}

TEST(JainIndex, EdgeCasesAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(JainIndex, BoundedByOneOverNAndOne) {
  const std::array<double, 5> x{0.1, 7.3, 2.2, 9.9, 0.4};
  const double j = jain_index(x);
  EXPECT_GE(j, 1.0 / 5.0);
  EXPECT_LE(j, 1.0);
}

TEST(JainSampler, ComputesIndexOverAckedDeltas) {
  net::FlowTx f1, f2;
  f1.spec.start_time = 0;
  f2.spec.start_time = 0;
  JainSampler sampler({&f1, &f2});
  f1.cum_acked = 1000;
  f2.cum_acked = 1000;
  EXPECT_DOUBLE_EQ(sampler.sample(0, 100), 1.0);
  f1.cum_acked = 3000;  // +2000
  f2.cum_acked = 2000;  // +1000
  EXPECT_DOUBLE_EQ(sampler.sample(100, 200), 0.9);
}

TEST(JainSampler, ExcludesNotYetStartedFlows) {
  net::FlowTx early, late;
  early.spec.start_time = 0;
  late.spec.start_time = 1'000'000;
  JainSampler sampler({&early, &late});
  early.cum_acked = 5000;
  EXPECT_DOUBLE_EQ(sampler.sample(0, 100), 1.0);  // only `early` counts
}

TEST(JainSampler, ExcludesLongFinishedFlows) {
  net::FlowTx done, live;
  done.spec.start_time = 0;
  done.finish_time = 50;
  live.spec.start_time = 0;
  JainSampler sampler({&done, &live});
  done.cum_acked = 1000;
  live.cum_acked = 1000;
  // Window [100, 200): `done` finished before it began.
  EXPECT_DOUBLE_EQ(sampler.sample(100, 200), 1.0);
}

TEST(JainSampler, NoActiveFlowsReturnsSentinel) {
  net::FlowTx future;
  future.spec.start_time = 1'000'000;
  JainSampler sampler({&future});
  EXPECT_DOUBLE_EQ(sampler.sample(0, 100), -1.0);
}

}  // namespace
}  // namespace fastcc::core
