// Incast invariants over a (protocol x incast-degree) grid: completion,
// losslessness, conservation, and the line-rate completion bound must hold
// for every combination.
#include <gtest/gtest.h>

#include "experiments/incast.h"

namespace fastcc::exp {
namespace {

struct GridCase {
  Variant variant;
  int senders;
};

class IncastGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(IncastGrid, InvariantsHold) {
  const auto [variant, senders] = GetParam();
  IncastConfig config;
  config.variant = variant;
  config.pattern.senders = senders;
  config.pattern.flow_bytes = 150'000;
  config.star.host_count = senders + 1;
  const IncastResult r = run_incast(config);

  ASSERT_EQ(r.flows.size(), static_cast<std::size_t>(senders));
  EXPECT_EQ(r.drops, 0u);

  // The shared 100 Gbps link bounds aggregate completion from below:
  // senders x 150 KB of wire bytes cannot drain faster than line rate.
  const double total_wire = senders * 150.0 * 1048.0;
  EXPECT_GT(static_cast<double>(r.completion_time),
            total_wire / sim::gbps(100));

  // Start/finish sanity per flow.
  for (const FlowTiming& f : r.flows) {
    EXPECT_GE(f.start, 0);
    EXPECT_GT(f.finish, f.start);
  }

  // Fairness index bounded; utilization bounded.
  for (const auto& p : r.jain.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0 + 1e-9);
  }
  for (const auto& p : r.utilization.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.01);
  }
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  for (const Variant v : {Variant::kHpcc, Variant::kHpccVaiSf,
                          Variant::kSwift, Variant::kSwiftVaiSf}) {
    for (const int senders : {2, 4, 16, 32}) {
      cases.push_back({v, senders});
    }
  }
  // Degree sweep matters less for the background protocols: one point each.
  cases.push_back({Variant::kDcqcn, 8});
  cases.push_back({Variant::kTimely, 8});
  cases.push_back({Variant::kSwiftHai, 8});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncastGrid, ::testing::ValuesIn(grid()),
                         [](const auto& param_info) {
                           std::string name = variant_name(param_info.param.variant);
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name + "_x" +
                                  std::to_string(param_info.param.senders);
                         });

}  // namespace
}  // namespace fastcc::exp
