// Percentiles, FCT records / slowdown tables, and time series.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/fct.h"
#include "stats/percentile.h"
#include "stats/timeseries.h"

namespace fastcc::stats {
namespace {

TEST(Percentile, NearestRankBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 9);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.1), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.9), 42.0);
}

TEST(Percentile, P999PicksTheTail) {
  std::vector<double> v(1000, 1.0);
  v[999] = 100.0;
  EXPECT_DOUBLE_EQ(percentile(v, 99.9), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.8), 1.0);
}

TEST(PercentileEstimator, AccumulatesAndSummarizes) {
  PercentileEstimator est;
  for (int i = 1; i <= 100; ++i) est.add(i);
  EXPECT_DOUBLE_EQ(est.median(), 50);
  EXPECT_DOUBLE_EQ(est.max(), 100);
  EXPECT_DOUBLE_EQ(est.mean(), 50.5);
  EXPECT_EQ(est.count(), 100u);
}

TEST(IdealFct, MatchesHandComputation) {
  net::PathInfo path;
  path.base_rtt = 5000;
  path.bottleneck = sim::gbps(100);
  path.hops = 2;
  path.link_bandwidths = {sim::gbps(100), sim::gbps(100)};
  // 10 KB flow of MTU-sized packets: the last packet is a full MTU, so the
  // per-link correction cancels and the ideal is base RTT plus 9 packets
  // streamed at the bottleneck.
  const sim::Time t = ideal_fct(path, 10'000, 1000);
  EXPECT_EQ(t, 5000 + sim::serialization_time(9 * 1048, sim::gbps(100)));
}

TEST(IdealFct, SinglePacketFlowIsOneRttWithTailCorrection) {
  net::PathInfo path;
  path.base_rtt = 7000;
  path.bottleneck = sim::gbps(100);
  path.link_bandwidths = {sim::gbps(100), sim::gbps(100)};
  // A 500 B flow's only packet is smaller than the MTU base_rtt assumed:
  // each hop saves ser(1048) - ser(548).
  const sim::Time saving_per_hop =
      sim::serialization_time(1048, sim::gbps(100)) -
      sim::serialization_time(548, sim::gbps(100));
  EXPECT_EQ(ideal_fct(path, 500, 1000), 7000 - 2 * saving_per_hop);
}

TEST(IdealFct, SubMtuTailShortensTheIdeal) {
  net::PathInfo path;
  path.base_rtt = 5000;
  path.bottleneck = sim::gbps(100);
  path.link_bandwidths = {sim::gbps(100), sim::gbps(100)};
  EXPECT_LT(ideal_fct(path, 10'001, 1000), ideal_fct(path, 11'000, 1000));
  EXPECT_GT(ideal_fct(path, 10'001, 1000), ideal_fct(path, 10'000, 1000) - 200);
}

std::vector<FlowRecord> synthetic_records(int n) {
  std::vector<FlowRecord> recs;
  for (int i = 0; i < n; ++i) {
    FlowRecord r;
    r.id = i;
    r.size_bytes = (i + 1) * 1000;
    r.ideal_fct = 1000;
    r.fct = 1000 * (i % 10 + 1);  // slowdowns 1..10 cycling
    recs.push_back(r);
  }
  return recs;
}

TEST(SlowdownBySize, GroupsHaveEqualPopulation) {
  const auto rows = slowdown_by_size(synthetic_records(100), 10, 50.0);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& row : rows) EXPECT_EQ(row.flow_count, 10u);
}

TEST(SlowdownBySize, GroupsSortedBySize) {
  const auto rows = slowdown_by_size(synthetic_records(100), 10, 50.0);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].max_size_bytes, rows[i - 1].max_size_bytes);
  }
}

TEST(SlowdownBySize, PercentilePerGroup) {
  // All records share slowdown values 1..10 per group of 10 -> p100 = 10.
  const auto rows = slowdown_by_size(synthetic_records(100), 10, 100.0);
  for (const auto& row : rows) EXPECT_DOUBLE_EQ(row.slowdown, 10.0);
}

TEST(SlowdownBySize, RemainderFoldsIntoLastGroup) {
  const auto rows = slowdown_by_size(synthetic_records(105), 10, 50.0);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.back().flow_count, 15u);
}

TEST(SlowdownBySize, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(slowdown_by_size({}, 10, 50.0).empty());
}

TEST(SlowdownBySize, MoreGroupsThanRecordsDegradesGracefully) {
  const auto rows = slowdown_by_size(synthetic_records(3), 10, 50.0);
  EXPECT_EQ(rows.size(), 3u);
  for (const auto& row : rows) EXPECT_EQ(row.flow_count, 1u);
}

TEST(TimeSeries, SummariesAndSettle) {
  TimeSeries ts("x");
  ts.add(0, 0.2);
  ts.add(10, 0.5);
  ts.add(20, 0.96);
  ts.add(30, 0.97);
  ts.add(40, 0.99);
  EXPECT_DOUBLE_EQ(ts.max_value(), 0.99);
  EXPECT_DOUBLE_EQ(ts.min_value(), 0.2);
  EXPECT_EQ(ts.settle_time(0.95), 20);
  EXPECT_NEAR(ts.mean_after(20), (0.96 + 0.97 + 0.99) / 3, 1e-12);
}

TEST(TimeSeries, SettleResetsOnDip) {
  TimeSeries ts("x");
  ts.add(0, 0.96);
  ts.add(10, 0.5);  // dip: earlier settle invalidated
  ts.add(20, 0.97);
  EXPECT_EQ(ts.settle_time(0.95), 20);
}

TEST(TimeSeries, NeverSettlesReturnsMinusOne) {
  TimeSeries ts("x");
  ts.add(0, 0.5);
  ts.add(10, 0.94);
  EXPECT_EQ(ts.settle_time(0.95), -1);
}

TEST(TimeSeries, CsvOutputWellFormed) {
  TimeSeries a("alpha"), b("beta");
  a.add(1000, 1.0);
  a.add(2000, 2.0);
  b.add(1000, 3.0);
  b.add(2000, 4.0);
  std::ostringstream os;
  write_csv(os, {&a, &b});
  EXPECT_EQ(os.str(), "time_us,alpha,beta\n1,1,3\n2,2,4\n");
}

}  // namespace
}  // namespace fastcc::stats
