// Proves the acceptance criterion of the allocation-free dispatch work: in
// the steady state, scheduling and running the common packet-event closures
// performs ZERO heap allocations.  Global operator new/delete are replaced
// with counting versions, so this test lives in its own executable — the
// hook is process-wide and deliberately not linked into fastcc_tests.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/packet.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {
// Not atomic: the simulator and these tests are single-threaded, and gtest
// only spawns threads in death tests (unused here).
std::size_t g_news = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_news;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace fastcc {
namespace {

net::Packet worst_case_packet() {
  net::Packet p = net::make_data(/*flow=*/1, /*src=*/0, /*dst=*/1, /*seq=*/0,
                                 /*payload=*/1000, /*now=*/0);
  p.int_count = net::kMaxHops;  // full INT stack, the largest hot closure
  return p;
}

// Rolling-horizon schedule/pop cycles with Packet-capturing closures.
// Warm-up lets every internal vector (heap, slots, freelist, buckets) reach
// its steady-state capacity; after that, not one allocation is allowed.
template <typename Queue>
void expect_steady_state_alloc_free() {
  Queue q;
  const net::Packet pkt = worst_case_packet();
  std::uint64_t sink = 0;
  auto closure = [pkt, &sink] { sink += pkt.seq + pkt.wire_bytes; };
  static_assert(sim::UniqueFunction::fits_inline<decltype(closure)>,
                "packet closure must fit the inline buffer");

  sim::Time now = 0;
  for (int i = 0; i < 512; ++i) q.schedule(i % 97, closure);
  for (int i = 0; i < 60'000; ++i) {  // warm-up: capacities settle
    now = q.pop_and_run();
    q.schedule(now + 80 + (i * 37) % 400, closure);
  }

  const std::size_t before = g_news;
  for (int i = 0; i < 20'000; ++i) {
    now = q.pop_and_run();
    q.schedule(now + 80 + (i * 37) % 400, closure);
  }
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "steady-state schedule/pop allocated";

  while (!q.empty()) q.pop_and_run();
  EXPECT_GT(sink, 0u);
}

TEST(AllocFreeDispatch, EventQueueSteadyStatePacketClosures) {
  expect_steady_state_alloc_free<sim::EventQueue>();
}

TEST(AllocFreeDispatch, CalendarQueueSteadyStatePacketClosures) {
  expect_steady_state_alloc_free<sim::CalendarQueue>();
}

// End-to-end through the Simulator run loop: a fleet of self-rescheduling
// packet-carrying events, exactly the shape Port::finish_tx produces.
struct SelfRescheduler {
  sim::Simulator* s;
  net::Packet pkt;
  std::uint64_t* sink;

  void tick() const {
    *sink += pkt.seq;
    // Fixed period: the occupancy pattern repeats exactly, so the warm-up
    // provably reaches peak bucket capacity.  Irregular spacing (where the
    // peak creeps up over millions of events and the occasional amortized
    // vector doubling is expected) is exercised by the queue-level tests.
    s->after(128, [self = *this] { self.tick(); });
  }
};

TEST(AllocFreeDispatch, SimulatorRunLoopSteadyState) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  for (int i = 0; i < 64; ++i) {
    SelfRescheduler r{&s, worst_case_packet(), &sink};
    r.pkt.seq = static_cast<std::uint64_t>(i);
    s.after(i, [r] { r.tick(); });
  }
  s.run(/*until=*/2'000'000);  // warm-up: calendar buckets reach capacity

  const std::size_t before = g_news;
  s.run(/*until=*/6'000'000);
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "simulator steady state allocated";
  EXPECT_GT(sink, 0u);
}

// Sanity check that the hook itself works, so the zero deltas above can't
// be a silently dead counter.
TEST(AllocFreeDispatch, HookCountsOversizedClosures) {
  const std::size_t before = g_news;
  struct Big {
    char pad[sim::UniqueFunction::kInlineSize + 64] = {};
  };
  sim::UniqueFunction f([big = Big()] { (void)big; });
  f();
  EXPECT_GT(g_news - before, 0u) << "operator-new hook is not active";
}

}  // namespace
}  // namespace fastcc
