// Proves the acceptance criteria of the allocation-free dispatch and
// zero-copy packet pipeline work: in the steady state, scheduling and
// running the common packet-event closures performs ZERO heap allocations,
// both at the queue level and end-to-end across a fat-tree.  Global
// operator new/delete are replaced with counting versions, so this test
// lives in its own executable — the hook is process-wide and deliberately
// not linked into fastcc_tests.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "net/host.h"
#include "net/network.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "topo/fat_tree.h"

namespace {
// Not atomic: the simulator and these tests are single-threaded, and gtest
// only spawns threads in death tests (unused here).
std::size_t g_news = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_news;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace fastcc {
namespace {

// Rolling-horizon schedule/pop cycles with handle-shaped closures: exactly
// what Port::start_tx schedules per hop — a pool pointer plus a 4-byte
// PacketRef, not the 280-byte Packet itself.  Warm-up lets every internal
// vector (heap, slots, freelist, buckets) reach its steady-state capacity;
// after that, not one allocation is allowed.
template <typename Queue>
void expect_steady_state_alloc_free() {
  Queue q;
  net::PacketPool pool;
  const net::PacketRef ref = pool.alloc();
  net::init_data(pool.get(ref), /*flow=*/1, /*src=*/0, /*dst=*/1, /*seq=*/7,
                 /*payload=*/1000, /*now=*/0);
  std::uint64_t sink = 0;
  net::PacketPool* pp = &pool;
  std::uint64_t* out = &sink;
  auto closure = [pp, ref, out] {
    const net::Packet& p = pp->get(ref);
    *out += p.seq + p.wire_bytes;
  };
  static_assert(sizeof(closure) <= 24,
                "per-hop closure must be handle-sized: pool + ref + context");
  static_assert(sim::UniqueFunction::fits_inline<decltype(closure)>,
                "packet closure must fit the inline buffer");

  sim::Time now = 0;
  for (int i = 0; i < 512; ++i) q.schedule(i % 97, closure);
  for (int i = 0; i < 60'000; ++i) {  // warm-up: capacities settle
    now = q.pop_and_run();
    q.schedule(now + 80 + (i * 37) % 400, closure);
  }

  const std::size_t before = g_news;
  for (int i = 0; i < 20'000; ++i) {
    now = q.pop_and_run();
    q.schedule(now + 80 + (i * 37) % 400, closure);
  }
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "steady-state schedule/pop allocated";

  while (!q.empty()) q.pop_and_run();
  EXPECT_GT(sink, 0u);
  pool.release(ref);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(AllocFreeDispatch, EventQueueSteadyStatePacketClosures) {
  expect_steady_state_alloc_free<sim::EventQueue>();
}

TEST(AllocFreeDispatch, CalendarQueueSteadyStatePacketClosures) {
  expect_steady_state_alloc_free<sim::CalendarQueue>();
}

// End-to-end through the Simulator run loop: a fleet of self-rescheduling
// handle-carrying events, exactly the shape Port::start_tx produces.
struct SelfRescheduler {
  sim::Simulator* s;
  net::PacketPool* pool;
  net::PacketRef ref;
  std::uint64_t* sink;

  void tick() const {
    *sink += pool->get(ref).seq;
    // Fixed period: the occupancy pattern repeats exactly, so the warm-up
    // provably reaches peak bucket capacity.  Irregular spacing (where the
    // peak creeps up over millions of events and the occasional amortized
    // vector doubling is expected) is exercised by the queue-level tests.
    s->after(128, [self = *this] { self.tick(); });
  }
};
static_assert(sizeof(SelfRescheduler) <= 32,
              "self-rescheduling event must carry a handle, not a Packet");

TEST(AllocFreeDispatch, SimulatorRunLoopSteadyState) {
  sim::Simulator s;
  net::PacketPool pool;
  std::uint64_t sink = 0;
  for (int i = 0; i < 64; ++i) {
    const net::PacketRef ref = pool.alloc();
    net::init_data(pool.get(ref), 1, 0, 1, static_cast<std::uint64_t>(i),
                   1000, 0);
    SelfRescheduler r{&s, &pool, ref, &sink};
    s.after(i, [r] { r.tick(); });
  }
  s.run(/*until=*/2'000'000);  // warm-up: calendar buckets reach capacity

  const std::size_t before = g_news;
  s.run(/*until=*/6'000'000);
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "simulator steady state allocated";
  EXPECT_GT(sink, 0u);
}

// The full zero-copy pipeline: long flows crossing a fat-tree (host -> ToR
// -> Agg -> Spine -> Agg -> ToR -> host plus the ACK reverse path) must run
// allocation-free once the packet pool, port rings, and calendar buckets
// have warmed up.  A packet is allocated into the pool once at the sender
// and only its 4-byte handle moves through queues and events after that.
TEST(AllocFreeDispatch, FatTreeSteadyStateZeroAllocations) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTree tree = topo::build_fat_tree(network, topo::scaled_fat_tree());

  // Cross-pod pairs with distinct sources and destinations: every hop class
  // (edge + fabric, both directions) stays busy for the whole run.
  const int n = static_cast<int>(tree.hosts.size());
  const std::uint64_t size = 100'000'000;  // ~8 ms at 100 Gbps: never finishes
  net::FlowId next_flow = 1;
  for (int i = 0; i < 4; ++i) {
    net::Host* src = tree.hosts[static_cast<std::size_t>(i)];
    net::Host* dst = tree.hosts[static_cast<std::size_t>(n - 1 - i)];
    const net::PathInfo path = network.path(src->id(), dst->id());
    net::FlowTx f;
    f.spec.id = next_flow++;
    f.spec.src = src->id();
    f.spec.dst = dst->id();
    f.spec.size_bytes = size;
    f.spec.start_time = 0;
    f.line_rate = src->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::make_unique<test::FixedCc>(1e12, sim::gbps(100));
    src->start_flow(std::move(f));
  }

  simulator.run(/*until=*/300 * sim::kMicrosecond);  // warm-up
  ASSERT_GT(network.packet_pool().live(), 0u) << "flows are not in flight";

  const std::size_t before = g_news;
  simulator.run(/*until=*/900 * sim::kMicrosecond);
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "fat-tree steady state allocated";
  EXPECT_GT(simulator.events_executed(), 100'000u);
}

// The batched ACK delivery path (DESIGN.md §11): several long flows from
// ONE sender share its single host link, so the returning ACK streams
// interleave on the reverse direction and arrive as burst-coalesced
// deliver_batch() chains mixing flows.  Each batch runs ack_apply per
// packet plus one ack_finalize per touched flow — the whole per-flow
// dedup/finalize machinery, the slab hot-lane updates, and the NIC-arbiter
// heap fix-ups must all run out of steady-state storage: zero allocations.
TEST(AllocFreeDispatch, BatchedAckPathSteadyStateZeroAllocations) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTree tree = topo::build_fat_tree(network, topo::scaled_fat_tree());

  net::Host* src = tree.hosts[0];
  const std::uint64_t size = 100'000'000;  // never finishes within the run
  auto start = [&](net::Host* from, net::Host* to, net::FlowId id,
                   sim::Rate rate) {
    const net::PathInfo path = network.path(from->id(), to->id());
    net::FlowTx f;
    f.spec.id = id;
    f.spec.src = from->id();
    f.spec.dst = to->id();
    f.spec.size_bytes = size;
    f.spec.start_time = 0;
    f.line_rate = from->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::make_unique<test::FixedCc>(1e12, rate);
    from->start_flow(std::move(f));
  };
  // Aggregate pacing stays under the 100 Gbps host link so queues (and the
  // packet pool) reach a bounded steady state instead of growing forever.
  for (net::FlowId id = 1; id <= 6; ++id) {
    start(src, tree.hosts[tree.hosts.size() - static_cast<std::size_t>(id)],
          id, sim::gbps(15));
  }
  // A near-line-rate incoming flow backlogs the ToR->src port, so the six
  // returning ACK streams ride its bursts: src's deliveries arrive as
  // chains mixing data and multi-flow ACKs — the batched path proper.
  start(tree.hosts[1], src, 7, sim::gbps(90));

  simulator.run(/*until=*/300 * sim::kMicrosecond);  // warm-up
  ASSERT_EQ(src->active_flow_count(), 6u) << "flows must stay in flight";

  const std::size_t before = g_news;
  simulator.run(/*until=*/900 * sim::kMicrosecond);
  const std::size_t delta = g_news - before;
  EXPECT_EQ(delta, 0u) << "batched ACK steady state allocated";
  // The slab's incremental rate bookkeeping stayed consistent through the
  // batch passes.
  EXPECT_DOUBLE_EQ(src->total_send_rate(), src->total_send_rate_recomputed());
}

// Pool leak check: when a simulation drains completely, every handle has
// been returned — data packets, ACKs, PFC frames, and tail drops all give
// their slots back.
TEST(AllocFreeDispatch, PacketPoolDrainsToZeroLiveHandles) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTree tree = topo::build_fat_tree(network, topo::scaled_fat_tree());

  net::FlowId next_flow = 1;
  for (int i = 0; i < 3; ++i) {
    net::Host* src = tree.hosts[static_cast<std::size_t>(i)];
    net::Host* dst = tree.hosts[tree.hosts.size() - 1 - static_cast<std::size_t>(i)];
    const net::PathInfo path = network.path(src->id(), dst->id());
    net::FlowTx f;
    f.spec.id = next_flow++;
    f.spec.src = src->id();
    f.spec.dst = dst->id();
    f.spec.size_bytes = 200'000;
    f.spec.start_time = 0;
    f.line_rate = src->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::make_unique<test::FixedCc>(1e12, sim::gbps(100));
    src->start_flow(std::move(f));
  }
  simulator.run();
  for (net::FlowId id = 1; id < next_flow; ++id) {
    const net::FlowTx* f = tree.hosts[static_cast<std::size_t>(id - 1)]->flow(id);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->finished());
  }
  EXPECT_EQ(network.packet_pool().live(), 0u)
      << "a packet handle was never released";
  EXPECT_GT(network.packet_pool().capacity(), 0u);
}

// Sanity check that the hook itself works, so the zero deltas above can't
// be a silently dead counter.
TEST(AllocFreeDispatch, HookCountsOversizedClosures) {
  const std::size_t before = g_news;
  struct Big {
    char pad[sim::UniqueFunction::kInlineSize + 64] = {};
  };
  sim::UniqueFunction f([big = Big()] { (void)big; });
  f();
  EXPECT_GT(g_news - before, 0u) << "operator-new hook is not active";
}

}  // namespace
}  // namespace fastcc
