// Failure injection at the experiment level: tiny switch buffers force
// drops during incast; every protocol must still complete correctly via
// go-back-N, and enabling PFC must restore losslessness with the same tiny
// buffers.
#include <gtest/gtest.h>

#include "experiments/incast.h"

namespace fastcc::exp {
namespace {

IncastConfig lossy_config(Variant v) {
  IncastConfig c;
  c.variant = v;
  c.pattern.senders = 8;
  c.pattern.flow_bytes = 120'000;
  c.star.host_count = 9;
  // ~32 packets of buffer against an 8-way line-rate burst: must overflow.
  c.buffer_limit_bytes = 32 * 1048;
  return c;
}

class LossyIncast : public ::testing::TestWithParam<Variant> {};

TEST_P(LossyIncast, DropsHappenYetEveryFlowCompletes) {
  const IncastResult r = run_incast(lossy_config(GetParam()));
  EXPECT_GT(r.drops, 0u);
  ASSERT_EQ(r.flows.size(), 8u);
  for (const FlowTiming& f : r.flows) {
    EXPECT_GT(f.finish, f.start);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LossyIncast,
                         ::testing::Values(Variant::kHpcc,
                                           Variant::kHpccVaiSf,
                                           Variant::kSwift,
                                           Variant::kSwiftVaiSf),
                         [](const auto& param_info) {
                           std::string name = variant_name(param_info.param);
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(LossyIncastPfc, PfcRestoresLosslessnessWithTinyBuffers) {
  IncastConfig c = lossy_config(Variant::kHpcc);
  // PFC headroom per ingress port = pause threshold + one propagation
  // delay's worth of line-rate arrivals (~12.5 KB at 100G / 1 us) + one MTU;
  // the shared egress buffer must cover all 8 senders' worth.
  c.buffer_limit_bytes = 256 * 1048;
  c.pfc.pause_bytes = 8 * 1048;
  c.pfc.resume_bytes = 4 * 1048;
  const IncastResult r = run_incast(c);
  EXPECT_EQ(r.drops, 0u);
  EXPECT_EQ(r.flows.size(), 8u);
}

TEST(LossyIncastPfc, LossyRunIsSlowerThanLossless) {
  // Retransmissions waste bottleneck bandwidth: completion must take longer
  // than the lossless PFC run of the same workload.
  IncastConfig lossy = lossy_config(Variant::kHpcc);
  IncastConfig clean = lossy_config(Variant::kHpcc);
  clean.buffer_limit_bytes = 256 * 1048;
  clean.pfc.pause_bytes = 8 * 1048;
  clean.pfc.resume_bytes = 4 * 1048;
  const IncastResult a = run_incast(lossy);
  const IncastResult b = run_incast(clean);
  EXPECT_GT(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace fastcc::exp
