// Priority Flow Control: a downstream node whose egress drains slower than
// its ingress fills must pause the upstream transmitter before its buffer
// overflows, preserving losslessness end to end.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/switch_node.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace fastcc::net {
namespace {

using test::SinkNode;
using test::test_packet;

// Chain: source node -> switch -> sink, where the switch's egress link is 10x
// slower than its ingress link, forcing a backlog inside the switch.
struct PfcChain {
  sim::Simulator simulator;
  PacketPool pool;
  SinkNode source{simulator, 0, "src"};
  SwitchNode sw{simulator, 1, "sw"};
  SinkNode sink{simulator, 2, "dst"};

  PfcChain() {
    test::bind_pool(pool, {&source, &sw, &sink});
    source.add_port();
    const int sw_in = sw.add_port();
    const int sw_out = sw.add_port();
    sink.add_port();
    source.port(0).connect(&sw, sw_in, sim::gbps(100), 100);
    sw.port(sw_in).connect(&source, 0, sim::gbps(100), 100);
    sw.port(sw_out).connect(&sink, 0, sim::gbps(10), 100);
    sink.port(0).connect(&sw, sw_out, sim::gbps(10), 100);
    sw.set_routes(2, {sw_out});
    sw.set_routes(0, {sw_in});
  }
};

TEST(Pfc, PausesUpstreamBeforeBufferOverflow) {
  PfcChain c;
  PfcParams pfc;
  pfc.pause_bytes = 10'000;
  pfc.resume_bytes = 5'000;
  c.sw.set_pfc(pfc);
  // Buffer big enough for the PFC headroom (pause threshold + one BDP of
  // in-flight) but far smaller than the burst.
  c.sw.port(1).set_buffer_limit(40'000);

  const int burst = 200;  // 200 KB burst into a 40 KB buffer
  for (int i = 0; i < burst; ++i) {
    c.source.port(0).enqueue(test_packet(1000, 1, 0, 2));
  }
  c.simulator.run();
  EXPECT_EQ(c.sink.count(), static_cast<std::size_t>(burst));
  EXPECT_EQ(c.sw.port(1).drops(), 0u);
}

TEST(Pfc, WithoutPfcTheSameBurstDrops) {
  PfcChain c;
  c.sw.port(1).set_buffer_limit(40'000);
  for (int i = 0; i < 200; ++i) {
    c.source.port(0).enqueue(test_packet(1000, 1, 0, 2));
  }
  c.simulator.run();
  EXPECT_GT(c.sw.port(1).drops(), 0u);
  EXPECT_LT(c.sink.count(), 200u);
}

// Regression (tail-drop PFC leak): when a packet is tail-dropped at the
// switch's egress queue, its ingress-port byte accounting must be released
// with it.  Before the fix, dropped bytes stayed on the ingress count
// forever, so once the count was pinned above the resume threshold the
// upstream port never received RESUME and the rest of the burst was never
// delivered.
TEST(Pfc, TailDropReleasesIngressAccountingSoResumeIsSent) {
  PfcChain c;
  PfcParams pfc;
  pfc.pause_bytes = 10'000;
  pfc.resume_bytes = 5'000;
  c.sw.set_pfc(pfc);
  // Deliberately *insufficient* headroom: the buffer cap sits barely above
  // the pause threshold, so in-flight packets that arrive between the pause
  // threshold being crossed and the PFC frame taking effect overflow the
  // buffer and are dropped.
  c.sw.port(1).set_buffer_limit(12'000);

  const int burst = 200;
  for (int i = 0; i < burst; ++i) {
    c.source.port(0).enqueue(test_packet(1000, 1, 0, 2));
  }
  c.simulator.run();
  EXPECT_GT(c.sw.port(1).drops(), 0u) << "test needs drops to exercise leak";
  // RESUME must eventually reach the source: every non-dropped packet is
  // delivered and nothing stays wedged behind a permanently paused port.
  EXPECT_EQ(c.sink.count() + c.sw.port(1).drops(),
            static_cast<std::size_t>(burst));
  EXPECT_FALSE(c.source.port(0).paused());
  // Dropped packets were returned to the pool, not leaked.
  EXPECT_EQ(c.pool.live(), 0u);
}

TEST(Pfc, ThroughputUnaffectedWhenUncongested) {
  PfcChain c;
  PfcParams pfc;
  pfc.pause_bytes = 10'000;
  pfc.resume_bytes = 5'000;
  c.sw.set_pfc(pfc);
  // Three packets never trip the 10 KB pause threshold.
  for (int i = 0; i < 3; ++i) {
    c.source.port(0).enqueue(test_packet(1000, 1, 0, 2));
  }
  c.simulator.run();
  EXPECT_EQ(c.sink.count(), 3u);
  const sim::Time no_pfc_finish = c.simulator.now();
  // The slow egress (10 Gbps) dominates: 3 * 1048 B * 0.8 ns/B ~ 2.5 us.
  EXPECT_LT(no_pfc_finish, 4000);
}

TEST(Pfc, DisabledByDefault) {
  PfcParams pfc;
  EXPECT_FALSE(pfc.enabled());
  pfc.pause_bytes = 1;
  EXPECT_TRUE(pfc.enabled());
}

}  // namespace
}  // namespace fastcc::net
