// Flow-trace round-trip and malformed-input rejection.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.h"
#include "workload/distributions.h"
#include "workload/poisson.h"

namespace fastcc::workload {
namespace {

std::vector<net::FlowSpec> sample_flows() {
  PoissonTrafficParams params;
  params.components = {{&hadoop_cdf(), 1.0}};
  params.load = 0.5;
  params.host_bandwidth = sim::gbps(100);
  params.host_count = 8;
  params.duration = 100 * sim::kMicrosecond;
  sim::Rng rng(7);
  return generate_poisson_traffic(params, rng);
}

TEST(FlowTrace, RoundTripsExactly) {
  const auto flows = sample_flows();
  ASSERT_GT(flows.size(), 10u);
  std::stringstream buffer;
  EXPECT_EQ(write_flow_trace(buffer, flows), flows.size());
  const auto loaded = read_flow_trace(buffer);
  ASSERT_EQ(loaded.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(loaded[i].id, flows[i].id);
    EXPECT_EQ(loaded[i].src, flows[i].src);
    EXPECT_EQ(loaded[i].dst, flows[i].dst);
    EXPECT_EQ(loaded[i].size_bytes, flows[i].size_bytes);
    EXPECT_EQ(loaded[i].start_time, flows[i].start_time);
  }
}

TEST(FlowTrace, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_flow_trace(buffer, {});
  EXPECT_TRUE(read_flow_trace(buffer).empty());
}

TEST(FlowTrace, RejectsMissingHeader) {
  std::stringstream buffer("1,0,1,1000,0\n");
  EXPECT_THROW(read_flow_trace(buffer), std::runtime_error);
}

TEST(FlowTrace, RejectsWrongColumnCount) {
  std::stringstream buffer(
      "flow_id,src_host,dst_host,size_bytes,start_time_ns\n1,0,1,1000\n");
  EXPECT_THROW(read_flow_trace(buffer), std::runtime_error);
}

TEST(FlowTrace, RejectsNonNumericField) {
  std::stringstream buffer(
      "flow_id,src_host,dst_host,size_bytes,start_time_ns\n1,0,x,1000,0\n");
  EXPECT_THROW(read_flow_trace(buffer), std::runtime_error);
}

TEST(FlowTrace, SkipsBlankLines) {
  std::stringstream buffer(
      "flow_id,src_host,dst_host,size_bytes,start_time_ns\n"
      "1,0,1,1000,5\n\n2,1,0,2000,9\n");
  const auto flows = read_flow_trace(buffer);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[1].size_bytes, 2000u);
}

}  // namespace
}  // namespace fastcc::workload
