// Space-parallel (pod-sharded) datacenter runs.
//
// The contract under test: run_datacenter_sharded() is a pure function of
// (config) — the worker count changes wall-clock only, never a single byte
// of the result — and a fully drained run leaves every shard's packet pool
// empty even though packets hop between pools at every pod boundary.
#include "experiments/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/distributions.h"

namespace fastcc::exp {
namespace {

DatacenterConfig sharded_config() {
  DatacenterConfig c;
  c.variant = Variant::kHpccVaiSf;
  c.topo = topo::sharded_scaled_fat_tree();
  c.components = {{&workload::hadoop_cdf(), 1.0}};
  c.load = 0.5;
  c.generate_duration = 100 * sim::kMicrosecond;
  c.seed = 7;
  return c;
}

// Every observable, bit for bit — per-flow timings included.
void expect_identical(const DatacenterResult& a, const DatacenterResult& b) {
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.unfinished, b.unfinished);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].id, b.flows[i].id);
    EXPECT_EQ(a.flows[i].size_bytes, b.flows[i].size_bytes);
    EXPECT_EQ(a.flows[i].start_time, b.flows[i].start_time);
    EXPECT_EQ(a.flows[i].fct, b.flows[i].fct);
    EXPECT_EQ(a.flows[i].ideal_fct, b.flows[i].ideal_fct);
  }
}

// The tentpole guarantee: the logical partition is fixed by the topology
// (one shard per pod), so 1, 2, and 8 workers replay the identical
// simulation.  1 worker takes the serial code path (no threads, no barrier),
// 2 forces multiple shards per worker, 8 is one shard per worker.
TEST(ShardedDatacenter, ThreadCountInvariance) {
  const DatacenterResult r1 = run_datacenter_sharded(sharded_config(), 1);
  const DatacenterResult r2 = run_datacenter_sharded(sharded_config(), 2);
  const DatacenterResult r8 = run_datacenter_sharded(sharded_config(), 8);
  ASSERT_GT(r1.flows.size(), 50u);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

// Pool hygiene across shard boundaries: a packet leaving pod A is
// export_release'd from A's pool and re-materialized in B's, so after a
// full drain every pool must be exactly empty — any nonzero live count is
// a leaked slot in the handoff path.
TEST(ShardedDatacenter, CrossShardHandoffLeakFree) {
  ShardedRunStats stats;
  const DatacenterResult r = run_datacenter_sharded(sharded_config(), 8, &stats);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.shards, 8);
  EXPECT_EQ(stats.lookahead, 1 * sim::kMicrosecond);
  // Hadoop traffic over 8 pods crosses boundaries constantly; a run where
  // nothing transferred would mean the boundary wiring silently fell back
  // to intra-shard delivery.
  EXPECT_GT(stats.cross_shard_transfers, 1000u);
  EXPECT_GT(stats.epochs, 10u);
  ASSERT_EQ(stats.pool_live_at_end.size(), 8u);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(stats.pool_live_at_end[s], 0u) << "shard " << s;
    EXPECT_GT(stats.pool_peak[s], 0u) << "shard " << s;
  }
}

// The sharded runner must simulate the same experiment as the serial one:
// identical flow population (ids, sizes, sources' start times) from a given
// seed, and every flow completing.  Timings are compared statistically, not
// exactly — per-shard Rng streams and epoch-batched injection reorder
// same-timestamp ties relative to the serial schedule.
TEST(ShardedDatacenter, MatchesSerialFlowPopulation) {
  const DatacenterConfig c = sharded_config();
  DatacenterResult serial = run_datacenter(c);
  const DatacenterResult sharded = run_datacenter_sharded(c, 8);
  EXPECT_EQ(serial.unfinished, 0u);
  EXPECT_EQ(sharded.unfinished, 0u);
  std::sort(serial.flows.begin(), serial.flows.end(),
            [](const stats::FlowRecord& a, const stats::FlowRecord& b) {
              return a.id < b.id;
            });
  ASSERT_EQ(serial.flows.size(), sharded.flows.size());
  double serial_mean = 0.0;
  double sharded_mean = 0.0;
  for (std::size_t i = 0; i < serial.flows.size(); ++i) {
    EXPECT_EQ(serial.flows[i].id, sharded.flows[i].id);
    EXPECT_EQ(serial.flows[i].size_bytes, sharded.flows[i].size_bytes);
    EXPECT_EQ(serial.flows[i].start_time, sharded.flows[i].start_time);
    EXPECT_EQ(serial.flows[i].ideal_fct, sharded.flows[i].ideal_fct);
    serial_mean += serial.flows[i].slowdown();
    sharded_mean += sharded.flows[i].slowdown();
  }
  serial_mean /= static_cast<double>(serial.flows.size());
  sharded_mean /= static_cast<double>(sharded.flows.size());
  // Same physics, different tie-breaks: aggregate congestion must agree.
  EXPECT_NEAR(sharded_mean, serial_mean, 0.25 * serial_mean);
}

// RED marking draws randomness at switch ports, and DCQCN enables PFC —
// both cross shard boundaries here (per-shard Rng streams; pause/resume
// frames through the mailboxes).  The invariance contract must survive
// that too.
TEST(ShardedDatacenter, RedAndPfcVariantStaysDeterministic) {
  DatacenterConfig c = sharded_config();
  c.variant = Variant::kDcqcn;
  c.load = 0.8;
  const DatacenterResult r1 = run_datacenter_sharded(c, 1);
  const DatacenterResult r8 = run_datacenter_sharded(c, 8);
  ASSERT_GT(r1.flows.size(), 0u);
  expect_identical(r1, r8);
}

// TSan target: maximum barrier contention — more workers than cores, many
// short epochs, every worker racing on the claim index and the mailboxes'
// publish/drain edges.  Run twice to also catch state bleeding between
// coordinator lifetimes.
TEST(ShardedDatacenter, EpochBarrierUnderContention) {
  DatacenterConfig c = sharded_config();
  c.generate_duration = 30 * sim::kMicrosecond;
  const DatacenterResult a = run_datacenter_sharded(c, 8);
  const DatacenterResult b = run_datacenter_sharded(c, 8);
  expect_identical(a, b);
}

// The same invariance contract at rack grain: 16 shards (8 pods x 2 ToRs),
// so worker counts beyond the pod count finally buy parallelism.  1 worker
// is the serial path, 2 and 8 force multiple shards per worker, 16 is one
// shard per worker.
TEST(ShardedDatacenter, TorThreadCountInvariance) {
  DatacenterConfig c = sharded_config();
  c.shard_granularity = topo::ShardGranularity::kTor;
  ShardedRunStats stats;
  const DatacenterResult r1 = run_datacenter_sharded(c, 1, &stats);
  EXPECT_EQ(stats.shards, 16);
  const DatacenterResult r2 = run_datacenter_sharded(c, 2);
  const DatacenterResult r8 = run_datacenter_sharded(c, 8);
  const DatacenterResult r16 = run_datacenter_sharded(c, 16);
  ASSERT_GT(r1.flows.size(), 50u);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
  expect_identical(r1, r16);
}

// Rack-grain leak audit: twice the boundary surface of the pod partition
// (every agg uplink is now a shard edge), so this is the stress case for
// the handoff path.  Also pins the new observability: the lookahead matrix
// bounds, and skip/jump counters that must at least be self-consistent.
TEST(ShardedDatacenter, TorGranularityDrainsLeakFree) {
  DatacenterConfig c = sharded_config();
  c.shard_granularity = topo::ShardGranularity::kTor;
  ShardedRunStats stats;
  const DatacenterResult r = run_datacenter_sharded(c, 8, &stats);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.shards, 16);
  // Homogeneous 1 us links: every pair of the closed matrix collapses to
  // small multiples of the base delay, and the legacy quantum is its min.
  EXPECT_EQ(stats.lookahead, 1 * sim::kMicrosecond);
  EXPECT_EQ(stats.lookahead_min, 1 * sim::kMicrosecond);
  EXPECT_GE(stats.lookahead_max, stats.lookahead_min);
  EXPECT_GT(stats.cross_shard_transfers, 1000u);
  EXPECT_GT(stats.epochs, 10u);
  ASSERT_EQ(stats.pool_live_at_end.size(), 16u);
  for (int s = 0; s < 16; ++s) {
    EXPECT_EQ(stats.pool_live_at_end[s], 0u) << "shard " << s;
  }
}

// Grain changes shard Rng assignment, so pod- and rack-sharded runs are not
// flow-for-flow identical — but they simulate the same physics on the same
// flow population, so aggregate congestion must agree (the same contract
// MatchesSerialFlowPopulation pins between serial and sharded).
TEST(ShardedDatacenter, TorMatchesPodStatistically) {
  DatacenterConfig c = sharded_config();
  const DatacenterResult pod = run_datacenter_sharded(c, 8);
  c.shard_granularity = topo::ShardGranularity::kTor;
  const DatacenterResult tor = run_datacenter_sharded(c, 8);
  EXPECT_EQ(pod.unfinished, 0u);
  EXPECT_EQ(tor.unfinished, 0u);
  ASSERT_EQ(pod.flows.size(), tor.flows.size());
  double pod_mean = 0.0;
  double tor_mean = 0.0;
  for (std::size_t i = 0; i < pod.flows.size(); ++i) {
    EXPECT_EQ(pod.flows[i].id, tor.flows[i].id);
    EXPECT_EQ(pod.flows[i].size_bytes, tor.flows[i].size_bytes);
    EXPECT_EQ(pod.flows[i].start_time, tor.flows[i].start_time);
    EXPECT_EQ(pod.flows[i].ideal_fct, tor.flows[i].ideal_fct);
    pod_mean += pod.flows[i].slowdown();
    tor_mean += tor.flows[i].slowdown();
  }
  pod_mean /= static_cast<double>(pod.flows.size());
  tor_mean /= static_cast<double>(tor.flows.size());
  EXPECT_NEAR(tor_mean, pod_mean, 0.25 * pod_mean);
}

// Heterogeneous-latency core (the multi-RTT shape the matrix exists for):
// a 4 us spine tier over a 1 us pod fabric.  The per-pair matrix must keep
// the tight 1 us bound for rack neighbors while far pairs relax — and the
// planner decisions derived from it must stay schedule-independent.
TEST(ShardedDatacenter, AdaptiveLookaheadHeterogeneousDelays) {
  DatacenterConfig c = sharded_config();
  c.shard_granularity = topo::ShardGranularity::kTor;
  c.topo.spine_link_delay = 4 * sim::kMicrosecond;
  ShardedRunStats s1;
  ShardedRunStats s8;
  const DatacenterResult r1 = run_datacenter_sharded(c, 1, &s1);
  const DatacenterResult r8 = run_datacenter_sharded(c, 8, &s8);
  ASSERT_GT(r1.flows.size(), 50u);
  expect_identical(r1, r8);
  // Same-pod rack pairs still touch over 1 us agg links; cross-pod pairs
  // must pay the 4 us core at least once.
  EXPECT_EQ(s1.lookahead_min, 1 * sim::kMicrosecond);
  EXPECT_GT(s1.lookahead_max, s1.lookahead_min);
  // Every planner decision is derived from simulation state only, so the
  // epoch ledger itself is part of the determinism contract.
  EXPECT_EQ(s1.epochs, s8.epochs);
  EXPECT_EQ(s1.epochs_skipped, s8.epochs_skipped);
  EXPECT_EQ(s1.horizon_jumps, s8.horizon_jumps);
  // Adaptive horizons must beat the legacy fixed-quantum schedule, which
  // would have paid one barrier per lookahead_min over the whole run.
  EXPECT_LT(s1.epochs,
            static_cast<std::uint64_t>(r1.end_time / s1.lookahead_min));
}

// Idle-shard fast-forward: two rack-local bursts separated by long silent
// gaps, confined to pods 0 and 1.  Racks in pods 2-7 have no work at any
// point — the active-set protocol must skip them wholesale — and the gaps
// must be crossed in horizon jumps instead of empty 1 us epochs.
TEST(ShardedDatacenter, IdleShardFastForward) {
  DatacenterConfig c = sharded_config();
  c.shard_granularity = topo::ShardGranularity::kTor;
  c.components.clear();
  // Host h lives in rack h / 4; hosts 0-7 are pod 0, 8-15 pod 1.
  c.preset_flows = {
      {1, 0, 5, 50000, 0},                          // pod 0, rack 0 -> 1
      {2, 8, 1, 50000, 0},                          // pod 1 -> pod 0
      {3, 2, 12, 20000, 300 * sim::kMicrosecond},   // burst 2 after a gap
      {4, 9, 3, 20000, 300 * sim::kMicrosecond},
      {5, 4, 13, 20000, 600 * sim::kMicrosecond},   // burst 3
  };
  ShardedRunStats s1;
  ShardedRunStats s4;
  const DatacenterResult r1 = run_datacenter_sharded(c, 1, &s1);
  const DatacenterResult r4 = run_datacenter_sharded(c, 4, &s4);
  expect_identical(r1, r4);
  EXPECT_EQ(r1.unfinished, 0u);
  EXPECT_EQ(r1.flows.size(), 5u);
  EXPECT_TRUE(s1.drained);
  // The skip and jump ledgers are deterministic state, not heuristics.
  EXPECT_EQ(s1.epochs, s4.epochs);
  EXPECT_EQ(s1.epochs_skipped, s4.epochs_skipped);
  EXPECT_EQ(s1.horizon_jumps, s4.horizon_jumps);
  // 14 of 16 racks are idle the whole run; the planner must be skipping
  // far more shard-epochs than it executes.
  EXPECT_GT(s1.epochs_skipped, s1.epochs);
  // One jump per inter-burst gap at minimum.
  EXPECT_GE(s1.horizon_jumps, 2u);
  for (int s = 0; s < 16; ++s) {
    EXPECT_EQ(s1.pool_live_at_end[s], 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace fastcc::exp
