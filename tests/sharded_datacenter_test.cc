// Space-parallel (pod-sharded) datacenter runs.
//
// The contract under test: run_datacenter_sharded() is a pure function of
// (config) — the worker count changes wall-clock only, never a single byte
// of the result — and a fully drained run leaves every shard's packet pool
// empty even though packets hop between pools at every pod boundary.
#include "experiments/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/distributions.h"

namespace fastcc::exp {
namespace {

DatacenterConfig sharded_config() {
  DatacenterConfig c;
  c.variant = Variant::kHpccVaiSf;
  c.topo = topo::sharded_scaled_fat_tree();
  c.components = {{&workload::hadoop_cdf(), 1.0}};
  c.load = 0.5;
  c.generate_duration = 100 * sim::kMicrosecond;
  c.seed = 7;
  return c;
}

// Every observable, bit for bit — per-flow timings included.
void expect_identical(const DatacenterResult& a, const DatacenterResult& b) {
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.unfinished, b.unfinished);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].id, b.flows[i].id);
    EXPECT_EQ(a.flows[i].size_bytes, b.flows[i].size_bytes);
    EXPECT_EQ(a.flows[i].start_time, b.flows[i].start_time);
    EXPECT_EQ(a.flows[i].fct, b.flows[i].fct);
    EXPECT_EQ(a.flows[i].ideal_fct, b.flows[i].ideal_fct);
  }
}

// The tentpole guarantee: the logical partition is fixed by the topology
// (one shard per pod), so 1, 2, and 8 workers replay the identical
// simulation.  1 worker takes the serial code path (no threads, no barrier),
// 2 forces multiple shards per worker, 8 is one shard per worker.
TEST(ShardedDatacenter, ThreadCountInvariance) {
  const DatacenterResult r1 = run_datacenter_sharded(sharded_config(), 1);
  const DatacenterResult r2 = run_datacenter_sharded(sharded_config(), 2);
  const DatacenterResult r8 = run_datacenter_sharded(sharded_config(), 8);
  ASSERT_GT(r1.flows.size(), 50u);
  expect_identical(r1, r2);
  expect_identical(r1, r8);
}

// Pool hygiene across shard boundaries: a packet leaving pod A is
// export_release'd from A's pool and re-materialized in B's, so after a
// full drain every pool must be exactly empty — any nonzero live count is
// a leaked slot in the handoff path.
TEST(ShardedDatacenter, CrossShardHandoffLeakFree) {
  ShardedRunStats stats;
  const DatacenterResult r = run_datacenter_sharded(sharded_config(), 8, &stats);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.shards, 8);
  EXPECT_EQ(stats.lookahead, 1 * sim::kMicrosecond);
  // Hadoop traffic over 8 pods crosses boundaries constantly; a run where
  // nothing transferred would mean the boundary wiring silently fell back
  // to intra-shard delivery.
  EXPECT_GT(stats.cross_shard_transfers, 1000u);
  EXPECT_GT(stats.epochs, 10u);
  ASSERT_EQ(stats.pool_live_at_end.size(), 8u);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(stats.pool_live_at_end[s], 0u) << "shard " << s;
    EXPECT_GT(stats.pool_peak[s], 0u) << "shard " << s;
  }
}

// The sharded runner must simulate the same experiment as the serial one:
// identical flow population (ids, sizes, sources' start times) from a given
// seed, and every flow completing.  Timings are compared statistically, not
// exactly — per-shard Rng streams and epoch-batched injection reorder
// same-timestamp ties relative to the serial schedule.
TEST(ShardedDatacenter, MatchesSerialFlowPopulation) {
  const DatacenterConfig c = sharded_config();
  DatacenterResult serial = run_datacenter(c);
  const DatacenterResult sharded = run_datacenter_sharded(c, 8);
  EXPECT_EQ(serial.unfinished, 0u);
  EXPECT_EQ(sharded.unfinished, 0u);
  std::sort(serial.flows.begin(), serial.flows.end(),
            [](const stats::FlowRecord& a, const stats::FlowRecord& b) {
              return a.id < b.id;
            });
  ASSERT_EQ(serial.flows.size(), sharded.flows.size());
  double serial_mean = 0.0;
  double sharded_mean = 0.0;
  for (std::size_t i = 0; i < serial.flows.size(); ++i) {
    EXPECT_EQ(serial.flows[i].id, sharded.flows[i].id);
    EXPECT_EQ(serial.flows[i].size_bytes, sharded.flows[i].size_bytes);
    EXPECT_EQ(serial.flows[i].start_time, sharded.flows[i].start_time);
    EXPECT_EQ(serial.flows[i].ideal_fct, sharded.flows[i].ideal_fct);
    serial_mean += serial.flows[i].slowdown();
    sharded_mean += sharded.flows[i].slowdown();
  }
  serial_mean /= static_cast<double>(serial.flows.size());
  sharded_mean /= static_cast<double>(sharded.flows.size());
  // Same physics, different tie-breaks: aggregate congestion must agree.
  EXPECT_NEAR(sharded_mean, serial_mean, 0.25 * serial_mean);
}

// RED marking draws randomness at switch ports, and DCQCN enables PFC —
// both cross shard boundaries here (per-shard Rng streams; pause/resume
// frames through the mailboxes).  The invariance contract must survive
// that too.
TEST(ShardedDatacenter, RedAndPfcVariantStaysDeterministic) {
  DatacenterConfig c = sharded_config();
  c.variant = Variant::kDcqcn;
  c.load = 0.8;
  const DatacenterResult r1 = run_datacenter_sharded(c, 1);
  const DatacenterResult r8 = run_datacenter_sharded(c, 8);
  ASSERT_GT(r1.flows.size(), 0u);
  expect_identical(r1, r8);
}

// TSan target: maximum barrier contention — more workers than cores, many
// short epochs, every worker racing on the claim index and the mailboxes'
// publish/drain edges.  Run twice to also catch state bleeding between
// coordinator lifetimes.
TEST(ShardedDatacenter, EpochBarrierUnderContention) {
  DatacenterConfig c = sharded_config();
  c.generate_duration = 30 * sim::kMicrosecond;
  const DatacenterResult a = run_datacenter_sharded(c, 8);
  const DatacenterResult b = run_datacenter_sharded(c, 8);
  expect_identical(a, b);
}

}  // namespace
}  // namespace fastcc::exp
