// Variable AI (Algorithms 1 and 2) step-by-step semantics.
#include "core/variable_ai.h"

#include <gtest/gtest.h>

namespace fastcc::core {
namespace {

VariableAiParams paper_params() {
  VariableAiParams p;
  p.enabled = true;
  p.token_thresh = 50'000;  // ~min BDP in bytes
  p.ai_div = 1000;          // one token per KB
  p.bank_cap = 1000;
  p.ai_cap = 100;
  p.dampener_constant = 8;
  return p;
}

TEST(VariableAi, DisabledIsTransparent) {
  VariableAiParams p;  // enabled = false
  VariableAi vai(p);
  vai.observe(1e9);
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.ai_multiplier(true), 1.0);
  EXPECT_DOUBLE_EQ(vai.bank(), 0.0);
}

TEST(VariableAi, NoTokensBelowThreshold) {
  VariableAi vai(paper_params());
  vai.observe(49'999);
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.bank(), 0.0);
}

TEST(VariableAi, MintsMeasuredOverDivTokens) {
  VariableAi vai(paper_params());
  vai.observe(100'000);  // 100 KB queue -> 100 tokens
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.bank(), 100.0);
}

TEST(VariableAi, MaxSampleInRttIsUsed) {
  VariableAi vai(paper_params());
  vai.observe(30'000);
  vai.observe(80'000);
  vai.observe(10'000);
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.bank(), 80.0);
}

TEST(VariableAi, BankSaturatesAtCap) {
  VariableAi vai(paper_params());
  for (int i = 0; i < 20; ++i) {
    vai.observe(100'000);
    vai.on_rtt_boundary(false);
  }
  EXPECT_DOUBLE_EQ(vai.bank(), 1000.0);
}

TEST(VariableAi, CongestionSampleResetsEachRtt) {
  VariableAi vai(paper_params());
  vai.observe(100'000);
  vai.on_rtt_boundary(false);
  const double after_first = vai.bank();
  // Next RTT with no congestion observations mints nothing.
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.bank(), after_first);
}

TEST(VariableAi, DampenerGrowsWithCongestionSeverity) {
  VariableAi vai(paper_params());
  vai.observe(200'000);  // 4x the threshold
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.dampener(), 4.0);
  vai.observe(100'000);
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.dampener(), 6.0);
}

TEST(VariableAi, DampenerHoldsWhileBankNonEmpty) {
  VariableAi vai(paper_params());
  vai.observe(100'000);
  vai.on_rtt_boundary(false);
  const double d = vai.dampener();
  // Congestion clears but the bank still has tokens: dampener must not move.
  vai.on_rtt_boundary(true);
  EXPECT_DOUBLE_EQ(vai.dampener(), d);
}

TEST(VariableAi, DampenerResetRequiresEmptyBankAndQuietRtt) {
  VariableAi vai(paper_params());
  vai.observe(100'000);
  vai.on_rtt_boundary(false);
  // Drain the bank (spend=true removes min(cap, bank) = 100 tokens).
  vai.ai_multiplier(true);
  EXPECT_DOUBLE_EQ(vai.bank(), 0.0);
  EXPECT_GT(vai.dampener(), 0.0);
  vai.on_rtt_boundary(true);  // quiet RTT with empty bank
  EXPECT_DOUBLE_EQ(vai.dampener(), 0.0);
}

TEST(VariableAi, DampenerStepsDownUnderMildCongestion) {
  VariableAi vai(paper_params());
  vai.observe(400'000);
  vai.on_rtt_boundary(false);
  vai.ai_multiplier(true);  // empty the bank (400 -> 300 ... needs 4 spends)
  vai.ai_multiplier(true);
  vai.ai_multiplier(true);
  vai.ai_multiplier(true);
  ASSERT_DOUBLE_EQ(vai.bank(), 0.0);
  const double d = vai.dampener();
  vai.observe(10'000);  // congested RTT but below threshold
  vai.on_rtt_boundary(false);
  EXPECT_DOUBLE_EQ(vai.dampener(), d - 1.0);
}

TEST(VariableAi, MultiplierSpendsFromBank) {
  VariableAi vai(paper_params());
  vai.observe(150'000);
  vai.on_rtt_boundary(false);  // bank = 150
  EXPECT_DOUBLE_EQ(vai.ai_multiplier(true),
                   100.0 / (vai.dampener() / 8.0 + 1.0));
  EXPECT_DOUBLE_EQ(vai.bank(), 50.0);
}

TEST(VariableAi, NonSpendingQueryLeavesBankIntact) {
  VariableAi vai(paper_params());
  vai.observe(150'000);
  vai.on_rtt_boundary(false);
  vai.ai_multiplier(false);
  EXPECT_DOUBLE_EQ(vai.bank(), 150.0);
}

TEST(VariableAi, MultiplierNeverBelowOne) {
  VariableAi vai(paper_params());
  // Empty bank -> tokens 0 -> max(0/div, 1) = 1.
  EXPECT_DOUBLE_EQ(vai.ai_multiplier(true), 1.0);
  // Huge dampener also floors at 1.
  for (int i = 0; i < 50; ++i) {
    vai.observe(500'000);
    vai.on_rtt_boundary(false);
  }
  EXPECT_GE(vai.ai_multiplier(true), 1.0);
}

TEST(VariableAi, SpendIsCappedAtAiCap) {
  VariableAi vai(paper_params());
  for (int i = 0; i < 20; ++i) {
    vai.observe(1'000'000);
    vai.on_rtt_boundary(false);
  }
  ASSERT_DOUBLE_EQ(vai.bank(), 1000.0);
  vai.ai_multiplier(true);
  EXPECT_DOUBLE_EQ(vai.bank(), 900.0);  // only AI_Cap tokens left the bank
}

TEST(VariableAi, DampenerDividesEffectiveTokens) {
  VariableAiParams p = paper_params();
  VariableAi vai(p);
  vai.observe(100'000);
  vai.on_rtt_boundary(false);  // bank 100, dampener 2
  // divisor = 2/8 + 1 = 1.25 -> 100/1.25 = 80.
  EXPECT_DOUBLE_EQ(vai.ai_multiplier(false), 80.0);
}

}  // namespace
}  // namespace fastcc::core
