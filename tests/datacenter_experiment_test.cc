// Integration tests of the fat-tree datacenter experiment driver at a tiny
// CI-budget scale.
#include "experiments/datacenter.h"

#include <gtest/gtest.h>

#include "stats/fct.h"
#include "workload/distributions.h"
#include "workload/poisson.h"
#include "workload/trace.h"

#include <sstream>

namespace fastcc::exp {
namespace {

DatacenterConfig tiny_config(Variant v) {
  DatacenterConfig c;
  c.variant = v;
  c.topo = topo::scaled_fat_tree();
  c.components = {{&workload::hadoop_cdf(), 1.0}};
  c.load = 0.4;
  c.generate_duration = 200 * sim::kMicrosecond;
  c.seed = 3;
  return c;
}

TEST(DatacenterExperiment, AllFlowsCompleteLosslessly) {
  const DatacenterResult r = run_datacenter(tiny_config(Variant::kHpcc));
  EXPECT_GT(r.flows.size(), 50u);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_EQ(r.drops, 0u);
}

TEST(DatacenterExperiment, SlowdownsAreAtLeastOne) {
  const DatacenterResult r = run_datacenter(tiny_config(Variant::kHpcc));
  for (const auto& f : r.flows) {
    EXPECT_GE(f.slowdown(), 0.999) << "flow " << f.id << " beat the ideal";
  }
}

TEST(DatacenterExperiment, DeterministicAcrossRuns) {
  const DatacenterResult a = run_datacenter(tiny_config(Variant::kSwift));
  const DatacenterResult b = run_datacenter(tiny_config(Variant::kSwift));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(DatacenterExperiment, SeedChangesTheWorkload) {
  DatacenterConfig c1 = tiny_config(Variant::kHpcc);
  DatacenterConfig c2 = tiny_config(Variant::kHpcc);
  c2.seed = 4;
  const DatacenterResult a = run_datacenter(c1);
  const DatacenterResult b = run_datacenter(c2);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(DatacenterExperiment, SlowdownTableIsWellFormed) {
  const DatacenterResult r = run_datacenter(tiny_config(Variant::kHpccVaiSf));
  const auto rows = stats::slowdown_by_size(r.flows, 10, 50.0);
  ASSERT_GT(rows.size(), 5u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].max_size_bytes, rows[i - 1].max_size_bytes);
    EXPECT_GE(rows[i].slowdown, 1.0);
  }
}

TEST(DatacenterExperiment, MixedWorkloadDrawsFromBothCdfs) {
  DatacenterConfig c = tiny_config(Variant::kHpcc);
  c.components = {{&workload::websearch_cdf(), 0.5},
                  {&workload::storage_cdf(), 0.5}};
  const DatacenterResult r = run_datacenter(c);
  // Storage flows are tiny and numerous; websearch contributes multi-MB
  // flows.  Both signatures must appear.
  bool has_small = false, has_large = false;
  for (const auto& f : r.flows) {
    if (f.size_bytes < 10'000) has_small = true;
    if (f.size_bytes > 1'000'000) has_large = true;
  }
  EXPECT_TRUE(has_small);
  EXPECT_TRUE(has_large);
}

TEST(DatacenterExperiment, TraceReplayMatchesGeneratedRun) {
  // Replaying the exact flow schedule through preset_flows must reproduce
  // the generated run event-for-event.
  DatacenterConfig generated = tiny_config(Variant::kHpcc);
  const DatacenterResult a = run_datacenter(generated);

  // Regenerate the same schedule out-of-band (same derivation as the driver:
  // network rng seeded with config.seed, generator stream forked once).
  workload::PoissonTrafficParams traffic;
  traffic.components = generated.components;
  traffic.load = generated.load;
  traffic.host_bandwidth = generated.topo.host_bandwidth;
  traffic.host_count = generated.topo.host_count();
  traffic.duration = generated.generate_duration;
  sim::Rng base(generated.seed);
  sim::Rng traffic_rng = base.fork();
  std::vector<net::FlowSpec> flows =
      workload::generate_poisson_traffic(traffic, traffic_rng);

  // Round-trip the schedule through the CSV trace format.
  std::stringstream buffer;
  workload::write_flow_trace(buffer, flows);
  DatacenterConfig replay = tiny_config(Variant::kHpcc);
  replay.preset_flows = workload::read_flow_trace(buffer);
  const DatacenterResult b = run_datacenter(replay);

  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(DatacenterExperiment, OversubscribedFabricStillCompletes) {
  DatacenterConfig c = tiny_config(Variant::kHpccVaiSf);
  c.topo = topo::with_oversubscription(topo::scaled_fat_tree(), 4.0);
  c.load = 0.2;  // offered load must fit the thinner core
  const DatacenterResult r = run_datacenter(c);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_EQ(r.drops, 0u);
}

TEST(DatacenterExperiment, DcqcnRunsWithRedAndPfc) {
  const DatacenterResult r = run_datacenter(tiny_config(Variant::kDcqcn));
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_EQ(r.drops, 0u);
}

}  // namespace
}  // namespace fastcc::exp
