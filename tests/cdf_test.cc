// Flow-size CDF sampler and the paper's three workload distributions.
#include "workload/cdf.h"

#include <gtest/gtest.h>

#include "sim/random.h"
#include "workload/distributions.h"

namespace fastcc::workload {
namespace {

Cdf simple_cdf() {
  return Cdf("simple", {{1000, 0.0}, {2000, 0.5}, {10000, 1.0}});
}

TEST(Cdf, MeanIsExactForPiecewiseLinear) {
  const Cdf cdf = simple_cdf();
  // 0.5 * avg(1000,2000) + 0.5 * avg(2000,10000) = 750 + 3000.
  EXPECT_DOUBLE_EQ(cdf.mean_bytes(), 3750.0);
}

TEST(Cdf, ProbabilityBelowInterpolates) {
  const Cdf cdf = simple_cdf();
  EXPECT_DOUBLE_EQ(cdf.probability_below(1000), 0.0);
  EXPECT_DOUBLE_EQ(cdf.probability_below(1500), 0.25);
  EXPECT_DOUBLE_EQ(cdf.probability_below(2000), 0.5);
  EXPECT_DOUBLE_EQ(cdf.probability_below(6000), 0.75);
  EXPECT_DOUBLE_EQ(cdf.probability_below(10000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.probability_below(99999), 1.0);
}

TEST(Cdf, SamplesStayWithinSupport) {
  const Cdf cdf = simple_cdf();
  sim::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = cdf.sample(rng);
    EXPECT_GE(s, 1000u);
    EXPECT_LE(s, 10'000u);
  }
}

TEST(Cdf, SampleMeanConvergesToAnalyticMean) {
  const Cdf cdf = simple_cdf();
  sim::Rng rng(2);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(cdf.sample(rng));
  EXPECT_NEAR(sum / n, cdf.mean_bytes(), 0.02 * cdf.mean_bytes());
}

TEST(Cdf, SamplingIsDeterministicPerSeed) {
  const Cdf cdf = simple_cdf();
  sim::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cdf.sample(a), cdf.sample(b));
}

TEST(Cdf, LeadingNonzeroProbabilityGetsImplicitAnchor) {
  // First explicit point has positive mass: an implicit (size, 0) anchor
  // keeps inverse sampling well defined.
  const Cdf cdf("anchored", {{500, 0.4}, {1000, 1.0}});
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(cdf.sample(rng), 500u);
}

// ---- The paper's distributions (Section VI-A anchors) ----

TEST(Distributions, HadoopAnchors) {
  const Cdf& h = hadoop_cdf();
  // "95% < 300KB" and "2.5% > 1MB".
  EXPECT_NEAR(h.probability_below(300'000), 0.95, 0.005);
  EXPECT_NEAR(1.0 - h.probability_below(1'000'000), 0.025, 0.005);
}

TEST(Distributions, WebSearchHasLongFlowTail) {
  const Cdf& w = websearch_cdf();
  // "30% > 1MB" (approximately, the DCTCP websearch shape).
  const double over_1mb = 1.0 - w.probability_below(1'000'000);
  EXPECT_GT(over_1mb, 0.2);
  EXPECT_LT(over_1mb, 0.35);
}

TEST(Distributions, StorageAnchors) {
  const Cdf& s = storage_cdf();
  // "96% < 128KB and 100% < 2MB".
  EXPECT_NEAR(s.probability_below(131'072), 0.96, 0.005);
  EXPECT_DOUBLE_EQ(s.probability_below(2'097'152), 1.0);
  EXPECT_LE(s.max_bytes(), 2'097'152);
}

TEST(Distributions, MeansOrderedByWorkloadWeight) {
  // WebSearch is byte-heavy, storage is tiny, hadoop in between.
  EXPECT_GT(websearch_cdf().mean_bytes(), hadoop_cdf().mean_bytes());
  EXPECT_GT(hadoop_cdf().mean_bytes(), storage_cdf().mean_bytes());
}

TEST(Distributions, SampledTailMatchesAnchors) {
  sim::Rng rng(11);
  int over_300k = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (hadoop_cdf().sample(rng) > 300'000) ++over_300k;
  }
  EXPECT_NEAR(static_cast<double>(over_300k) / n, 0.05, 0.01);
}

}  // namespace
}  // namespace fastcc::workload
