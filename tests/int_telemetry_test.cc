// End-to-end INT telemetry across the fat-tree: the record stack a sender's
// congestion controller receives must describe the actual links traversed,
// hop by hop, with monotone timestamps and cumulative byte counters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/cc.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"

namespace fastcc::net {
namespace {

/// Records every AckContext INT stack it sees; holds the window wide open.
class IntProbeCc final : public cc::CongestionControl {
 public:
  void on_flow_start(FlowView flow) override {
    flow.window_bytes = FlowTx::kUnlimitedWindow;
    flow.rate = flow.line_rate;
  }
  void on_ack(const cc::AckContext& ack, FlowView) override {
    stacks.push_back(std::vector<IntRecord>(ack.ints.begin(), ack.ints.end()));
  }
  const char* name() const override { return "int-probe"; }

  std::vector<std::vector<IntRecord>> stacks;
};

TEST(IntTelemetry, CrossPodPathReportsSixHops) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::FatTree tree = build_fat_tree(network, topo::scaled_fat_tree());
  Host* src = tree.hosts.front();
  Host* dst = tree.hosts.back();
  const PathInfo path = network.path(src->id(), dst->id());
  ASSERT_EQ(path.hops, 6);

  auto probe = std::make_unique<IntProbeCc>();
  IntProbeCc* probe_raw = probe.get();
  FlowTx flow;
  flow.spec.id = 1;
  flow.spec.src = src->id();
  flow.spec.dst = dst->id();
  flow.spec.size_bytes = 50'000;
  flow.line_rate = src->port(0).bandwidth();
  flow.base_rtt = path.base_rtt;
  flow.path_hops = path.hops;
  flow.cc = std::move(probe);
  src->start_flow(std::move(flow));
  simulator.run();

  ASSERT_EQ(probe_raw->stacks.size(), 50u);  // one ACK per packet
  for (const auto& stack : probe_raw->stacks) {
    ASSERT_EQ(stack.size(), 6u);
    // Hop order: host NIC (100G), ToR->Agg, Agg->Spine, Spine->Agg,
    // Agg->ToR (all 400G), ToR->host (100G).
    EXPECT_DOUBLE_EQ(stack[0].bandwidth, sim::gbps(100));
    for (int h = 1; h <= 4; ++h) {
      EXPECT_DOUBLE_EQ(stack[h].bandwidth, sim::gbps(400)) << "hop " << h;
    }
    EXPECT_DOUBLE_EQ(stack[5].bandwidth, sim::gbps(100));
    // Egress timestamps advance along the path.
    for (int h = 1; h < 6; ++h) {
      EXPECT_GT(stack[h].timestamp, stack[h - 1].timestamp) << "hop " << h;
    }
  }

  // Per-hop tx counters are cumulative and monotone across ACKs.
  for (int h = 0; h < 6; ++h) {
    for (std::size_t i = 1; i < probe_raw->stacks.size(); ++i) {
      EXPECT_GT(probe_raw->stacks[i][h].tx_bytes,
                probe_raw->stacks[i - 1][h].tx_bytes)
          << "hop " << h << " ack " << i;
    }
  }
  // The last hop carried exactly the flow's wire bytes.
  EXPECT_EQ(probe_raw->stacks.back()[5].tx_bytes, 50u * 1048u);
}

TEST(IntTelemetry, SameTorPathReportsTwoHops) {
  sim::Simulator simulator;
  Network network(simulator);
  topo::FatTree tree = build_fat_tree(network, topo::scaled_fat_tree());
  Host* src = tree.hosts[0];
  Host* dst = tree.hosts[1];

  auto probe = std::make_unique<IntProbeCc>();
  IntProbeCc* probe_raw = probe.get();
  const PathInfo path = network.path(src->id(), dst->id());
  FlowTx flow;
  flow.spec.id = 1;
  flow.spec.src = src->id();
  flow.spec.dst = dst->id();
  flow.spec.size_bytes = 3'000;
  flow.line_rate = src->port(0).bandwidth();
  flow.base_rtt = path.base_rtt;
  flow.path_hops = path.hops;
  flow.cc = std::move(probe);
  src->start_flow(std::move(flow));
  simulator.run();

  ASSERT_EQ(probe_raw->stacks.size(), 3u);
  for (const auto& stack : probe_raw->stacks) {
    EXPECT_EQ(stack.size(), 2u);  // host NIC + ToR egress
  }
}

}  // namespace
}  // namespace fastcc::net
