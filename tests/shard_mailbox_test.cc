// ShardMailboxes protocol: per-(src, dst) sequence stamping, publish
// ordering (nothing is visible to the reader before the barrier's
// publish()), ascending-src drain order, the canonical
// (arrival, src shard, seq) injection order the sharded runner sorts into,
// and cell reuse across epochs.  These are the invariants fastcc-shardsafe
// checks statically; this test pins them dynamically.
#include "net/shard.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.h"

namespace fastcc::net {
namespace {

CrossShardPacket make_rec(FlowId flow, sim::Time arrival) {
  CrossShardPacket rec;
  rec.pkt = make_data(flow, /*src=*/0, /*dst=*/1, /*seq=*/0,
                      /*payload=*/100, /*now=*/0);
  rec.arrival = arrival;
  rec.dst_node = 1;
  rec.dst_port = 0;
  return rec;
}

std::vector<FlowId> flows_of(const std::vector<CrossShardPacket>& recs) {
  std::vector<FlowId> out;
  for (const CrossShardPacket& r : recs) out.push_back(r.pkt.flow);
  return out;
}

TEST(ShardMailboxes, NothingVisibleBeforePublish) {
  ShardMailboxes mb(3);
  EXPECT_TRUE(mb.all_empty());

  mb.put(0, 1, make_rec(10, 100));
  EXPECT_FALSE(mb.all_empty());

  std::vector<CrossShardPacket> inbox;
  mb.take_ready(1, inbox);
  EXPECT_TRUE(inbox.empty()) << "pending transfers leaked past the barrier";

  mb.publish();
  mb.take_ready(1, inbox);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].pkt.flow, 10u);
  EXPECT_TRUE(mb.all_empty());
}

TEST(ShardMailboxes, SequenceNumbersArePerShardPair) {
  ShardMailboxes mb(3);
  // Interleave deposits to two destinations; each (src, dst) pair keeps its
  // own counter, so neither stream perturbs the other's stamps.
  mb.put(0, 1, make_rec(1, 100));
  mb.put(0, 2, make_rec(2, 100));
  mb.put(0, 1, make_rec(3, 100));
  mb.put(2, 1, make_rec(4, 100));
  mb.put(0, 2, make_rec(5, 100));
  mb.publish();

  std::vector<CrossShardPacket> to1;
  mb.take_ready(1, to1);
  ASSERT_EQ(to1.size(), 3u);
  // Ascending src-shard order: src 0's cell first, then src 2's.
  EXPECT_EQ(flows_of(to1), (std::vector<FlowId>{1, 3, 4}));
  EXPECT_EQ(to1[0].seq, 0u);
  EXPECT_EQ(to1[1].seq, 1u);
  EXPECT_EQ(to1[2].seq, 0u);  // (2, 1) counts independently of (0, 1)
  EXPECT_EQ(to1[0].src_shard, 0);
  EXPECT_EQ(to1[2].src_shard, 2);

  std::vector<CrossShardPacket> to2;
  mb.take_ready(2, to2);
  ASSERT_EQ(to2.size(), 2u);
  EXPECT_EQ(flows_of(to2), (std::vector<FlowId>{2, 5}));
  EXPECT_EQ(to2[0].seq, 0u);
  EXPECT_EQ(to2[1].seq, 1u);
}

TEST(ShardMailboxes, CanonicalInjectionOrderIsDeterministic) {
  // Adversarial multi-source deposit pattern: equal arrivals from different
  // shards, out-of-order arrivals within a shard, and ties broken only by
  // (arrival, src shard, seq) — the exact sort the sharded runner applies
  // before re-materializing (experiments/sharded.cc inject_inbox).
  ShardMailboxes mb(4);
  mb.put(2, 0, make_rec(20, 500));
  mb.put(2, 0, make_rec(21, 300));
  mb.put(1, 0, make_rec(10, 500));
  mb.put(3, 0, make_rec(30, 300));
  mb.put(1, 0, make_rec(11, 300));
  mb.publish();

  std::vector<CrossShardPacket> inbox;
  mb.take_ready(0, inbox);
  ASSERT_EQ(inbox.size(), 5u);
  std::sort(inbox.begin(), inbox.end(),
            [](const CrossShardPacket& a, const CrossShardPacket& b) {
              return std::make_tuple(a.arrival, a.src_shard, a.seq) <
                     std::make_tuple(b.arrival, b.src_shard, b.seq);
            });
  // arrival 300: src 1 before src 2 before src 3; arrival 500: src 1
  // before src 2.  Flow ids encode the deposit, so the order is total.
  EXPECT_EQ(flows_of(inbox), (std::vector<FlowId>{11, 21, 30, 10, 20}));
}

TEST(ShardMailboxes, CellsAreReusedAcrossEpochs) {
  ShardMailboxes mb(2);

  // Epoch 1.
  mb.put(0, 1, make_rec(1, 100));
  mb.publish();
  std::vector<CrossShardPacket> inbox;
  mb.take_ready(1, inbox);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].seq, 0u);
  EXPECT_TRUE(mb.all_empty());

  // Epoch 2: the same (src, dst) cell carries fresh transfers; the drained
  // ready cell must not replay epoch 1's records, and the pair's sequence
  // counter keeps counting (it is a lifetime transfer count, which is what
  // makes (arrival, src, seq) a total order across epochs).
  mb.put(0, 1, make_rec(2, 200));
  mb.put(0, 1, make_rec(3, 200));
  inbox.clear();
  mb.take_ready(1, inbox);
  EXPECT_TRUE(inbox.empty()) << "epoch 2 pending visible before publish";
  mb.publish();
  mb.take_ready(1, inbox);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(flows_of(inbox), (std::vector<FlowId>{2, 3}));
  EXPECT_EQ(inbox[0].seq, 1u);
  EXPECT_EQ(inbox[1].seq, 2u);

  EXPECT_TRUE(mb.all_empty());
  EXPECT_EQ(mb.total_transfers(), 3u);
}

TEST(ShardMailboxes, TotalTransfersCountsAllPairs) {
  ShardMailboxes mb(3);
  mb.put(0, 1, make_rec(1, 10));
  mb.put(1, 2, make_rec(2, 10));
  mb.put(2, 0, make_rec(3, 10));
  mb.put(0, 2, make_rec(4, 10));
  EXPECT_EQ(mb.total_transfers(), 4u);
  mb.publish();
  EXPECT_EQ(mb.total_transfers(), 4u);  // publish moves, never re-counts
  std::vector<CrossShardPacket> inbox;
  for (int d = 0; d < 3; ++d) {
    inbox.clear();
    mb.take_ready(d, inbox);
  }
  EXPECT_TRUE(mb.all_empty());
  EXPECT_EQ(mb.total_transfers(), 4u);
}

TEST(ShardLookahead, ClosureBoundsIndirectPairs) {
  // 0 -> 1 (2us), 1 -> 2 (3us), 2 -> 0 (10us); no direct 0 -> 2 link.
  // Without the seal() path closure, shard 2 would see no constraint from
  // shard 0 at all and run ahead of a two-hop influence; with it,
  // between(0, 2) is the shortest path sum and the matrix satisfies the
  // triangle inequality the conservative-horizon argument needs.
  ShardLookahead la(3);
  la.observe_link(0, 1, 2000);
  la.observe_link(1, 2, 3000);
  la.observe_link(2, 0, 10000);
  la.seal();
  EXPECT_EQ(la.between(0, 0), 0);
  EXPECT_EQ(la.between(0, 1), 2000);
  EXPECT_EQ(la.between(0, 2), 5000);   // 0 -> 1 -> 2
  EXPECT_EQ(la.between(1, 0), 13000);  // 1 -> 2 -> 0
  EXPECT_EQ(la.min_window(), 2000);
  EXPECT_EQ(la.max_window(), 13000);   // the 1 -> 0 back-path is longest
}

TEST(ShardLookahead, KeepsMinimumParallelLinkAndMarksUnreachable) {
  ShardLookahead la(3);
  la.observe_link(0, 1, 5000);
  la.observe_link(0, 1, 1000);  // parallel link: min wins
  la.observe_link(1, 0, 4000);
  la.seal();
  EXPECT_EQ(la.between(0, 1), 1000);
  EXPECT_EQ(la.between(1, 0), 4000);
  // Shard 2 has no links at all: unreachable both ways, and the window
  // fold must skip those pairs rather than poison min/max.
  EXPECT_EQ(la.between(0, 2), ShardLookahead::kUnreachable);
  EXPECT_EQ(la.between(2, 0), ShardLookahead::kUnreachable);
  EXPECT_EQ(la.min_window(), 1000);
  EXPECT_EQ(la.max_window(), 4000);  // the folded-away 5000 must not surface
}

TEST(ShardMailboxes, ReleaseHorizonTracksEarliestUndrainedArrival) {
  // The planner sizes epoch horizons from ready_release()/earliest_ready()
  // instead of peeking at records; the horizon must therefore be exactly
  // the min arrival over the published-but-undrained cells — and nothing
  // pending may leak into it before the barrier.
  ShardMailboxes mb(3);
  EXPECT_EQ(mb.earliest_ready(1), sim::kMaxTime);
  mb.put(0, 1, make_rec(1, 500));
  mb.put(2, 1, make_rec(2, 300));
  EXPECT_EQ(mb.earliest_ready(1), sim::kMaxTime)
      << "pending deposits visible to the planner before publish";
  mb.publish();
  EXPECT_EQ(mb.ready_release(0, 1), 500);
  EXPECT_EQ(mb.ready_release(2, 1), 300);
  EXPECT_EQ(mb.ready_release(1, 1), sim::kMaxTime);  // empty cell
  EXPECT_EQ(mb.earliest_ready(1), 300);
  EXPECT_EQ(mb.earliest_ready(0), sim::kMaxTime);
}

TEST(ShardMailboxes, ReleaseHorizonSurvivesSkippedEpochs) {
  // An idle destination skips epochs without draining: its records stay
  // published, the horizon carries over publish() no-ops, and later
  // transfers min-fold into it.  Only the owning reader's take_ready()
  // resets the cell.
  ShardMailboxes mb(2);
  mb.put(0, 1, make_rec(1, 700));
  mb.publish();
  EXPECT_EQ(mb.earliest_ready(1), 700);
  mb.publish();  // skipped epoch: nothing pending, horizon intact
  EXPECT_EQ(mb.earliest_ready(1), 700);
  mb.put(0, 1, make_rec(2, 400));
  mb.publish();
  EXPECT_EQ(mb.earliest_ready(1), 400);
  EXPECT_FALSE(mb.all_empty()) << "retained records must still count";

  std::vector<CrossShardPacket> inbox;
  mb.take_ready(1, inbox);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(flows_of(inbox), (std::vector<FlowId>{1, 2}));
  EXPECT_EQ(mb.earliest_ready(1), sim::kMaxTime) << "drain must reset";
  EXPECT_TRUE(mb.all_empty());
  mb.put(0, 1, make_rec(3, 900));
  mb.publish();
  EXPECT_EQ(mb.earliest_ready(1), 900) << "horizon re-derives after reuse";
}

}  // namespace
}  // namespace fastcc::net
