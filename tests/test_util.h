// Shared helpers for fastcc tests.
#pragma once

#include <utility>
#include <vector>

#include "cc/cc.h"
#include "net/flow.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace fastcc::test {

/// A node that records everything delivered to it (timestamps included) and
/// never forwards — a measurement endpoint for port/link tests.
class SinkNode : public net::Node {
 public:
  struct Arrival {
    net::Packet packet;
    sim::Time at;
    int in_port;
  };

  SinkNode(sim::Simulator& simulator, net::NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {}

  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  std::size_t count() const { return arrivals_.size(); }

 protected:
  void receive(net::Packet&& p, int in_port) override {
    consume(p);
    arrivals_.push_back(Arrival{std::move(p), sim_.now(), in_port});
  }

 private:
  std::vector<Arrival> arrivals_;
};

/// Congestion control stub: applies a fixed window and rate at flow start
/// and never reacts to feedback.  Lets host/NIC tests isolate the datapath.
class FixedCc final : public cc::CongestionControl {
 public:
  FixedCc(double window_bytes, sim::Rate rate)
      : window_bytes_(window_bytes), rate_(rate) {}

  void on_flow_start(net::FlowTx& flow) override {
    flow.window_bytes = window_bytes_;
    flow.rate = rate_;
  }
  void on_ack(const cc::AckContext&, net::FlowTx&) override {}
  const char* name() const override { return "fixed"; }

 private:
  double window_bytes_;
  sim::Rate rate_;
};

/// Builds a data packet wired for direct Port::enqueue in unit tests.
inline net::Packet test_packet(std::uint32_t payload, net::FlowId flow = 1,
                               net::NodeId src = 0, net::NodeId dst = 1) {
  return net::make_data(flow, src, dst, /*seq=*/0, payload, /*now=*/0);
}

}  // namespace fastcc::test
