// Shared helpers for fastcc tests.
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "cc/cc.h"
#include "net/flow.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace fastcc::test {

/// A node that records everything delivered to it (timestamps included) and
/// never forwards — a measurement endpoint for port/link tests.  Arrivals
/// keep a by-value copy of the packet for inspection; the pool handle is
/// released immediately, as a real endpoint would.
class SinkNode : public net::Node {
 public:
  struct Arrival {
    net::Packet packet;
    sim::Time at;
    int in_port;
  };

  SinkNode(sim::Simulator& simulator, net::NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {}

  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  std::size_t count() const { return arrivals_.size(); }

 protected:
  void receive(net::PacketRef ref, int in_port) override {
    const net::Packet& p = packet_pool()->get(ref);
    consume(p);
    arrivals_.push_back(Arrival{p, sim_->now(), in_port});
    packet_pool()->release(ref);
  }

 private:
  std::vector<Arrival> arrivals_;
};

/// Binds one shared PacketPool to a set of directly-wired nodes (handles
/// cross node boundaries, so everything in a fabric must share a pool).
/// Network-based tests don't need this — Network binds its own pool.
inline void bind_pool(net::PacketPool& pool,
                      std::initializer_list<net::Node*> nodes) {
  for (net::Node* n : nodes) n->set_packet_pool(&pool);
}

/// Congestion control stub: applies a fixed window and rate at flow start
/// and never reacts to feedback.  Lets host/NIC tests isolate the datapath.
class FixedCc final : public cc::CongestionControl {
 public:
  FixedCc(double window_bytes, sim::Rate rate)
      : window_bytes_(window_bytes), rate_(rate) {}

  void on_flow_start(net::FlowView flow) override {
    flow.window_bytes = window_bytes_;
    flow.rate = rate_;
  }
  void on_ack(const cc::AckContext&, net::FlowView) override {}
  const char* name() const override { return "fixed"; }

 private:
  double window_bytes_;
  sim::Rate rate_;
};

/// Builds a data packet wired for direct Port::enqueue in unit tests.
inline net::Packet test_packet(std::uint32_t payload, net::FlowId flow = 1,
                               net::NodeId src = 0, net::NodeId dst = 1) {
  return net::make_data(flow, src, dst, /*seq=*/0, payload, /*now=*/0);
}

}  // namespace fastcc::test
