// Packet model edge cases: constructors, INT stack bounds, ACK echoing.
#include "net/packet.h"

#include <gtest/gtest.h>

namespace fastcc::net {
namespace {

TEST(Packet, MakeDataFillsWireFields) {
  const Packet p = make_data(/*flow=*/7, /*src=*/1, /*dst=*/2, /*seq=*/5000,
                             /*payload=*/800, /*now=*/123);
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.flow, 7u);
  EXPECT_EQ(p.seq, 5000u);
  EXPECT_EQ(p.payload_bytes, 800u);
  EXPECT_EQ(p.wire_bytes, 800u + kHeaderBytes);
  EXPECT_EQ(p.host_ts, 123);
  EXPECT_EQ(p.int_count, 0);
  EXPECT_FALSE(p.is_control());
}

TEST(Packet, MakeAckReversesDirectionAndEchoes) {
  Packet data = make_data(9, 1, 2, 10'000, 1000, 555);
  data.ecn = true;
  IntRecord rec;
  rec.timestamp = 42;
  rec.qlen_bytes = 7;
  data.push_int(rec);

  const Packet ack = make_ack(data, /*now=*/600);
  EXPECT_EQ(ack.type, PacketType::kAck);
  EXPECT_TRUE(ack.is_control());
  EXPECT_EQ(ack.src, 2u);
  EXPECT_EQ(ack.dst, 1u);
  EXPECT_EQ(ack.seq, 11'000u);  // cumulative: seq + payload
  EXPECT_EQ(ack.wire_bytes, kAckBytes);
  EXPECT_EQ(ack.host_ts, 555);  // echoed sender timestamp
  EXPECT_EQ(ack.ack_ts, 600);   // stamped at ACK generation
  EXPECT_TRUE(ack.ecn);
  ASSERT_EQ(ack.int_count, 1);
  EXPECT_EQ(ack.ints[0].timestamp, 42);
  EXPECT_EQ(ack.ints[0].qlen_bytes, 7u);
}

TEST(Packet, IntStackSaturatesAtMaxHops) {
  Packet p = make_data(1, 0, 1, 0, 1000, 0);
  for (int i = 0; i < kMaxHops + 5; ++i) {
    IntRecord rec;
    rec.qlen_bytes = static_cast<std::uint32_t>(i);
    p.push_int(rec);
  }
  EXPECT_EQ(p.int_count, kMaxHops);
  // The first kMaxHops records are kept; overflow is dropped silently.
  EXPECT_EQ(p.ints[kMaxHops - 1].qlen_bytes,
            static_cast<std::uint32_t>(kMaxHops - 1));
}

TEST(Packet, ControlTypes) {
  Packet pfc;
  pfc.type = PacketType::kPfcPause;
  EXPECT_TRUE(pfc.is_control());
  pfc.type = PacketType::kPfcResume;
  EXPECT_TRUE(pfc.is_control());
}

TEST(Packet, DefaultsAreInert) {
  Packet p;
  EXPECT_EQ(p.src, kInvalidNode);
  EXPECT_EQ(p.dst, kInvalidNode);
  EXPECT_EQ(p.ingress_port, -1);
  EXPECT_EQ(p.pfc_port, -1);
  EXPECT_FALSE(p.ecn);
  EXPECT_FALSE(p.cnp);
}

}  // namespace
}  // namespace fastcc::net
