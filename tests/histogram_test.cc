#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.h"
#include "stats/percentile.h"

namespace fastcc::stats {
namespace {

TEST(Histogram, CountsAndMoments) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, PercentileWithinBucketError) {
  // Geometric buckets with growth 1.25 bound the relative error of any
  // percentile by 25%.
  Histogram h(1.0, 1.25, 128);
  sim::Rng rng(5);
  std::vector<double> exact;
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform(1.0, 1000.0);
    h.add(v);
    exact.push_back(v);
  }
  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double e = percentile(exact, p);
    const double a = h.percentile(p);
    EXPECT_NEAR(a, e, 0.25 * e) << "p" << p;
  }
}

TEST(Histogram, ExtremePercentilesHitMinMax) {
  Histogram h;
  h.add(3.0);
  h.add(7.0);
  h.add(500.0);
  EXPECT_LE(h.percentile(0.0), 3.0 + 1e-9);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 500.0);
}

TEST(Histogram, ZeroAndSubMinValuesLandInFirstBucket) {
  Histogram h(10.0);
  h.add(0.0);
  h.add(5.0);
  EXPECT_EQ(h.count_below(10.0), 2u);
}

TEST(Histogram, CountBelowIsMonotone) {
  Histogram h;
  sim::Rng rng(6);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(0.0, 100.0));
  std::uint64_t prev = 0;
  for (double v = 1.0; v < 200.0; v *= 1.5) {
    const std::uint64_t c = h.count_below(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(h.count_below(1e9), 1000u);
}

TEST(Histogram, LongTailDoesNotOverflowBuckets) {
  Histogram h(1.0, 1.25, 32);  // deliberately few buckets
  h.add(1e18);                 // far beyond the last boundary
  h.add(2.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1e18);
}

TEST(Histogram, CsvOutputListsNonEmptyBuckets) {
  Histogram h(1.0, 2.0, 16);
  h.add(1.5);
  h.add(1.5);
  h.add(100.0);
  std::ostringstream os;
  h.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("lower,upper,count"), std::string::npos);
  EXPECT_NE(out.find(",2"), std::string::npos);  // the two 1.5s
}

}  // namespace
}  // namespace fastcc::stats
