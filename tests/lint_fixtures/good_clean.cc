// fastcc-lint fixture: idiomatic code that must produce ZERO findings.
// Exercises the patterns closest to each check's trigger so the self-test
// catches false positives.  Never compiled.

namespace fastcc::good {

// Randomness flows through sim::Rng, forked per consumer.
int pick_egress(sim::Rng& rng, int fanout) {
  return static_cast<int>(rng.uniform_int(0, fanout - 1));
}

// Ordered, value-keyed containers iterate deterministically.
double total_bytes(const std::map<int, double>& per_flow) {
  double total = 0.0;
  for (const auto& [id, bytes] : per_flow) total += bytes;
  (void)sizeof(int[1]);  // array subscript after ']' is not a lambda
  return total;
}

// Unit-expressed Time/Rate values; widening to double is fine for stats.
double fct_microseconds(sim::Time fct) {
  return static_cast<double>(fct) / static_cast<double>(sim::kMicrosecond);
}

// Packets move by handle (PacketRef), by rvalue reference into the pool,
// or by const reference for inspection — never by value.
void schedule_safe(sim::Simulator& sim, net::PacketPool& pool,
                   net::PacketRef frame, net::Packet&& spare,
                   const net::Packet& peek) {
  const sim::Time poll_interval = 10 * sim::kMicrosecond;
  const sim::Rate line_rate = sim::gbps(400.0);
  (void)line_rate;
  consume(std::move(spare));
  consume(peek.seq);
  net::Packet scratch;           // default-init local: no copy involved
  net::Packet& slot = pool.get(frame);
  consume(slot.seq + scratch.seq);
  std::vector<net::PacketRef> backlog;  // handles, not Packet values
  backlog.push_back(frame);

  // Value captures only; small, unit-expressed delay.
  sim.after(poll_interval, [count = 0]() mutable { ++count; });

  // Per-hop delivery carries the pool pointer plus the 4-byte handle.
  net::PacketPool* pp = &pool;
  sim.after(poll_interval, [pp, frame] { pp->release(frame); });

  // Move-init capture with its inline-size guard adjacent.
  std::array<char, 32> tag{};
  auto deliver = [t = std::move(tag)]() mutable { consume(t.data()); };
  static_assert(sim::UniqueFunction::fits_inline<decltype(deliver)>,
                "delivery closure must fit the scheduler's inline buffer");
  sim.after(poll_interval, std::move(deliver));

  // vector::at() is not Simulator::at(): must not trip the capture check
  // even with a lambda argument in the same expression.
  std::vector<int> lookup = {1, 2, 3};
  std::for_each(lookup.begin(), lookup.end(), [&](int v) { consume(v); });
  (void)lookup.at(0);
}

}  // namespace fastcc::good
