// fastcc-units fixture: [unchecked-conversion] — raw *8 / /8 / *1000
// factors applied to a dimensioned value outside src/sim/time.h.  The
// sanctioned spellings are gbps()/to_gbps() for the bits<->bytes family and
// the kMicrosecond-family constants for the SI time ladder; a bare factor
// hides which unit the value is in afterwards.

using Time = long long;
using Rate = double;

double fxc_to_bits(Rate r) {
  return r * 8.0;  // expect-units: unchecked-conversion
}

double fxc_to_micros(Time t) {
  return t / 1000;  // expect-units: unchecked-conversion
}

void fxc_compound(Rate r) {
  r *= 1000.0;  // expect-units: unchecked-conversion
}
