// fastcc-units fixture: [unit-mix] — two different dimensions meeting in
// +, -, a comparison, a compound assignment, or an argument sink.  A Time
// added to a Rate, a B/ns Rate compared against a Gbps-family value, and a
// Time passed where a Rate parameter is declared are all silent int/double
// arithmetic to the compiler.

using Time = long long;
using Rate = double;

Time fxm_deadline(Time start, Rate pace) {
  return start + pace;  // expect-units: unit-mix
}

bool fxm_rate_vs_gbps(Rate r) {
  double g = to_gbps(r);
  return r > g;  // expect-units: unit-mix
}

void fxm_wrong_arg(Time t) {
  fxm_deadline(t, t);  // expect-units: unit-mix
}

void fxm_accumulate(Time t, Rate r) {
  t += r;  // expect-units: unit-mix
}
