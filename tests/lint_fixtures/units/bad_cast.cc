// fastcc-units fixture: [cast-drops-unit] — casts laundering one dimension
// into another.  A cast changes representation (double -> int64), never
// units; static_cast<Time>(rate) silently rebadges bytes-per-ns as
// nanoseconds where the real fix is division or multiplication by the
// missing quantity.

using Time = long long;
using Rate = double;

Time fxk_launder(Rate r) {
  return static_cast<Time>(r);  // expect-units: cast-drops-unit
}

Rate fxk_functional(Time t) {
  return Rate(t);  // expect-units: cast-drops-unit
}

void fxk_assign(Time t, Rate r) {
  t = static_cast<long long>(r);  // expect-units: cast-drops-unit
}
