// fastcc-units fixture: [unit-product] — a squared dimension (Time x Time
// or Rate x Rate) reaching a Time/Rate sink.  Squared values are legal in
// intermediate math (variance accumulators live in undimensioned doubles),
// but a Time^2 stored back into a Time variable is always a missing divide.

using Time = long long;
using Rate = double;

Time fxp_square(Time rtt) {
  Time t2 = rtt * rtt;  // expect-units: unit-product
  return t2;
}

Rate fxp_rate_sq(Rate a, Rate b) {
  return a * b;  // expect-units: unit-product
}

void fxp_compound(Time t) {
  t *= t;  // expect-units: unit-product
}
