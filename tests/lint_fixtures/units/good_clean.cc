// fastcc-units fixture: clean control.  Exercises every legitimate shape
// the analyzer must accept without a finding: Rate x Time = Bytes,
// Bytes / Time = Rate, Bytes / Rate = Time, the gbps()/to_gbps()
// conversion round-trip, ratios landing in undimensioned doubles,
// branch/ternary/loop joins, and a reasoned lint:allow suppression.
//
// clean-units: unit-mix, unit-product, unchecked-conversion
// clean-units: dimensionless-sink, cast-drops-unit

using Time = long long;
using Rate = double;

struct FxgFlow {
  Rate line_rate;
  Time base_rtt;
  FASTCC_UNIT_BYTES double window_bytes;
};

double fxg_window(FxgFlow& flow) {
  // Rate x Time = Bytes: the bandwidth-delay product.
  double bdp = flow.line_rate * static_cast<double>(flow.base_rtt);
  return bdp;
}

Rate fxg_pace(FxgFlow& flow) {
  // Bytes / Time = Rate.
  return flow.window_bytes / static_cast<double>(flow.base_rtt);
}

Time fxg_finish(FxgFlow& flow, Time now, Rate bw) {
  Time earliest = now + 500;
  double bytes_left = fxg_window(flow);
  // Bytes / Rate = Time; Time + Time stays Time.
  Time fin = earliest + static_cast<Time>(bytes_left / bw);
  if (fin < earliest) {
    fin = earliest;
  }
  return fin;
}

Rate fxg_gbps_roundtrip(double gigabits) {
  Rate r = gbps(gigabits);
  double g = to_gbps(r);
  Rate back = gbps(g);
  return back;
}

double fxg_utilization(Time busy, Time window) {
  // A derived ratio is fine as long as it lands in an undimensioned double.
  return static_cast<double>(busy) / static_cast<double>(window);
}

double fxg_reasoned_bits(Rate r) {
  // A deliberate raw factor stays permitted behind a reasoned allow.
  return r * 8.0;  // lint:allow(unchecked-conversion -- fixture proves reasoned suppression works)
}

Time fxg_joins(Time a, Time b, bool flip) {
  Time t = flip ? a : b;
  for (Time step = 1; step < t; step += 100) {
    t = t - step;
  }
  return t;
}
