// fastcc-units fixture: [dimensionless-sink] — a computed dimensionless
// ratio (Time/Time here) stored into a Time-dimensioned variable.  The
// division cancelled the unit, so whatever lands in the sink is a bare
// number wearing a Time type; utilization fractions belong in undimensioned
// doubles.

using Time = long long;

Time fxd_util(Time busy, Time window) {
  Time frac = busy / window;  // expect-units: dimensionless-sink
  return frac;
}

Time fxd_stamp(Time a, Time b) {
  return static_cast<Time>(a / b);  // expect-units: dimensionless-sink
}
