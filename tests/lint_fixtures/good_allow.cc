// fastcc-lint fixture: deliberate violations suppressed with lint:allow.
// The self-test treats any surviving finding here as a failure, so this
// file proves the suppression mechanism works.  Never compiled.

namespace fastcc::good {

// lint:allow(mutable-global -- test-only counter, reset between fixtures)
static int g_debug_counter = 0;

void drain_before_exit(sim::Simulator& sim) {
  int completed = 0;
  // lint:allow(ref-capture-callback -- run() drains this event before scope exit)
  sim.at(2 * sim::kMicrosecond, [&completed] { ++completed; });
  sim.run();
}

void logging_only() {
  // lint:allow(wall-clock -- log timestamping only; never feeds simulation state)
  auto wall = std::chrono::steady_clock::now();
  (void)wall;
}

}  // namespace fastcc::good
