// fastcc-lint fixture: ordering checks (unordered-iter, ptr-keyed-container).
// Never compiled — consumed by `tools/fastcc-lint --self-test`.

namespace fastcc::bad {

struct FlowStats {
  std::unordered_map<int, double> per_flow_bytes;
  std::unordered_set<int> active_flows;
};

double sum_goodput(const FlowStats& stats) {
  double total = 0.0;
  for (const auto& [id, bytes] : stats.per_flow_bytes) {  // expect-lint: unordered-iter
    total += bytes;
  }
  return total;
}

int first_active(const FlowStats& stats) {
  auto it = stats.active_flows.begin();                   // expect-lint: unordered-iter
  return it != stats.active_flows.end() ? *it : -1;
}

struct Node {};

// Pointer keys sort by allocation address: iteration order varies run to
// run under ASLR even though the container itself is "ordered".
std::map<const Node*, int> queue_depth_by_node;           // expect-lint: ptr-keyed-container
std::set<Node*> visited;                                  // expect-lint: ptr-keyed-container

}  // namespace fastcc::bad
