// fastcc-dataflow fixture: cross-shard handoff discipline.  A PacketRef is
// an index into one shard's PacketPool; the only way across a shard
// boundary is the serializing FASTCC_CONSUMES_XSHARD path (export_release),
// whose by-value Packet result is what a FASTCC_XSHARD_SINK deposit
// accepts.  Never compiled.

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
  Packet export_release(FASTCC_CONSUMES_XSHARD PacketRef ref);
};
struct ShardRouter {
  FASTCC_XSHARD_SINK void deposit(Packet&& pkt, Time arrival, NodeId dst_node,
                                  int dst_port);
};

namespace fastcc::bad {

void raw_handle_into_mailbox(PacketPool& pool, ShardRouter& router) {
  PacketRef ref = pool.alloc();
  // The destination shard cannot dereference this pool's index: the handle
  // is meaningless over there and its slot leaks over here.
  router.deposit(ref, 100, 3, 0);  // expect-dataflow: raw-cross-shard-handoff
  pool.release(ref);
}

void use_after_serialize(PacketPool& pool, ShardRouter& router) {
  PacketRef ref = pool.alloc();
  router.deposit(pool.export_release(ref), 100, 3, 0);
  // export_release ended the handle's life in this pool.
  Packet& p = pool.get(ref);  // expect-dataflow: use-after-release
  p.ecn = true;
}

void serialize_borrowed_handle(FASTCC_BORROWS PacketRef ref, PacketPool& pool,
                               ShardRouter& router) {
  // The caller still owns this handle; serializing it out from under them
  // frees a slot they will touch again.
  router.deposit(pool.export_release(ref), 100, 3, 0);  // expect-dataflow: contract-violation
}

}  // namespace fastcc::bad
