// fastcc-dataflow fixture: PFC ingress accounting left undischarged when a
// delivered (foreign-origin) packet's slot is recycled.  The upstream port
// then counts phantom bytes forever and may stay paused — the PR-3 tail-drop
// bug class.  Never compiled.
//
// dataflow:pfc-scope

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
  FASTCC_PRODUCES PacketRef front() const;
  void pop_front();
};
void on_packet_departed(const Packet& p);
void consume(const Packet& p);

namespace fastcc::bad {

void sink_without_discharge(FASTCC_CONSUMES PacketRef ref, PacketPool& pool) {
  // A delivered packet arrives pre-charged against its ingress port; this
  // sink recycles the slot without ever crediting the bytes back.
  pool.release(ref);  // expect-dataflow: unbalanced-pfc
}

void discharge_only_on_one_path(FASTCC_CONSUMES PacketRef ref,
                                PacketPool& pool, bool is_ack) {
  Packet& p = pool.get(ref);
  if (is_ack) {
    consume(p);
  }
  // Data packets fall through with their accounting still charged.
  pool.release(ref);  // expect-dataflow: unbalanced-pfc
}

void drop_from_queue_without_discharge(PacketPool& pool) {
  PacketRef ref = pool.front();
  pool.pop_front();
  // Queued packets are foreign too: they were accounted when delivered.
  pool.release(ref);  // expect-dataflow: unbalanced-pfc
}

}  // namespace fastcc::bad
