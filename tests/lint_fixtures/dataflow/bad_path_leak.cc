// fastcc-dataflow fixture: owned handles that reach a return, an
// overwrite, or the end of the function without being transferred or
// released on some path.  Each leak pins a PacketPool slot forever (and,
// for delivered packets, its PFC ingress accounting with it).  Never
// compiled.

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
};
void enqueue(FASTCC_CONSUMES PacketRef ref);

namespace fastcc::bad {

void leak_on_early_return(PacketPool& pool, bool drop) {
  PacketRef ref = pool.alloc();
  if (drop) {
    return;  // expect-dataflow: path-leak
  }
  enqueue(ref);
}

void leak_at_end_of_function(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  Packet& p = pool.get(ref);
  p.ecn = true;  // expect-dataflow: path-leak
}

void leak_by_overwrite(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  ref = pool.alloc();  // expect-dataflow: path-leak
  pool.release(ref);
}

void consumed_param_dropped(FASTCC_CONSUMES PacketRef ref, PacketPool& pool,
                            bool ok) {
  if (ok) {
    enqueue(ref);
    return;
  }
  return;  // expect-dataflow: path-leak
}

void leak_only_in_else(PacketPool& pool, bool fast) {
  PacketRef ref = pool.alloc();
  if (fast) {
    enqueue(ref);
  } else {
    Packet& p = pool.get(ref);
    p.ecn = true;
  }
  return;  // expect-dataflow: path-leak
}

}  // namespace fastcc::bad
