// fastcc-dataflow fixture: PacketRef handles touched after their ownership
// ended (release, FASTCC_CONSUMES transfer, or closure escape).  Each
// annotated line reintroduces the stale-handle bug class the pool's
// generation check only catches at runtime.  Never compiled.

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
};
void enqueue(FASTCC_CONSUMES PacketRef ref);

namespace fastcc::bad {

void use_after_release(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  pool.release(ref);
  Packet& p = pool.get(ref);  // expect-dataflow: use-after-release
  p.ecn = true;
}

void use_after_transfer(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  enqueue(ref);
  pool.get(ref).ecn = true;  // expect-dataflow: use-after-release
}

void use_after_release_one_path(PacketPool& pool, bool drop) {
  PacketRef ref = pool.alloc();
  if (drop) {
    pool.release(ref);
  }
  // Owned on the fall-through path, released on the drop path: flow-
  // sensitive join makes this a may-use-after-release — and the surviving
  // owned handle then leaks at the end of the function.
  pool.get(ref).ecn = true;  // expect-dataflow: use-after-release, path-leak
}

void capture_after_release(PacketPool& pool, Simulator& sim) {
  PacketRef ref = pool.alloc();
  pool.release(ref);
  sim.after(10, [ref] { enqueue(ref); });  // expect-dataflow: use-after-release
}

void release_after_escape(PacketPool& pool, Simulator& sim) {
  PacketRef ref = pool.alloc();
  sim.after(10, [ref] { enqueue(ref); });
  pool.release(ref);  // expect-dataflow: use-after-release
}

}  // namespace fastcc::bad
