// fastcc-dataflow fixture: code that contradicts its declared ownership
// contract — destroying a handle it only borrowed, or smuggling an owned
// handle out of a function that never promised to produce one.  Never
// compiled.

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
};
void enqueue(FASTCC_CONSUMES PacketRef ref);

namespace fastcc::bad {

void peek_then_destroy(FASTCC_BORROWS PacketRef ref, PacketPool& pool) {
  Packet& p = pool.get(ref);
  if (p.ecn) {
    // The caller still owns ref; releasing it here invalidates the
    // caller's handle behind its back.
    pool.release(ref);  // expect-dataflow: contract-violation
  }
}

PacketRef undeclared_producer(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  // This function carries no FASTCC_PRODUCES, so callers have no idea
  // they just became responsible for a pool slot.
  return ref;  // expect-dataflow: contract-violation
}

}  // namespace fastcc::bad
