// fastcc-dataflow fixture: the same PacketRef released twice.  The second
// release() bumps a generation that now belongs to whoever re-alloc'd the
// slot, invalidating an innocent bystander's live handle.  Never compiled.

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
};
void enqueue(FASTCC_CONSUMES PacketRef ref);

namespace fastcc::bad {

void straight_line_double_release(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  pool.release(ref);
  pool.release(ref);  // expect-dataflow: double-release
}

void branch_double_release(PacketPool& pool, bool drop) {
  PacketRef ref = pool.alloc();
  if (drop) {
    pool.release(ref);
  }
  // Already released when drop was true.
  pool.release(ref);  // expect-dataflow: double-release
}

void loop_double_release(PacketPool& pool, int n) {
  PacketRef ref = pool.alloc();
  for (int i = 0; i < n; ++i) {
    // Second iteration releases an already-released handle; the widened
    // loop join carries the released state back to the loop head.
    pool.release(ref);  // expect-dataflow: double-release
    // The zero-iteration path never releases at all, so the same loop also
    // leaks the handle:
  }  // expect-dataflow: path-leak
}

}  // namespace fastcc::bad
