// fastcc-dataflow fixture: correct ownership discipline across the same
// shapes the bad_* fixtures get wrong.  The analysis must stay silent on
// every function here.  Never compiled.
//
// dataflow:pfc-scope
//
// clean-dataflow: use-after-release
// clean-dataflow: double-release
// clean-dataflow: path-leak
// clean-dataflow: unbalanced-pfc
// clean-dataflow: contract-violation

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
  FASTCC_PRODUCES PacketRef front() const;
  void pop_front();
};
void enqueue(FASTCC_CONSUMES PacketRef ref);
void on_packet_departed(const Packet& p);
void consume(const Packet& p);

namespace fastcc::good {

void alloc_fill_enqueue(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  Packet& p = pool.get(ref);
  p.ecn = false;
  enqueue(ref);
}

void alloc_then_release(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  pool.release(ref);
}

// Locally allocated packets carry no ingress accounting, so releasing one
// undischarged inside a pfc-scope file is fine.
void fresh_alloc_released_in_pfc_scope(PacketPool& pool, bool keep) {
  PacketRef ref = pool.alloc();
  if (keep) {
    enqueue(ref);
  } else {
    pool.release(ref);
  }
}

void sink_with_discharge(FASTCC_CONSUMES PacketRef ref, PacketPool& pool) {
  Packet& p = pool.get(ref);
  consume(p);
  pool.release(ref);
}

void depart_then_drop(FASTCC_CONSUMES PacketRef ref, PacketPool& pool) {
  Packet& p = pool.get(ref);
  on_packet_departed(p);
  pool.release(ref);
}

void branch_consumes_both_ways(FASTCC_CONSUMES PacketRef ref, PacketPool& pool,
                               bool forward) {
  if (forward) {
    enqueue(ref);
  } else {
    consume(pool.get(ref));
    pool.release(ref);
  }
}

void peek_only(FASTCC_BORROWS PacketRef ref, PacketPool& pool) {
  Packet& p = pool.get(ref);
  p.ecn = true;
}

FASTCC_PRODUCES PacketRef declared_producer(PacketPool& pool) {
  PacketRef ref = pool.alloc();
  Packet& p = pool.get(ref);
  p.ecn = false;
  return ref;
}

void loop_of_fresh_allocs(PacketPool& pool, int n) {
  for (int i = 0; i < n; ++i) {
    PacketRef ref = pool.alloc();
    enqueue(ref);
  }
}

void drain_queue(PacketPool& pool, int n) {
  for (int i = 0; i < n; ++i) {
    PacketRef ref = pool.front();
    pool.pop_front();
    consume(pool.get(ref));
    pool.release(ref);
  }
}

void switch_with_default(FASTCC_CONSUMES PacketRef ref, PacketPool& pool,
                         int kind) {
  switch (kind) {
    case 0:
      enqueue(ref);
      break;
    default:
      consume(pool.get(ref));
      pool.release(ref);
      break;
  }
}

void escape_into_closure(PacketPool& pool, Simulator& sim) {
  PacketRef ref = pool.alloc();
  sim.after(10, [ref] { enqueue(ref); });
}

}  // namespace fastcc::good
