// fastcc-dataflow fixture: the legal cross-shard handoff — serialize the
// handle out of the pool with export_release (FASTCC_CONSUMES_XSHARD) and
// hand the resulting by-value Packet to the FASTCC_XSHARD_SINK deposit.
// The analysis must stay silent on every function here.  Never compiled.
//
// clean-dataflow: raw-cross-shard-handoff

struct PacketPool {
  FASTCC_PRODUCES PacketRef alloc();
  Packet& get(FASTCC_BORROWS PacketRef ref);
  void release(FASTCC_CONSUMES PacketRef ref);
  Packet export_release(FASTCC_CONSUMES_XSHARD PacketRef ref);
};
struct ShardRouter {
  FASTCC_XSHARD_SINK void deposit(Packet&& pkt, Time arrival, NodeId dst_node,
                                  int dst_port);
};

namespace fastcc::good {

// Serialize-then-deposit in one expression: the handle dies inside
// export_release; the sink only ever sees bytes.
void serialize_then_deposit(PacketPool& pool, ShardRouter& router) {
  PacketRef ref = pool.alloc();
  Packet& p = pool.get(ref);
  p.ecn = false;
  router.deposit(pool.export_release(ref), 100, 3, 0);
}

// Branching: one path keeps the packet local, the other crosses the
// boundary; both end the handle's life exactly once.
void local_or_remote(PacketPool& pool, ShardRouter& router, bool remote) {
  PacketRef ref = pool.alloc();
  if (remote) {
    router.deposit(pool.export_release(ref), 200, 5, 1);
  } else {
    pool.release(ref);
  }
}

}  // namespace fastcc::good
