// fastcc-lint fixture: virtual dispatch on the sender hot path.  The file
// name contains "virtual_hot_path", which opts it into the hot-path gate
// the same way src/net/host.* and src/cc/ are.  Per-ACK controller dispatch
// must go through cc::CcEngine's static variant arms; a virtual interface
// or a heap-boxed controller costs an indirect call per acknowledged
// packet.  Never compiled; exercised by --self-test.

namespace fastcc::bad {

// A hand-rolled controller interface: every member re-introduces the
// per-ACK vtable hop that CcEngine exists to remove.
class MyController {
 public:
  virtual ~MyController() = default;  // expect-lint: virtual-hot-path
  virtual void on_ack(const cc::AckContext& ack,  // expect-lint: virtual-hot-path
                      net::FlowTx& flow) = 0;
};

// Boxing the controller puts an allocation per flow and a pointer chase
// per ACK back on the path FlowTx was flattened to avoid.
struct FlowState {
  std::unique_ptr<cc::CongestionControl> controller;  // expect-lint: virtual-hot-path
};

void install(FlowState& st, std::unique_ptr<cc::CongestionControl> cc) {  // expect-lint: virtual-hot-path
  st.controller = std::move(cc);
}

}  // namespace fastcc::bad
