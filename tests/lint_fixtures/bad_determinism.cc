// fastcc-lint fixture: determinism checks (wall-clock, c-rand, adhoc-rng).
// Never compiled — consumed by `tools/fastcc-lint --self-test`, which
// asserts each `expect-lint` annotation fires at exactly that line and that
// nothing else fires.

namespace fastcc::bad {

void wall_clock_sources() {
  auto boot = std::chrono::system_clock::now();        // expect-lint: wall-clock
  auto tick = std::chrono::steady_clock::now();        // expect-lint: wall-clock
  long stamp = time(nullptr);                          // expect-lint: wall-clock
  struct timeval tv;
  gettimeofday(&tv, nullptr);                          // expect-lint: wall-clock
  (void)boot;
  (void)tick;
  (void)stamp;
}

void libc_randomness() {
  srand(42);                                           // expect-lint: c-rand
  int draw = rand() % 16;                              // expect-lint: c-rand
  double jitter = drand48();                           // expect-lint: c-rand
  (void)draw;
  (void)jitter;
}

void adhoc_engines(unsigned seed) {
  std::mt19937 gen(seed);                              // expect-lint: adhoc-rng
  std::random_device entropy;                          // expect-lint: adhoc-rng
  std::uniform_int_distribution<int> pick(0, 7);       // expect-lint: adhoc-rng
  (void)gen;
  (void)entropy;
  (void)pick;
}

}  // namespace fastcc::bad
