// fastcc-lint fixture: hot-path code that dispatches statically and must
// produce ZERO findings.  The file name opts into the virtual-hot-path
// gate; everything here is the sanctioned replacement idiom — controllers
// held by value inside cc::CcEngine, boxes of unrelated types untouched.
// Never compiled; exercised by --self-test.

namespace fastcc::good {

// Controllers live by value in the engine; dispatch switches on the
// engine's kind tag instead of a vtable.
struct FlowState {
  cc::CcEngine engine;
};

void on_ack(FlowState& st, const cc::AckContext& ack, net::FlowTx& flow) {
  st.engine.on_ack(ack, flow);
}

// unique_ptr of anything else is fine — only boxed controllers re-open the
// per-ACK indirection.  `virtual_cc` and friends are single identifiers,
// not the `virtual` keyword.
struct Diagnostics {
  std::unique_ptr<std::string> label;
};

const char* engine_name(const cc::CcEngine& engine) {
  return engine.name();
}

}  // namespace fastcc::good
