// fastcc-lint fixture: by-value Packet traffic that the packet-copy check
// must flag.  Each annotated line reintroduces the ~280-byte copy the
// zero-copy pipeline removed.  Never compiled.

namespace fastcc::bad {

struct EgressQueue {
  std::deque<net::Packet> fifo_;  // expect-lint: packet-copy
  std::vector<Packet> backlog;  // expect-lint: packet-copy
};

void forward(net::Packet p);  // expect-lint: packet-copy

void mirror(int port, Packet frame, bool high) {  // expect-lint: packet-copy
  consume(port + high);
  consume(frame.seq);
}

void duplicate(const net::Packet& original) {
  net::Packet copy = original;  // expect-lint: packet-copy
  consume(copy.seq);
}

}  // namespace fastcc::bad
