// fastcc-lint fixture: assert() arguments carrying side effects.  Under
// NDEBUG the whole argument expression is compiled away, so the mutation
// happens in debug builds only and the two configurations simulate
// different networks.  Never compiled; exercised by --self-test.

namespace fastcc::bad {

void increments_inside_assert(int credits) {
  assert(++credits > 0);  // expect-lint: assert-side-effect
  assert(credits-- != 0);  // expect-lint: assert-side-effect
}

void assigns_inside_assert(int a, int b) {
  assert(a = b);  // expect-lint: assert-side-effect
  assert((a += b) < 100);  // expect-lint: assert-side-effect
}

void mutating_call_inside_assert(PacketPool& pool, PacketRef ref) {
  assert(pool.release(ref));  // expect-lint: assert-side-effect
  assert(pool.alloc().valid());  // expect-lint: assert-side-effect
}

void clean_asserts(const PacketPool& pool, PacketRef ref, int in_port,
                   int ports) {
  // Const observers and comparisons are fine: the lexer emits ==, <=, >=
  // as single tokens, so none of these look like assignments.
  assert(ref.valid());
  assert(in_port >= 0 && in_port < ports);
  assert(pool.live() == 0u);
  static_assert(sizeof(int) >= 4, "static_assert args are constant "
                "expressions and exempt");
}

}  // namespace fastcc::bad
