// fastcc-lint fixture: a bare lint:allow — no `-- reason` — must NOT
// suppress.  The finding still fires, carrying a trailing note that the
// allow was ignored.  Contrast good_allow.cc, where every suppression
// carries a reason and is honoured.

// lint:allow(mutable-global)
static int g_bare_above = 0;  // expect-lint: mutable-global

static int g_bare_inline = 0;  // lint:allow(mutable-global)  // expect-lint: mutable-global

// An empty reason is a bare allow too: `--` alone documents nothing.
// lint:allow(mutable-global --)
static int g_bare_empty_reason = 0;  // expect-lint: mutable-global
