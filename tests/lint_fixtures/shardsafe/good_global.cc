// fastcc-shardsafe fixture: statics that do NOT break shard isolation.
// Clean control for [worker-mutable-global] — a constant (not mutable) and
// a mutable static touched only from barrier completion-step code, which
// runs single-threaded.  (The mutable static still fires fastcc-lint's
// own check, hence the expect-lint marker.)
//
// clean-shardsafe: worker-mutable-global

static const long long k_fix_table_rows = 8;

static long long g_fix_barrier_tally = 0;  // expect-lint: mutable-global

FASTCC_EPOCH_PUBLISH void fix_barrier_accounts() {
  g_fix_barrier_tally += k_fix_table_rows;
}
