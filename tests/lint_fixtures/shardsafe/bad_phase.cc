// fastcc-shardsafe fixture: writes on the wrong side of the epoch barrier.
// Firing cases for [epoch-phase-write] — worker-phase code writing
// FASTCC_EPOCH_PUBLISH state, barrier completion-step code writing
// FASTCC_SHARD_LOCAL state (the single-writer invariant the mailbox test
// guards dynamically), a worker write to FASTCC_SHARD_SHARED_RO state, and
// the interprocedural case: an unannotated helper that inherits the worker
// phase from its only caller.

struct FixLoopState {
  FASTCC_EPOCH_PUBLISH long long fix_horizon = 0;
  FASTCC_SHARD_LOCAL long long fix_backlog = 0;
  FASTCC_SHARD_SHARED_RO int fix_fanout = 1;

  FASTCC_SHARD_LOCAL void fix_worker_tick() {
    fix_horizon += 4;  // expect-shardsafe: epoch-phase-write
    fix_backlog += 1;
  }

  FASTCC_EPOCH_PUBLISH void fix_barrier_step() {
    fix_backlog = 0;  // expect-shardsafe: epoch-phase-write
    fix_horizon += 4;
  }

  FASTCC_SHARD_LOCAL void fix_worker_retunes() {
    fix_fanout = 2;  // expect-shardsafe: epoch-phase-write
  }

  void fix_helper_bump() {
    fix_horizon += 1;  // expect-shardsafe: epoch-phase-write
  }

  FASTCC_SHARD_LOCAL void fix_worker_via_helper() { fix_helper_bump(); }
};
