// fastcc-shardsafe fixture: mutable statics reachable from worker-phase
// code.  Firing cases for [worker-mutable-global] — a direct reference
// from an annotated worker method, and the interprocedural case where an
// unannotated helper inherits the worker phase from its caller.  (The
// statics themselves also fire fastcc-lint's mutable-global check, hence
// the expect-lint markers.)

static long long g_fix_epoch_hits = 0;  // expect-lint: mutable-global

FASTCC_SHARD_LOCAL void fix_worker_counts() {
  g_fix_epoch_hits += 1;  // expect-shardsafe: worker-mutable-global
}

static long long g_fix_transitive = 0;  // expect-lint: mutable-global

void fix_helper_touches() {
  g_fix_transitive += 1;  // expect-shardsafe: worker-mutable-global
}

FASTCC_SHARD_LOCAL void fix_worker_via_touch() { fix_helper_touches(); }
