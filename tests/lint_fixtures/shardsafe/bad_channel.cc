// fastcc-shardsafe fixture: FASTCC_XSHARD_CHANNEL methods called from the
// wrong phase.  Firing cases for [xshard-channel-phase] — worker-phase code
// invoking the publish side (it would race every other worker's pending
// cells), and barrier completion-step code invoking the worker-side
// deposit (the barrier does not own any shard's pending cell).

class FASTCC_XSHARD_CHANNEL FixBadBox {
 public:
  FASTCC_SHARD_LOCAL void fix_put_slot(int v) { fix_slot_ = v; }
  FASTCC_EPOCH_PUBLISH void fix_publish_slots() { fix_shown_ = fix_slot_; }

 private:
  FASTCC_SHARD_LOCAL int fix_slot_ = 0;
  FASTCC_EPOCH_PUBLISH int fix_shown_ = 0;
};

struct FixBadRunner {
  FASTCC_SHARD_LOCAL void fix_worker_publishes(FixBadBox& box) {
    box.fix_publish_slots();  // expect-shardsafe: xshard-channel-phase
  }

  FASTCC_EPOCH_PUBLISH void fix_barrier_deposits(FixBadBox& box) {
    box.fix_put_slot(1);  // expect-shardsafe: xshard-channel-phase
  }
};
