// fastcc-shardsafe fixture: the release-horizon channel protocol used as
// designed.  Clean control for [xshard-channel-phase] — the barrier-phase
// planner reads the published horizons to size epochs and pick the active
// set, while the owning reader resets its own column's horizon from worker
// phase as part of the drain.
//
// clean-shardsafe: xshard-channel-phase

class FASTCC_XSHARD_CHANNEL FixGoodHorizonBox {
 public:
  FASTCC_SHARD_LOCAL void fix_drain_resets(int dst) {
    // The owning reader resets its own column's horizon as part of the
    // drain, exactly like ShardMailboxes::take_ready.
    // lint:allow(epoch-phase-write -- reader-owned release-horizon reset travels with the column drain)
    fix_horizon_[dst] = 0;
  }
  FASTCC_EPOCH_PUBLISH int fix_horizon_of(int dst) { return fix_horizon_[dst]; }
  FASTCC_EPOCH_PUBLISH int fix_earliest_horizon() {
    int lo = fix_horizon_[0];
    if (fix_horizon_[1] < lo) lo = fix_horizon_[1];
    return lo;
  }

 private:
  FASTCC_EPOCH_PUBLISH int fix_horizon_[2] = {0, 0};
};

struct FixGoodHorizonPlanner {
  FASTCC_EPOCH_PUBLISH int fix_barrier_plans(FixGoodHorizonBox& box) {
    return box.fix_earliest_horizon();
  }

  FASTCC_EPOCH_PUBLISH int fix_barrier_sizes_epoch(FixGoodHorizonBox& box,
                                                   int dst) {
    return box.fix_horizon_of(dst);
  }

  FASTCC_SHARD_LOCAL void fix_reader_drains(FixGoodHorizonBox& box, int dst) {
    box.fix_drain_resets(dst);
  }
};
