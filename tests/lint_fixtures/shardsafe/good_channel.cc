// fastcc-shardsafe fixture: the channel protocol used as designed.  Clean
// control for [xshard-channel-phase] — workers deposit, the barrier
// completion step publishes, and mailbox reads happen only on the drained
// (post-publish) side.
//
// clean-shardsafe: xshard-channel-phase

class FASTCC_XSHARD_CHANNEL FixGoodBox {
 public:
  FASTCC_SHARD_LOCAL void fix_put_ok(int v) { fix_cell_ = v; }
  FASTCC_EPOCH_PUBLISH void fix_publish_ok() { fix_out_ = fix_cell_; }

 private:
  FASTCC_SHARD_LOCAL int fix_cell_ = 0;
  FASTCC_EPOCH_PUBLISH int fix_out_ = 0;
};

struct FixGoodRunner {
  FASTCC_SHARD_LOCAL void fix_worker_feeds(FixGoodBox& box, int v) {
    box.fix_put_ok(v);
  }

  FASTCC_EPOCH_PUBLISH void fix_barrier_flips(FixGoodBox& box) {
    box.fix_publish_ok();
  }
};
