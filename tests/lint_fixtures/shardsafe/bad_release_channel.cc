// fastcc-shardsafe fixture: a release-horizon mailbox channel used from the
// wrong phase.  The channel publishes a per-(src, dst) release time (the
// earliest arrival among published-but-undrained transfers) for the epoch
// planner; that side is barrier-phase state.  Firing cases for
// [xshard-channel-phase] — a worker consulting the publish-side horizon
// mid-epoch (it would race the barrier's min-fold), and the barrier
// completion step invoking the worker-side horizon reset (the reset
// travels with the owning reader's column drain, never with the barrier).

class FASTCC_XSHARD_CHANNEL FixBadHorizonBox {
 public:
  FASTCC_SHARD_LOCAL void fix_reset_release(int dst) {
    fix_release_[dst] = 0;  // expect-shardsafe: epoch-phase-write
  }
  FASTCC_EPOCH_PUBLISH int fix_release_of(int dst) { return fix_release_[dst]; }
  FASTCC_EPOCH_PUBLISH int fix_earliest_release() {
    int lo = fix_release_[0];
    if (fix_release_[1] < lo) lo = fix_release_[1];
    return lo;
  }

 private:
  FASTCC_EPOCH_PUBLISH int fix_release_[2] = {0, 0};
};

struct FixBadHorizonPlanner {
  FASTCC_SHARD_LOCAL int fix_worker_peeks_horizon(FixBadHorizonBox& box) {
    return box.fix_earliest_release();  // expect-shardsafe: xshard-channel-phase
  }

  FASTCC_SHARD_LOCAL int fix_worker_sizes_own_epoch(FixBadHorizonBox& box,
                                                    int dst) {
    return box.fix_release_of(dst);  // expect-shardsafe: xshard-channel-phase
  }

  FASTCC_EPOCH_PUBLISH void fix_barrier_resets(FixBadHorizonBox& box) {
    box.fix_reset_release(0);  // expect-shardsafe: xshard-channel-phase
  }
};
