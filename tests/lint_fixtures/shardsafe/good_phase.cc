// fastcc-shardsafe fixture: phase-correct epoch-loop state.  Clean control
// for [epoch-phase-write] — workers write only shard-local state, the
// barrier completion step writes only publish-side state, and the one
// legitimate cross-phase drain carries a reasoned lint:allow (a bare allow
// would not suppress; see bad_bare_allow.cc under the lint fixtures).
//
// clean-shardsafe: epoch-phase-write

struct FixGoodLoop {
  FASTCC_EPOCH_PUBLISH long long good_horizon = 0;
  FASTCC_SHARD_LOCAL long long good_backlog = 0;

  FASTCC_SHARD_LOCAL void good_worker_tick() {
    good_backlog += 1;
  }

  FASTCC_EPOCH_PUBLISH void good_barrier_step() {
    good_horizon += 4;
  }

  FASTCC_EPOCH_PUBLISH void good_barrier_drain() {
    // lint:allow(epoch-phase-write -- completion step owns the drain while workers are parked)
    good_backlog = 0;
  }
};
