// fastcc-shardsafe fixture: shard-local state escaping across the shard
// boundary.  Firing cases for [shard-local-escape] — a raw pool handle,
// a pointer to shard-local state, an alias of such a pointer, and a
// shard-local-capturing closure each reach a cross-shard sink.  A raw
// handle is meaningless in the destination shard's pool; only bytes
// serialized through a FASTCC_CONSUMES_XSHARD call may cross.
//
// Fixture-local stand-ins for the real pool/sink types; the analyzer keys
// on the contract macros, not on the type names.

class FASTCC_SHARD_LOCAL FixPool {};

struct FixRef {
  int idx = -1;
};

FASTCC_XSHARD_SINK void fix_deposit(FixRef bytes, long long arrival);
FASTCC_XSHARD_SINK void fix_publish_cell(long long* cell);
FASTCC_XSHARD_SINK void fix_store_callback(int key);
FASTCC_PRODUCES FixRef fix_alloc_from(FixPool& pool);

struct FixEgress {
  FASTCC_SHARD_LOCAL long long fix_queued_bytes_ = 0;

  FASTCC_SHARD_LOCAL void fix_smuggle_handle(FixPool& pool) {
    FixRef ref = fix_alloc_from(pool);
    fix_deposit(ref, 7);  // expect-shardsafe: shard-local-escape
  }

  FASTCC_SHARD_LOCAL void fix_leak_pointer() {
    fix_publish_cell(&fix_queued_bytes_);  // expect-shardsafe: shard-local-escape
  }

  FASTCC_SHARD_LOCAL void fix_leak_alias() {
    long long* cell = &fix_queued_bytes_;
    fix_publish_cell(cell);  // expect-shardsafe: shard-local-escape
  }

  FASTCC_SHARD_LOCAL void fix_leak_closure() {
    fix_store_callback([this] { fix_queued_bytes_ = 0; });  // expect-shardsafe: shard-local-escape
  }
};
