// fastcc-shardsafe fixture: the sanctioned cross-shard handoff.  Clean
// control for [shard-local-escape] — the pool handle is serialized through
// a FASTCC_CONSUMES_XSHARD call (the export_release idiom) before reaching
// the sink, and purely shard-local work never approaches the boundary.
//
// clean-shardsafe: shard-local-escape

class FASTCC_SHARD_LOCAL FixGoodPool {};

struct FixGoodRef {
  int idx = -1;
};

struct FixWire {
  int payload = 0;
};

FASTCC_XSHARD_SINK void fix_good_deposit(FixWire bytes, long long arrival);
FASTCC_PRODUCES FixGoodRef fix_good_alloc(FixGoodPool& pool);
FixWire fix_good_export(FixGoodPool& pool, FASTCC_CONSUMES_XSHARD FixGoodRef ref);
void fix_good_retire(FixGoodPool& pool, FASTCC_CONSUMES FixGoodRef ref);

struct FixGoodEgress {
  FASTCC_SHARD_LOCAL long long fix_good_queued_ = 0;

  FASTCC_SHARD_LOCAL void fix_good_forward(FixGoodPool& pool) {
    FixGoodRef ref = fix_good_alloc(pool);
    fix_good_deposit(fix_good_export(pool, ref), 7);
  }

  FASTCC_SHARD_LOCAL void fix_good_local_only(FixGoodPool& pool) {
    FixGoodRef ref = fix_good_alloc(pool);
    fix_good_retire(pool, ref);
    fix_good_queued_ += 1;
  }
};
