// fastcc-lint fixture: event-callback hygiene (ref-capture-callback,
// sbo-capture) and shared-state isolation (mutable-global).  Never
// compiled — consumed by `tools/fastcc-lint --self-test`.

namespace fastcc::bad {

static int g_total_drops = 0;                             // expect-lint: mutable-global
static const int kMaxRetries = 5;                         // ok: immutable
static double g_last_sample;                              // expect-lint: mutable-global

void schedule_unsafe(sim::Simulator& sim) {
  int completed = 0;
  sim.after(10 * sim::kMicrosecond, [&] {                 // expect-lint: ref-capture-callback
    ++completed;
  });
  sim.after(20 * sim::kMicrosecond, [&completed] {        // expect-lint: ref-capture-callback
    ++completed;
  });
}

void schedule_moved_payload(sim::Simulator& sim, net::Packet frame) {  // expect-lint: packet-copy
  // No size static_assert near this capture: the payload may silently
  // exceed the scheduler's inline buffer and take the heap path.
  sim.after(5 * sim::kMicrosecond, [f = std::move(frame)]() mutable {  // expect-lint: sbo-capture
    consume(std::move(f));
  });
}

}  // namespace fastcc::bad
