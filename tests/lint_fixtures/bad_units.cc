// fastcc-lint fixture: unit-safety checks (time-literal, rate-literal,
// time-narrowing, float-type).  Never compiled — consumed by
// `tools/fastcc-lint --self-test`.

namespace fastcc::bad {

void schedule_timeouts(sim::Simulator& sim) {
  sim::Time retransmit_deadline = 50000;                  // expect-lint: time-literal
  sim::Time poll_interval = 10 * sim::kMicrosecond;       // ok: unit-expressed
  (void)retransmit_deadline;
  (void)poll_interval;

  sim.at(250000, [] { /* timeout */ });                   // expect-lint: time-literal
  sim.at(3 * sim::kMillisecond, [] { /* ok: units */ });
}

void configure_rates() {
  sim::Rate link_rate = 400.0;                            // expect-lint: rate-literal
  sim::Rate good_rate = sim::gbps(400.0);                 // ok: converter used
  (void)link_rate;
  (void)good_rate;
}

void narrow_timestamps(sim::Simulator& sim) {
  const sim::Time start_time = 3 * sim::kMillisecond;
  int truncated = static_cast<int>(start_time);           // expect-lint: time-narrowing
  unsigned lag = static_cast<std::uint32_t>(sim.now());   // expect-lint: time-narrowing
  double widened = static_cast<double>(start_time);       // ok: widening for stats
  (void)truncated;
  (void)lag;
  (void)widened;
}

void single_precision() {
  float utilization_fraction = 0.5f;                      // expect-lint: float-type
  (void)utilization_fraction;
}

}  // namespace fastcc::bad
