// fastcc-lint fixture: the compliant counterpart of bad_cold_field_in_hot_
// loop.cc.  Per-packet loops read only the SoA slab lanes; the cold FlowTx
// record is touched once per batch, after the loop — the ack_apply /
// ack_finalize split host.cc actually uses.  Never compiled; exercised by
// --self-test.

namespace fastcc::good {

// Hot-lane-only drain: every per-packet load hits the slab, and the one
// flow whose cold state must move is finalized exactly once afterwards.
void drain_acks(net::Host& host, net::PacketRef first, net::FlowId touched) {
  while (first.valid()) {
    net::Packet& p = host.packet_pool()->get(first);
    const net::FlowIdx i = host.slab().index_of(p.flow);
    host.slab().cum_acked[i] += p.payload_bytes;  // hot lane: fine per packet
    first = net::PacketRef{p.batch_next};
  }
  net::FlowTx& f = *host.mutable_flow(touched);
  ++f.dup_acks;  // once per batch, outside the loop: the staged update
  f.last_retransmit_time = -1;
}

// Cold access hoisted above the loop: the loop body itself sees only the
// captured copy and the slab lanes.
std::uint64_t window_limited_bytes(const net::Host& host, net::FlowIdx i,
                                   int rounds) {
  const std::uint64_t limit = host.slab().window_bytes[i];
  std::uint64_t sent = 0;
  for (int r = 0; r < rounds; ++r) {
    sent += limit - host.slab().inflight_bytes(i);
  }
  return sent;
}

}  // namespace fastcc::good
