// fastcc-lint fixture: cold FlowTx fields touched inside per-packet loops.
// The file name contains "cold_field", which opts it into the hot-path gate
// the same way src/net/host.* and src/cc/ are.  FlowTx is split hot/cold
// (DESIGN.md §11): the SoA slab lanes are the only flow state a per-packet
// loop may touch; pulling the cold record in drags its cache lines through
// every iteration of an ACK burst.  Never compiled; exercised by
// --self-test.

namespace fastcc::bad {

// The anti-pattern the slab refactor removed: per-ACK dup-ACK bookkeeping
// against the cold record, inside the batch-drain loop instead of staged
// once per touched flow in ack_finalize.
void drain_acks(net::Host& host, net::PacketRef first) {
  while (first.valid()) {
    net::Packet& p = host.packet_pool()->get(first);
    net::FlowTx& f = *host.mutable_flow(p.flow);
    ++f.dup_acks;  // expect-lint: cold-field-in-hot-loop
    if (f.rto_timer_armed) {  // expect-lint: cold-field-in-hot-loop
      host.wheel().cancel(f.rto_timer);  // expect-lint: cold-field-in-hot-loop
    }
    first = net::PacketRef{p.batch_next};
  }
}

// Range-for over the flow table reading a retransmit counter: the counter
// moves once per loss event, so the sum belongs in a snapshot taken outside
// any per-packet context — and the loop drags every record's cold line in.
std::uint64_t total_retransmitted(const net::Host& host) {
  std::uint64_t total = 0;
  for (const auto& [fid, f] : host.tx_flows()) {
    total += f.bytes_retransmitted;  // expect-lint: cold-field-in-hot-loop
  }
  return total;
}

// The loop *condition* re-reads the cold line every pass even though the
// brace-free body never names the record.
void spin_until_disarmed(net::FlowTx* f) {
  while (f->cc_timer_at >= 0)  // expect-lint: cold-field-in-hot-loop
    step_once();
}

}  // namespace fastcc::bad
