// FlowSlab: the struct-of-arrays hot half of per-flow sender state
// (DESIGN.md §11).  Pins the three contracts the Host relies on:
//
//   * install/write_back round-trip every hot field and stamp hot_idx, so
//     the cold FlowTx record is a faithful archive once a flow finishes;
//   * swap compaction keeps the arrays dense and reports exactly which
//     flow moved, so (FlowId, FlowIdx-hint) holders can revalidate;
//   * a slab-resident flow and a standalone FlowTx observe identical hot
//     state through the same Host datapath (hot/cold equivalence).
#include "net/flow_slab.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/flow.h"
#include "net/host.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "topo/star.h"

namespace fastcc::net {
namespace {

using test::FixedCc;

FlowTx make_cold(FlowId id, std::uint64_t size_bytes) {
  FlowTx f;
  f.spec.id = id;
  f.spec.src = 1;
  f.spec.dst = 2 + static_cast<NodeId>(id);
  f.spec.size_bytes = size_bytes;
  f.snd_nxt = 10 * id;
  f.cum_acked = 5 * id;
  f.window_bytes = 1000.0 + static_cast<double>(id);
  f.rate = sim::gbps(10) + static_cast<double>(id);
  f.next_tx_time = 100 + static_cast<sim::Time>(id);
  f.rate_contribution = static_cast<double>(id);
  f.acks_received = 3 * id;
  f.last_progress_time = 7 * static_cast<sim::Time>(id);
  f.pacing_queued = (id % 2) == 0;
  f.line_rate = sim::gbps(100);
  f.base_rtt = 8000;
  f.mtu = kDefaultMtu;
  f.path_hops = 4;
  return f;
}

TEST(FlowSlab, InstallRoundTripsEveryHotFieldAndConstant) {
  FlowSlab slab;
  FlowTx cold = make_cold(/*id=*/4, /*size_bytes=*/123'456);
  const FlowIdx i = slab.install(cold);

  EXPECT_EQ(cold.hot_idx, i);
  EXPECT_EQ(slab.size(), 1u);
  // Hot lanes seeded from the record.
  EXPECT_EQ(slab.snd_nxt[i], cold.snd_nxt);
  EXPECT_EQ(slab.cum_acked[i], cold.cum_acked);
  EXPECT_EQ(slab.window_bytes[i], cold.window_bytes);
  EXPECT_EQ(slab.rate[i], cold.rate);
  EXPECT_EQ(slab.next_tx_time[i], cold.next_tx_time);
  EXPECT_EQ(slab.rate_contribution[i], cold.rate_contribution);
  EXPECT_EQ(slab.acks_received[i], cold.acks_received);
  EXPECT_EQ(slab.last_progress_time[i], cold.last_progress_time);
  EXPECT_EQ(slab.pacing_queued[i] != 0, cold.pacing_queued);
  // Replicated constants.
  EXPECT_EQ(slab.size_bytes[i], cold.spec.size_bytes);
  EXPECT_EQ(slab.mtu[i], cold.mtu);
  EXPECT_EQ(slab.line_rate[i], cold.line_rate);
  EXPECT_EQ(slab.base_rtt[i], cold.base_rtt);
  EXPECT_EQ(slab.path_hops[i], cold.path_hops);
  EXPECT_EQ(slab.dst[i], cold.spec.dst);
  EXPECT_EQ(slab.flow_id[i], cold.spec.id);

  // Mutate the hot lanes the way the ACK path does, then snapshot back.
  slab.snd_nxt[i] = 99'999;
  slab.cum_acked[i] = 88'888;
  slab.window_bytes[i] = 4242.0;
  slab.rate[i] = sim::gbps(25);
  slab.next_tx_time[i] = 555'555;
  slab.rate_contribution[i] = sim::gbps(25);
  slab.acks_received[i] = 77;
  slab.last_progress_time[i] = 444'444;
  slab.pacing_queued[i] = 1;
  slab.write_back(i, cold);
  EXPECT_EQ(cold.snd_nxt, 99'999u);
  EXPECT_EQ(cold.cum_acked, 88'888u);
  EXPECT_EQ(cold.window_bytes, 4242.0);
  EXPECT_EQ(cold.rate, sim::gbps(25));
  EXPECT_EQ(cold.next_tx_time, 555'555);
  EXPECT_EQ(cold.rate_contribution, sim::gbps(25));
  EXPECT_EQ(cold.acks_received, 77u);
  EXPECT_EQ(cold.last_progress_time, 444'444);
  EXPECT_TRUE(cold.pacing_queued);
  // write_back never touches the immutable spec.
  EXPECT_EQ(cold.spec.size_bytes, 123'456u);
  EXPECT_EQ(slab.inflight_bytes(i), 99'999u - 88'888u);
}

TEST(FlowSlab, ViewWritesThroughToTheLanes) {
  FlowSlab slab;
  FlowTx cold = make_cold(/*id=*/1, /*size_bytes=*/10'000);
  const FlowIdx i = slab.install(cold);
  FlowView v = slab.view(i);
  v.snd_nxt = 1234;
  v.window_bytes = 55.0;
  v.rate = sim::gbps(7);
  EXPECT_EQ(slab.snd_nxt[i], 1234u);
  EXPECT_EQ(slab.window_bytes[i], 55.0);
  EXPECT_EQ(slab.rate[i], sim::gbps(7));
  // Constants ride by value and match the replicated lanes.
  EXPECT_EQ(v.line_rate, slab.line_rate[i]);
  EXPECT_EQ(v.base_rtt, slab.base_rtt[i]);
  EXPECT_EQ(v.mtu, slab.mtu[i]);
  EXPECT_EQ(v.path_hops, slab.path_hops[i]);
}

TEST(FlowSlab, CompactMovesTailIntoHoleAndReportsIt) {
  FlowSlab slab;
  FlowTx a = make_cold(10, 1000), b = make_cold(20, 2000),
         c = make_cold(30, 3000);
  slab.install(a);
  const FlowIdx bi = slab.install(b);
  slab.install(c);
  ASSERT_EQ(slab.size(), 3u);

  // Freeing the middle slot moves the tail (flow 30) into it.
  const auto [moved, moved_id] = slab.compact(bi);
  EXPECT_TRUE(moved);
  EXPECT_EQ(moved_id, 30u);
  ASSERT_EQ(slab.size(), 2u);
  EXPECT_EQ(slab.flow_id[bi], 30u);
  // Every lane moved together: spot-check hot and constant lanes.
  EXPECT_EQ(slab.snd_nxt[bi], c.snd_nxt);
  EXPECT_EQ(slab.size_bytes[bi], 3000u);
  EXPECT_EQ(slab.dst[bi], c.spec.dst);

  // Freeing the tail slot moves nothing.
  const auto [moved2, moved2_id] = slab.compact(slab.size() - 1);
  EXPECT_FALSE(moved2);
  (void)moved2_id;
  ASSERT_EQ(slab.size(), 1u);
  EXPECT_EQ(slab.flow_id[0], 10u);
}

// ---- Hot/cold equivalence through the Host datapath. ----

struct SlabHostHarness : ::testing::Test {
  sim::Simulator simulator;
  Network network{simulator};
  topo::Star star;

  void SetUp() override {
    topo::StarParams params;
    params.host_count = 5;
    star = build_star(network, params);
  }

  void start(Host* src, Host* dst, FlowId id, std::uint64_t bytes,
             sim::Rate rate) {
    const PathInfo path = network.path(src->id(), dst->id());
    FlowTx f;
    f.spec.id = id;
    f.spec.src = src->id();
    f.spec.dst = dst->id();
    f.spec.size_bytes = bytes;
    f.spec.start_time = simulator.now();
    f.line_rate = src->port(0).bandwidth();
    f.base_rtt = path.base_rtt;
    f.path_hops = path.hops;
    f.cc = std::make_unique<FixedCc>(1e12, rate);
    src->start_flow(std::move(f));
  }
};

TEST_F(SlabHostHarness, MidRunQueryWritesBackLiveHotState) {
  Host* src = star.hosts[0];
  start(src, star.hosts[1], 1, 2'000'000, sim::gbps(100));
  start(src, star.hosts[2], 2, 2'000'000, sim::gbps(50));

  // Stop mid-transfer: both flows are slab-resident and in flight.
  simulator.run(/*until=*/40 * sim::kMicrosecond);
  ASSERT_EQ(src->active_flow_count(), 2u);

  const FlowTx* f1 = src->flow(1);
  const FlowTx* f2 = src->flow(2);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  // The write-back exposes *live* values, not the install-time zeros.
  EXPECT_GT(f1->snd_nxt, 0u);
  EXPECT_GT(f1->cum_acked, 0u);
  EXPECT_GE(f1->snd_nxt, f1->cum_acked);
  EXPECT_GT(f1->acks_received, 0u);
  EXPECT_FALSE(f1->finished());
  // The 2x rate gap must show up in the written-back progress counters.
  EXPECT_GT(f1->cum_acked, f2->cum_acked);
  // Incremental rate bookkeeping matches the O(n) definition (both read
  // through the slab's rate_contribution lane vs. recomputing from rate).
  EXPECT_DOUBLE_EQ(src->total_send_rate(), src->total_send_rate_recomputed());

  // Run to completion: the archive holds the final values and the slab
  // slot is gone.
  simulator.run();
  f1 = src->flow(1);
  ASSERT_TRUE(f1->finished());
  EXPECT_EQ(f1->cum_acked, 2'000'000u);
  EXPECT_EQ(f1->snd_nxt, 2'000'000u);
  EXPECT_EQ(f1->hot_idx, kInvalidFlowIdx);
  EXPECT_EQ(src->active_flow_count(), 0u);
}

TEST_F(SlabHostHarness, CompactionOnFlowFinishKeepsSurvivorsCorrect) {
  // Regression for the swap-compaction path: flows finishing in an order
  // that forces every compaction case (middle slot freed, tail slot freed)
  // must leave the surviving flows' hot state — and the arbiter's cached
  // FlowIdx hints — pointing at the right lanes.  Sizes are staggered so
  // flow 2 (smallest) finishes first, freeing a middle slot while 1 and 3
  // still fly; then 3 (former tail, now relocated) finishes; then 1.
  Host* src = star.hosts[0];
  start(src, star.hosts[1], 1, 900'000, sim::gbps(30));
  start(src, star.hosts[2], 2, 60'000, sim::gbps(30));
  start(src, star.hosts[3], 3, 500'000, sim::gbps(30));

  std::vector<FlowId> finish_order;
  src->set_completion_callback(
      [&](const FlowTx& f) { finish_order.push_back(f.spec.id); });

  // Let flow 2 finish; 1 and 3 must still be live and progressing.
  simulator.run(/*until=*/40 * sim::kMicrosecond);
  ASSERT_EQ(finish_order, (std::vector<FlowId>{2}));
  ASSERT_EQ(src->active_flow_count(), 2u);
  const std::uint64_t acked1 = src->flow(1)->cum_acked;
  const std::uint64_t acked3 = src->flow(3)->cum_acked;
  EXPECT_GT(acked3, 0u);

  // After compaction relocated flow 3's slot, its progress must continue
  // from where it was — not from flow 2's leftovers or install-time zeros.
  simulator.run(/*until=*/60 * sim::kMicrosecond);
  EXPECT_GT(src->flow(1)->cum_acked, acked1);
  EXPECT_GT(src->flow(3)->cum_acked, acked3);
  EXPECT_DOUBLE_EQ(src->total_send_rate(), src->total_send_rate_recomputed());

  simulator.run();
  EXPECT_EQ(finish_order, (std::vector<FlowId>{2, 3, 1}));
  for (FlowId id = 1; id <= 3; ++id) {
    const FlowTx* f = src->flow(id);
    ASSERT_TRUE(f->finished()) << "flow " << id;
    EXPECT_EQ(f->cum_acked, f->spec.size_bytes) << "flow " << id;
    EXPECT_EQ(f->hot_idx, kInvalidFlowIdx) << "flow " << id;
  }
  EXPECT_EQ(src->total_send_rate(), 0.0);
}

TEST_F(SlabHostHarness, StandaloneRecordMatchesSlabResidentFlow) {
  // Hot/cold equivalence: the same controller driven against a standalone
  // FlowTx (the unit-test idiom, FlowView over the record's own members)
  // and against a slab-resident flow (FlowView over the lanes) must agree.
  // FixedCc pins window and rate, so equivalence here means the slab wiring
  // delivered exactly the same view-mediated writes.
  Host* src = star.hosts[0];
  const sim::Rate rate = sim::gbps(40);
  start(src, star.hosts[1], 7, 300'000, rate);
  simulator.run(/*until=*/30 * sim::kMicrosecond);

  const FlowTx* live = src->flow(7);
  ASSERT_NE(live, nullptr);
  ASSERT_FALSE(live->finished());
  // The slab-resident flow's controller writes landed in the lanes and are
  // visible through the write-back...
  EXPECT_DOUBLE_EQ(live->window_bytes, 1e12);
  EXPECT_DOUBLE_EQ(live->rate, rate);

  // ...and a standalone record run through the same controller call gets
  // the identical hot values through the FlowTx-backed view.
  FlowTx standalone = make_cold(7, 300'000);
  standalone.hot_idx = kInvalidFlowIdx;
  FixedCc cc(1e12, rate);
  cc.on_flow_start(FlowView(standalone));
  EXPECT_DOUBLE_EQ(standalone.window_bytes, live->window_bytes);
  EXPECT_DOUBLE_EQ(standalone.rate, live->rate);
}

}  // namespace
}  // namespace fastcc::net
