// UniqueFunction: small-buffer optimization, move semantics, and lifetime
// accounting.  The destructor-count tests guard against double-destroy on
// move-assign and leaked callables on overwrite — the bugs SBO makes easy.
#include "sim/unique_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace fastcc::sim {
namespace {

// Counts constructions and destructions so tests can assert every object
// created is destroyed exactly once, across inline and heap storage.
struct LifeCounter {
  static int alive;
  static int destroyed;
  static void reset() { alive = destroyed = 0; }
  LifeCounter() { ++alive; }
  LifeCounter(const LifeCounter&) { ++alive; }
  LifeCounter(LifeCounter&&) noexcept { ++alive; }
  ~LifeCounter() {
    --alive;
    ++destroyed;
  }
};
int LifeCounter::alive = 0;
int LifeCounter::destroyed = 0;

TEST(UniqueFunction, InvokesStoredCallable) {
  int hits = 0;
  UniqueFunction f([&] { ++hits; });
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, EmptyByDefaultAndAfterMove) {
  UniqueFunction f;
  EXPECT_FALSE(f);
  UniqueFunction g([] {});
  EXPECT_TRUE(g);
  UniqueFunction h(std::move(g));
  EXPECT_TRUE(h);
  EXPECT_FALSE(g);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(UniqueFunction, MoveOnlyCapture) {
  auto token = std::make_unique<int>(41);
  int seen = 0;
  UniqueFunction f([t = std::move(token), &seen] { seen = *t + 1; });
  UniqueFunction g(std::move(f));  // relocation must preserve the capture
  g();
  EXPECT_EQ(seen, 42);
}

TEST(UniqueFunction, SmallCallablesStoreInline) {
  // The compile-time predicate the net layer uses to guarantee its hot
  // closures never allocate.
  auto small = [x = std::array<char, UniqueFunction::kInlineSize>{}] {
    (void)x;
  };
  static_assert(UniqueFunction::fits_inline<decltype(small)>);
  auto big = [x = std::array<char, UniqueFunction::kInlineSize + 1>{}] {
    (void)x;
  };
  static_assert(!UniqueFunction::fits_inline<decltype(big)>);
}

TEST(UniqueFunction, OverCapacityCallableFallsBackToHeap) {
  // A capture larger than the inline buffer must still work end to end.
  std::array<char, UniqueFunction::kInlineSize + 64> payload{};
  payload.front() = 1;
  payload.back() = 2;
  int sum = 0;
  UniqueFunction f([payload, &sum] { sum = payload.front() + payload.back(); });
  UniqueFunction g(std::move(f));
  g = std::move(g);  // self-move-assign must not destroy the callable
  g();
  EXPECT_EQ(sum, 3);
}

TEST(UniqueFunction, DestroysInlineCallableExactlyOnce) {
  LifeCounter::reset();
  {
    UniqueFunction f([c = LifeCounter()] { (void)c; });
    UniqueFunction g(std::move(f));   // move ctor: relocate + destroy source
    UniqueFunction h;
    h = std::move(g);                 // move assign into empty
    h = UniqueFunction([] {});        // overwrite destroys the counter
    EXPECT_EQ(LifeCounter::alive, 0);
  }
  EXPECT_EQ(LifeCounter::alive, 0);
  EXPECT_GT(LifeCounter::destroyed, 0);
}

TEST(UniqueFunction, DestroysHeapCallableExactlyOnce) {
  LifeCounter::reset();
  {
    std::array<char, UniqueFunction::kInlineSize + 1> pad{};
    UniqueFunction f([c = LifeCounter(), pad] { (void)c, (void)pad; });
    UniqueFunction g(std::move(f));  // heap case: pointer steal, no copy
    UniqueFunction h;
    h = std::move(g);
    EXPECT_EQ(LifeCounter::alive, 1);  // exactly the one stored instance
  }
  EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(UniqueFunction, MoveAssignOverLiveTargetDestroysOldCallable) {
  LifeCounter::reset();
  UniqueFunction a([c = LifeCounter()] { (void)c; });
  const int alive_with_one = LifeCounter::alive;
  UniqueFunction b([c = LifeCounter()] { (void)c; });
  a = std::move(b);  // a's original callable must be destroyed here
  EXPECT_EQ(LifeCounter::alive, alive_with_one);
}

TEST(UniqueFunction, EmptyInvokeIsNoOpInRelease) {
#ifdef NDEBUG
  UniqueFunction f;
  f();  // asserts in Debug; must be a harmless no-op in Release
  UniqueFunction g([] {});
  UniqueFunction h(std::move(g));
  g();  // moved-from is empty too
#else
  GTEST_SKIP() << "empty invoke asserts in Debug builds by design";
#endif
}

}  // namespace
}  // namespace fastcc::sim
