#include "net/monitor.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_util.h"

namespace fastcc::net {
namespace {

using test::SinkNode;
using test::test_packet;

struct MonitorHarness {
  sim::Simulator simulator;
  PacketPool pool;
  SinkNode a{simulator, 0, "a"};
  SinkNode b{simulator, 1, "b"};

  MonitorHarness() {
    test::bind_pool(pool, {&a, &b});
    a.add_port();
    b.add_port();
    a.port(0).connect(&b, 0, sim::gbps(100), 1000);
    b.port(0).connect(&a, 0, sim::gbps(100), 1000);
  }
};

TEST(QueueMonitor, SamplesBacklogOnSchedule) {
  MonitorHarness h;
  bool running = true;
  QueueMonitor mon(h.simulator, h.a.port(0), 100, "q",
                   [&running] { return running; });
  mon.start();
  // Enqueue a burst at t=0: backlog drains one packet per 84 ns.
  for (int i = 0; i < 10; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.at(2000, [&running] { running = false; });
  h.simulator.run(3000);
  ASSERT_GE(mon.series().size(), 10u);
  // First sample (t=100): the t=0 commit sent one packet, and the t=84 kick
  // bulk-committed the next kMaxBurstPackets at their analytic serialization
  // starts (DESIGN.md §11: dequeue accounting happens at burst commit, so
  // sampled backlog moves in burst-sized steps) -> one packet still queued.
  EXPECT_DOUBLE_EQ(mon.series().points()[0].value, 1 * 1048.0);
  // Final samples: empty queue.
  EXPECT_DOUBLE_EQ(mon.series().points().back().value, 0.0);
}

TEST(QueueMonitor, StopPredicateEndsSampling) {
  MonitorHarness h;
  int budget = 3;
  QueueMonitor mon(h.simulator, h.a.port(0), 100, "q",
                   [&budget] { return --budget > 0; });
  mon.start();
  h.simulator.run(10'000);
  EXPECT_EQ(mon.series().size(), 3u);
}

TEST(UtilizationMonitor, FullySaturatedLinkReadsOne) {
  MonitorHarness h;
  bool running = true;
  UtilizationMonitor mon(h.simulator, h.a.port(0), 840, "u",
                         [&running] { return running; });
  mon.start();
  // 20 back-to-back packets: 84 ns each = 10 per 840 ns window.
  for (int i = 0; i < 20; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.at(1680, [&running] { running = false; });
  h.simulator.run(4000);
  ASSERT_GE(mon.series().size(), 2u);
  EXPECT_NEAR(mon.series().points()[0].value, 1.0, 0.01);
  EXPECT_NEAR(mon.series().points()[1].value, 1.0, 0.01);
}

TEST(UtilizationMonitor, IdleLinkReadsZeroAndMeanBlends) {
  MonitorHarness h;
  int budget = 4;
  UtilizationMonitor mon(h.simulator, h.a.port(0), 840, "u",
                         [&budget] { return --budget > 0; });
  mon.start();
  // One window of traffic (10 packets) followed by idle windows.
  for (int i = 0; i < 10; ++i) h.a.port(0).enqueue(test_packet(1000));
  h.simulator.run(10'000);
  ASSERT_EQ(mon.series().size(), 4u);
  EXPECT_NEAR(mon.series().points()[0].value, 1.0, 0.01);
  EXPECT_NEAR(mon.series().points()[3].value, 0.0, 0.01);
  EXPECT_NEAR(mon.mean_utilization(), 0.25, 0.02);
}

}  // namespace
}  // namespace fastcc::net
