// Fluid model (Section IV-B / Figure 4): closed forms, RK4 cross-check, and
// the paper's convergence condition.
#include "core/fluid_model.h"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/time.h"

namespace fastcc::core {
namespace {

FluidModelParams paper_params() {
  FluidModelParams p;
  p.beta = 0.5;
  p.rtt_ns = 30'000;
  p.mtu_bytes = 1000;
  p.s_acks = 30;
  return p;
}

TEST(FluidModel, ClosedFormsMatchInitialConditions) {
  const FluidModelParams p = paper_params();
  EXPECT_DOUBLE_EQ(sampling_frequency_rate(12.5, 0.0, p), 12.5);
  EXPECT_DOUBLE_EQ(per_rtt_rate(12.5, 0.0, p), 12.5);
}

TEST(FluidModel, BothSchedulesDecayMonotonically) {
  const FluidModelParams p = paper_params();
  double prev_sf = 1e18, prev_rtt = 1e18;
  for (double t = 0; t <= 200'000; t += 10'000) {
    const double sf = sampling_frequency_rate(12.5, t, p);
    const double rt = per_rtt_rate(12.5, t, p);
    EXPECT_LT(sf, prev_sf);
    EXPECT_LT(rt, prev_rtt);
    EXPECT_GT(sf, 0.0);
    EXPECT_GT(rt, 0.0);
    prev_sf = sf;
    prev_rtt = rt;
  }
}

TEST(FluidModel, SfDecayIsRateProportionalSquared) {
  // The per-s-ACK ODE decays faster from higher rates: the ratio
  // S_fast/S_slow must shrink over time (the fairness mechanism itself).
  const FluidModelParams p = paper_params();
  const double t = 100'000;
  const double fast = sampling_frequency_rate(12.5, t, p);
  const double slow = sampling_frequency_rate(6.25, t, p);
  EXPECT_LT(fast / slow, 2.0);
  // The per-RTT schedule preserves the ratio exactly.
  EXPECT_NEAR(per_rtt_rate(12.5, t, p) / per_rtt_rate(6.25, t, p), 2.0, 1e-9);
}

struct Rk4Case {
  double initial_rate;
  double t_ns;
};

class FluidModelRk4 : public ::testing::TestWithParam<Rk4Case> {};

TEST_P(FluidModelRk4, NumericalIntegrationMatchesClosedForm) {
  const FluidModelParams p = paper_params();
  const auto [r0, t] = GetParam();
  const FluidRates rates = integrate_rk4(r0, t, /*dt=*/10.0, p);
  EXPECT_NEAR(rates.sf_rate, sampling_frequency_rate(r0, t, p),
              1e-6 * sampling_frequency_rate(r0, t, p));
  EXPECT_NEAR(rates.rtt_rate, per_rtt_rate(r0, t, p),
              1e-6 * per_rtt_rate(r0, t, p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FluidModelRk4,
    ::testing::Values(Rk4Case{12.5, 10'000}, Rk4Case{12.5, 100'000},
                      Rk4Case{6.25, 50'000}, Rk4Case{1.0, 300'000},
                      Rk4Case{50.0, 30'000}, Rk4Case{0.1, 500'000}));

TEST(FluidModel, PaperConditionHoldsForFigureFourSetup) {
  // 1/r < (C1 + C0) / (s * MTU): 1/30000 < 18.75/30000.
  EXPECT_TRUE(sf_converges_faster(12.5, 6.25, paper_params()));
}

TEST(FluidModel, ConditionFailsForSlowRatesAndShortRtt) {
  FluidModelParams p = paper_params();
  p.rtt_ns = 1000;  // very short RTT favours the per-RTT schedule
  EXPECT_FALSE(sf_converges_faster(0.01, 0.005, p));
}

TEST(FluidModel, FigureFourSeriesIsPositiveAndUnimodal) {
  // The paper's Figure 4: the fairness difference rises from zero (SF
  // converges faster early) and then diminishes as both schedules approach
  // zero rate.
  const auto series = fairness_difference_series(12.5, 6.25, 300'000, 1'000,
                                                 paper_params());
  ASSERT_GT(series.size(), 100u);
  EXPECT_NEAR(series.front().difference, 0.0, 1e-12);
  double peak = 0.0;
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_GE(series[i].difference, -1e-9) << "SF fell behind at point " << i;
    if (series[i].difference > peak) {
      peak = series[i].difference;
      peak_idx = i;
    }
  }
  EXPECT_GT(peak, 0.0);
  // After the peak the difference diminishes (paper: "Over time the fairness
  // difference diminishes").
  EXPECT_LT(series.back().difference, peak * 0.8);
  EXPECT_GT(peak_idx, 0u);
  EXPECT_LT(peak_idx, series.size() - 1);
}

TEST(FluidModel, GapsStartEqualAndSfGapShrinksFaster) {
  const auto series =
      fairness_difference_series(12.5, 6.25, 100'000, 10'000, paper_params());
  EXPECT_NEAR(series.front().sf_gap, series.front().rtt_gap, 1e-12);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i].sf_gap, series[i].rtt_gap + 1e-12);
  }
}

}  // namespace
}  // namespace fastcc::core
