// Determinism golden test: the same experiment run twice in one process must
// produce byte-identical output.  DESIGN.md §5 promises this, and the
// allocation-free event dispatch (slot reuse, generation stamps, calendar
// bucket compaction) must never let physical storage order leak into event
// execution order.  Every comparison below is exact — no tolerances.
#include <gtest/gtest.h>

#include <cstring>

#include "experiments/incast.h"
#include "stats/timeseries.h"

namespace fastcc::exp {
namespace {

IncastConfig hpcc_incast16() {
  IncastConfig c;
  c.variant = Variant::kHpcc;
  c.pattern.senders = 16;
  c.pattern.flow_bytes = 150'000;
  c.star.host_count = 17;
  return c;
}

void expect_bytewise_equal(const stats::TimeSeries& a,
                           const stats::TimeSeries& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const stats::TimePoint& pa = a.points()[i];
    const stats::TimePoint& pb = b.points()[i];
    EXPECT_EQ(pa.t, pb.t) << what << " point " << i;
    // Bitwise, not ==: distinguishes -0.0 from 0.0 and catches any NaN
    // drifting in (NaN == NaN is false but identical bits are identical).
    EXPECT_EQ(std::memcmp(&pa.value, &pb.value, sizeof(double)), 0)
        << what << " point " << i << ": " << pa.value << " vs " << pb.value;
  }
}

TEST(DeterminismGolden, Incast16To1HpccIsByteIdenticalAcrossReruns) {
  const IncastResult first = run_incast(hpcc_incast16());
  const IncastResult second = run_incast(hpcc_incast16());

  // Event-level identity: same number of events executed means the two runs
  // traced the same schedule, not merely similar aggregates.
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.drops, second.drops);
  EXPECT_EQ(first.completion_time, second.completion_time);

  ASSERT_EQ(first.flows.size(), second.flows.size());
  for (std::size_t i = 0; i < first.flows.size(); ++i) {
    EXPECT_EQ(first.flows[i].id, second.flows[i].id) << "flow " << i;
    EXPECT_EQ(first.flows[i].start, second.flows[i].start) << "flow " << i;
    EXPECT_EQ(first.flows[i].finish, second.flows[i].finish) << "flow " << i;
  }

  expect_bytewise_equal(first.jain, second.jain, "jain");
  expect_bytewise_equal(first.queue_bytes, second.queue_bytes, "queue_bytes");
  expect_bytewise_equal(first.utilization, second.utilization, "utilization");
}

TEST(DeterminismGolden, LossyIncastWithRtoRecoveryIsByteIdentical) {
  // The lossless golden above never exercises the recovery machinery.  This
  // one caps the bottleneck buffer with PFC off, so the synchronized burst
  // overflows: drops, duplicate ACKs, go-back-N, and retransmission timers
  // (now on the per-host timing wheel) all fire — and the two runs must
  // still trace byte-identical schedules.
  IncastConfig c = hpcc_incast16();
  c.buffer_limit_bytes = 40'000;  // a few dozen MTUs: guaranteed overflow
  const IncastResult first = run_incast(c);
  const IncastResult second = run_incast(c);

  // The scenario must actually be lossy, or this golden silently collapses
  // into the lossless one.
  ASSERT_GT(first.drops, 0u);

  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.drops, second.drops);
  EXPECT_EQ(first.completion_time, second.completion_time);

  ASSERT_EQ(first.flows.size(), second.flows.size());
  for (std::size_t i = 0; i < first.flows.size(); ++i) {
    EXPECT_EQ(first.flows[i].id, second.flows[i].id) << "flow " << i;
    EXPECT_EQ(first.flows[i].start, second.flows[i].start) << "flow " << i;
    EXPECT_EQ(first.flows[i].finish, second.flows[i].finish) << "flow " << i;
  }

  expect_bytewise_equal(first.jain, second.jain, "jain");
  expect_bytewise_equal(first.queue_bytes, second.queue_bytes, "queue_bytes");
  expect_bytewise_equal(first.utilization, second.utilization, "utilization");
}

}  // namespace
}  // namespace fastcc::exp
