// HPCC unit tests with a synthetic single-link INT feed.
#include "cc/hpcc.h"

#include <gtest/gtest.h>

#include "net/flow.h"
#include "sim/random.h"

namespace fastcc::cc {
namespace {

constexpr sim::Time kBaseRtt = 5000;       // 5 us
constexpr sim::Rate kLine = sim::gbps(100);  // 12.5 B/ns
const double kBdp = kLine * kBaseRtt;        // 62.5 KB

/// Drives an Hpcc instance against a fabricated bottleneck link.  The driver
/// keeps `inflight_pkts` packets outstanding, so one "RTT" is that many ACKs.
class HpccDriver {
 public:
  explicit HpccDriver(const HpccParams& params, sim::Rng* rng = nullptr)
      : hpcc_(params, rng) {
    flow_.spec.size_bytes = 1'000'000'000;
    flow_.line_rate = kLine;
    flow_.base_rtt = kBaseRtt;
    flow_.mtu = 1000;
    flow_.path_hops = 2;
    hpcc_.on_flow_start(flow_);
  }

  /// Feeds one ACK whose INT record reports the given queue length and link
  /// utilization (fraction of line rate transmitted since the last ACK).
  void ack(double qlen_bytes, double utilization, sim::Time dt = 500) {
    now_ += dt;
    tx_bytes_ += static_cast<std::uint64_t>(utilization * kLine * dt);
    net::IntRecord rec;
    rec.timestamp = now_;
    rec.tx_bytes = tx_bytes_;
    rec.qlen_bytes = static_cast<std::uint32_t>(qlen_bytes);
    rec.bandwidth = kLine;
    ints_[0] = rec;

    AckContext ctx;
    ctx.now = now_;
    ctx.rtt = kBaseRtt;
    acked_ += 1000;
    ctx.ack_seq = acked_;
    ctx.bytes_acked = 1000;
    ctx.ints = std::span<const net::IntRecord>(ints_.data(), 1);
    flow_.snd_nxt = acked_ + inflight_pkts_ * 1000;
    hpcc_.on_ack(ctx, flow_);
  }

  /// Convenience: one full synthetic RTT of ACKs.
  void rtt_of_acks(double qlen_bytes, double utilization) {
    for (int i = 0; i < inflight_pkts_; ++i) ack(qlen_bytes, utilization);
  }

  net::FlowTx& flow() { return flow_; }
  Hpcc& hpcc() { return hpcc_; }
  void set_inflight_pkts(int n) { inflight_pkts_ = n; }

 private:
  Hpcc hpcc_;
  net::FlowTx flow_;
  std::array<net::IntRecord, 1> ints_{};
  sim::Time now_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t acked_ = 0;
  int inflight_pkts_ = 10;
};

TEST(Hpcc, StartsAtLineRateBdpWindow) {
  HpccDriver d{HpccParams{}};
  EXPECT_DOUBLE_EQ(d.flow().window_bytes, kBdp);
  EXPECT_DOUBLE_EQ(d.flow().rate, kLine);
}

TEST(Hpcc, FirstAckOnlySnapshotsTelemetry) {
  HpccDriver d{HpccParams{}};
  const double w0 = d.flow().window_bytes;
  d.ack(/*qlen=*/200'000, /*utilization=*/1.0);
  EXPECT_DOUBLE_EQ(d.flow().window_bytes, w0);
}

TEST(Hpcc, CongestionShrinksWindowMultiplicatively) {
  HpccDriver d{HpccParams{}};
  const double w0 = d.flow().window_bytes;
  // Saturated link with a deep standing queue: U well above eta.
  for (int i = 0; i < 30; ++i) d.ack(120'000, 1.0);
  EXPECT_LT(d.flow().window_bytes, 0.6 * w0);
}

TEST(Hpcc, IdleLinkGrowsWindowAdditively) {
  HpccParams p;
  HpccDriver d{p};
  d.ack(0, 0.3);  // snapshot
  // Settle the EWMA around 0.3 utilization first.
  for (int i = 0; i < 40; ++i) d.ack(0, 0.3);
  const double w_ai = p.ai_rate * kBaseRtt;
  const double wc_before = d.hpcc().reference_window();
  d.rtt_of_acks(0, 0.3);  // exactly one more reference update
  const double wc_after = d.hpcc().reference_window();
  // One additive step per RTT while under-utilized (within EWMA wiggle).
  EXPECT_NEAR(wc_after - wc_before, w_ai, 0.5 * w_ai);
}

TEST(Hpcc, UtilizationEstimateTracksFeed) {
  HpccDriver d{HpccParams{}};
  d.ack(0, 0.5);
  for (int i = 0; i < 100; ++i) d.ack(0, 0.5);
  EXPECT_NEAR(d.hpcc().utilization_estimate(), 0.5, 0.05);
}

TEST(Hpcc, MaxStageTriggersMimdRecalibration) {
  HpccParams p;
  p.max_stage = 5;
  HpccDriver d{p};
  d.ack(0, 0.4);
  // Keep the link at 40%: pure AI raises Wc slowly, incStage climbs to
  // max_stage, then the MIMD branch (Wc / (U/eta)) fires and grabs the
  // spare bandwidth in one step.
  double before = 0.0, jump = 0.0;
  for (int r = 0; r < 12; ++r) {
    before = d.hpcc().reference_window();
    d.rtt_of_acks(0, 0.4);
    jump = std::max(jump, d.hpcc().reference_window() - before);
  }
  // The recalibration multiplies by eta/U ~ 2.4x: far beyond any AI step.
  EXPECT_GT(jump, 0.5 * kBdp);
}

TEST(Hpcc, WindowNeverExceedsLineRateBdp) {
  HpccDriver d{HpccParams{}};
  d.ack(0, 0.01);
  for (int i = 0; i < 200; ++i) d.ack(0, 0.01);
  EXPECT_LE(d.flow().window_bytes, kBdp * 1.0001);
}

TEST(Hpcc, WindowFloorRespected) {
  HpccParams p;
  HpccDriver d{p};
  d.ack(500'000, 1.0);
  for (int i = 0; i < 500; ++i) d.ack(500'000, 1.0);
  EXPECT_GE(d.flow().window_bytes, p.min_window_mtus * 1000 - 1e-9);
}

TEST(Hpcc, RateIsWindowOverBaseRtt) {
  HpccDriver d{HpccParams{}};
  d.ack(0, 0.9);
  for (int i = 0; i < 25; ++i) d.ack(100'000, 1.0);
  EXPECT_DOUBLE_EQ(d.flow().rate, d.flow().window_bytes / kBaseRtt);
}

TEST(Hpcc, SamplingFrequencyGatesReferenceDecreases) {
  HpccParams p;
  p.sampling_freq = 7;
  HpccDriver d{p};
  d.ack(150'000, 1.0);  // snapshot
  // Warm the EWMA into congestion territory.
  for (int i = 0; i < 20; ++i) d.ack(150'000, 1.0);
  // Now count reference changes over exactly 21 ACKs: with s=7 there must be
  // exactly 3 decrease commits regardless of RTT boundaries.
  int commits = 0;
  double last_ref = d.hpcc().reference_window();
  for (int i = 0; i < 21; ++i) {
    d.ack(150'000, 1.0);
    if (d.hpcc().reference_window() != last_ref) {
      ++commits;
      last_ref = d.hpcc().reference_window();
    }
  }
  EXPECT_EQ(commits, 3);
}

TEST(Hpcc, DefaultModeCommitsOncePerRtt) {
  HpccParams p;  // no SF
  HpccDriver d{p};
  d.set_inflight_pkts(10);
  d.ack(150'000, 1.0);
  for (int i = 0; i < 20; ++i) d.ack(150'000, 1.0);
  int commits = 0;
  double last_ref = d.hpcc().reference_window();
  for (int i = 0; i < 30; ++i) {  // three 10-ack RTTs
    d.ack(150'000, 1.0);
    if (d.hpcc().reference_window() != last_ref) {
      ++commits;
      last_ref = d.hpcc().reference_window();
    }
  }
  EXPECT_EQ(commits, 3);
}

TEST(Hpcc, VariableAiMintsTokensWhenQueueExceedsBdp) {
  HpccParams p;
  p.vai = hpcc_paper_vai(/*min_bdp_bytes=*/50'000);
  HpccDriver d{p};
  // A 250 KB queue mints 250 tokens per RTT while the one reference update
  // per RTT spends at most AI_Cap = 100: the bank must accumulate.
  d.ack(250'000, 1.0);
  d.rtt_of_acks(250'000, 1.0);
  d.rtt_of_acks(250'000, 1.0);
  EXPECT_GT(d.hpcc().vai().bank(), 0.0);
}

TEST(Hpcc, VariableAiRaisesEffectiveAdditiveIncrease) {
  HpccParams p;
  p.vai = hpcc_paper_vai(50'000);
  HpccDriver vai{p};
  HpccDriver stock{HpccParams{}};
  vai.ack(250'000, 1.0);
  stock.ack(250'000, 1.0);
  for (int i = 0; i < 60; ++i) {
    vai.ack(250'000, 1.0);
    stock.ack(250'000, 1.0);
  }
  // Identical MIMD pressure, but VAI's additive term is token-multiplied:
  // the VAI flow holds a larger window under the same congestion.
  EXPECT_GT(vai.flow().window_bytes, stock.flow().window_bytes);
}

TEST(Hpcc, VariableAiStaysQuietBelowBdp) {
  HpccParams p;
  p.vai = hpcc_paper_vai(50'000);
  HpccDriver d{p};
  d.ack(10'000, 0.9);
  d.rtt_of_acks(10'000, 0.9);
  d.rtt_of_acks(10'000, 0.9);
  EXPECT_DOUBLE_EQ(d.hpcc().vai().bank(), 0.0);
}

TEST(Hpcc, ProbabilisticFeedbackIgnoresSomeDecreases) {
  HpccParams p;
  p.probabilistic_feedback = true;
  sim::Rng rng(11);
  HpccDriver prob{p, &rng};
  HpccDriver det{HpccParams{}};
  prob.ack(150'000, 1.0);
  det.ack(150'000, 1.0);
  // Identical congestion feed: as windows shrink, the probabilistic variant
  // must commit strictly fewer reference decreases (small windows ignore
  // most congestion signals — the DCQCN-style fairness property).
  int prob_commits = 0, det_commits = 0;
  double prob_ref = prob.hpcc().reference_window();
  double det_ref = det.hpcc().reference_window();
  for (int i = 0; i < 200; ++i) {
    prob.ack(150'000, 1.0);
    det.ack(150'000, 1.0);
    if (prob.hpcc().reference_window() != prob_ref) {
      ++prob_commits;
      prob_ref = prob.hpcc().reference_window();
    }
    if (det.hpcc().reference_window() != det_ref) {
      ++det_commits;
      det_ref = det.hpcc().reference_window();
    }
  }
  EXPECT_LT(prob_commits, det_commits);
}

TEST(Hpcc, PaperVaiParamsMatchSpec) {
  const core::VariableAiParams vai = hpcc_paper_vai(50'000);
  EXPECT_TRUE(vai.enabled);
  EXPECT_DOUBLE_EQ(vai.token_thresh, 50'000);
  EXPECT_DOUBLE_EQ(vai.ai_div, 1000);
  EXPECT_DOUBLE_EQ(vai.bank_cap, 1000);
  EXPECT_DOUBLE_EQ(vai.ai_cap, 100);
  EXPECT_DOUBLE_EQ(vai.dampener_constant, 8);
}

}  // namespace
}  // namespace fastcc::cc
