// Validates the paper's Figure 7 topology: 320 hosts in 5 pods, 4 ToR +
// 4 Agg per pod, 16 spines, 100 Gbps edge / 400 Gbps fabric.
#include "topo/fat_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "sim/simulator.h"

namespace fastcc::topo {
namespace {

struct FullTree : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
  FatTree tree;
  void SetUp() override { tree = build_fat_tree(network, full_scale_fat_tree()); }
};

TEST_F(FullTree, PaperScaleCounts) {
  EXPECT_EQ(tree.hosts.size(), 320u);
  EXPECT_EQ(tree.tors.size(), 20u);
  EXPECT_EQ(tree.aggs.size(), 20u);
  EXPECT_EQ(tree.spines.size(), 16u);
}

TEST_F(FullTree, PortCountsMatchShape) {
  // ToR: 16 hosts + 4 aggs.
  for (auto* tor : tree.tors) EXPECT_EQ(tor->port_count(), 20);
  // Agg: 4 ToRs + 4 spines.
  for (auto* agg : tree.aggs) EXPECT_EQ(agg->port_count(), 8);
  // Spine: one link per pod's matching agg = 5.
  for (auto* spine : tree.spines) EXPECT_EQ(spine->port_count(), 5);
  for (auto* host : tree.hosts) EXPECT_EQ(host->port_count(), 1);
}

TEST_F(FullTree, HopCountsByLocality) {
  // Same ToR: host -> ToR -> host = 2 links.
  EXPECT_EQ(network.path(tree.hosts[0]->id(), tree.hosts[1]->id()).hops, 2);
  // Same pod, different ToR: host -> ToR -> Agg -> ToR -> host = 4 links.
  EXPECT_EQ(network.path(tree.hosts[0]->id(), tree.hosts[16]->id()).hops, 4);
  // Different pod: through a spine = 6 links (the paper's "5 hops" between
  // switches).
  EXPECT_EQ(network.path(tree.hosts[0]->id(), tree.hosts[319]->id()).hops, 6);
}

TEST_F(FullTree, HostLinkIsTheBottleneck) {
  const net::PathInfo p =
      network.path(tree.hosts[0]->id(), tree.hosts[319]->id());
  EXPECT_DOUBLE_EQ(p.bottleneck, sim::gbps(100));
}

TEST_F(FullTree, TorHasEcmpFanoutAcrossPod) {
  // From a ToR, a host in another pod is reachable via all 4 aggs.
  net::SwitchNode* tor = tree.tors[0];
  const auto& routes = tor->routes(tree.hosts[319]->id());
  EXPECT_EQ(routes.size(), 4u);
}

TEST_F(FullTree, AggHasEcmpFanoutAcrossSpineGroup) {
  net::SwitchNode* agg = tree.aggs[0];
  const auto& routes = agg->routes(tree.hosts[319]->id());
  EXPECT_EQ(routes.size(), 4u);  // its spine group
}

TEST_F(FullTree, IntraPodTrafficNeverUsesSpines) {
  // Routes from a ToR toward a same-pod host go via aggs (4-way) or directly.
  net::SwitchNode* tor = tree.tors[0];
  const auto& direct = tor->routes(tree.hosts[0]->id());
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(tor->port(direct[0]).peer(), tree.hosts[0]);
}

TEST_F(FullTree, EcmpSpreadsDistinctFlowsAcrossAggsAndSpines) {
  // Many flows between the same host pair classes should collectively touch
  // every equal-cost uplink at the source ToR.
  net::SwitchNode* tor = tree.tors[0];
  const net::NodeId far_host = tree.hosts[319]->id();
  std::set<int> ports_used;
  for (net::FlowId f = 1; f <= 64; ++f) {
    ports_used.insert(tor->select_port(far_host, f, tree.hosts[0]->id()));
  }
  EXPECT_EQ(ports_used.size(), 4u);  // all four aggs exercised
}

TEST_F(FullTree, EveryHostPairSampleIsRoutable) {
  // Spot-check routability across pods, ToRs, and host positions.
  for (const int a : {0, 17, 63, 128, 200, 319}) {
    for (const int b : {5, 64, 190, 318}) {
      if (a == b) continue;
      const net::PathInfo p =
          network.path(tree.hosts[a]->id(), tree.hosts[b]->id());
      EXPECT_GE(p.hops, 2);
      EXPECT_LE(p.hops, 6);
      EXPECT_GT(p.base_rtt, 0);
    }
  }
}

TEST(FatTreeScaled, ShapePreserved) {
  sim::Simulator simulator;
  net::Network network(simulator);
  const FatTreeParams p = scaled_fat_tree();
  FatTree tree = build_fat_tree(network, p);
  EXPECT_EQ(tree.hosts.size(), static_cast<std::size_t>(p.host_count()));
  EXPECT_EQ(network.path(tree.hosts[0]->id(), tree.hosts.back()->id()).hops, 6);
  EXPECT_EQ(network.path(tree.hosts[0]->id(), tree.hosts[1]->id()).hops, 2);
}

TEST(FatTreeOversubscribed, FabricBecomesTheBottleneck) {
  sim::Simulator simulator;
  net::Network network(simulator);
  // 4:1 oversubscription: each of the 2 aggs gets (8 hosts x 100G / 4) / 2
  // = 100 Gbps of uplink; same-pod cross-ToR paths bottleneck in the fabric.
  const FatTreeParams p = with_oversubscription(scaled_fat_tree(), 4.0);
  EXPECT_DOUBLE_EQ(p.fabric_bandwidth, sim::gbps(100));
  FatTree tree = build_fat_tree(network, p);
  const net::PathInfo cross =
      network.path(tree.hosts[0]->id(), tree.hosts.back()->id());
  EXPECT_DOUBLE_EQ(cross.bottleneck, sim::gbps(100));
}

TEST(FatTreeOversubscribed, RatioOneIsNonBlocking) {
  const FatTreeParams p = with_oversubscription(scaled_fat_tree(), 1.0);
  // 8 hosts x 100G over 2 aggs = 400G per fabric link: the paper's shape.
  EXPECT_DOUBLE_EQ(p.fabric_bandwidth, sim::gbps(400));
}

TEST(FatTreeScaled, BaseRttMatchesHandComputation) {
  sim::Simulator simulator;
  net::Network network(simulator);
  FatTree tree = build_fat_tree(network, scaled_fat_tree());
  // Cross-pod: 6 links; two at 100 Gbps (hosts), four at 400 Gbps.
  const net::PathInfo p =
      network.path(tree.hosts[0]->id(), tree.hosts.back()->id(), 1000);
  sim::Time expected = 0;
  auto link = [&](sim::Rate bw) {
    expected += 2000 + sim::serialization_time(1048, bw) +
                sim::serialization_time(net::kAckBytes, bw);
  };
  link(sim::gbps(100));
  for (int i = 0; i < 4; ++i) link(sim::gbps(400));
  link(sim::gbps(100));
  EXPECT_EQ(p.base_rtt, expected);
}

TEST(TorShardMap, OneShardPerRackHostsFollowTheirTor) {
  sim::Simulator simulator;
  net::Network network(simulator);
  const FatTreeParams p = sharded_scaled_fat_tree();
  const FatTree tree = build_fat_tree(network, p);
  const net::ShardMap m = tor_shard_map(tree, p, network.node_count());
  ASSERT_EQ(m.count, p.pods * p.tors_per_pod);  // 16 racks = 16 shards.

  // Each ToR anchors its own shard and its hosts ride with it — the whole
  // point of the finer grain is that a rack never splits.
  for (std::size_t t = 0; t < tree.tors.size(); ++t) {
    EXPECT_EQ(m.of(tree.tors[t]->id()), static_cast<int>(t));
    for (int h = 0; h < p.hosts_per_tor; ++h) {
      const std::size_t hi = t * static_cast<std::size_t>(p.hosts_per_tor) +
                             static_cast<std::size_t>(h);
      EXPECT_EQ(m.of(tree.hosts[hi]->id()), static_cast<int>(t));
    }
  }
  // Aggs never leave their pod: agg a of pod q lands on one of pod q's own
  // rack shards, round-robin by local index.
  for (std::size_t a = 0; a < tree.aggs.size(); ++a) {
    const int pod = static_cast<int>(a) / p.aggs_per_pod;
    const int s = m.of(tree.aggs[a]->id());
    EXPECT_GE(s, pod * p.tors_per_pod) << "agg " << a;
    EXPECT_LT(s, (pod + 1) * p.tors_per_pod) << "agg " << a;
  }
  // Spines deal round-robin across all shards, as at pod grain.
  for (std::size_t s = 0; s < tree.spines.size(); ++s) {
    EXPECT_EQ(m.of(tree.spines[s]->id()),
              static_cast<int>(s) % m.count);
  }
}

TEST(TorShardMap, GranularityDispatchSelectsTheGrain) {
  sim::Simulator simulator;
  net::Network network(simulator);
  const FatTreeParams p = sharded_scaled_fat_tree();
  const FatTree tree = build_fat_tree(network, p);
  const net::ShardMap pod =
      shard_map_for(tree, p, network.node_count(), ShardGranularity::kPod);
  const net::ShardMap tor =
      shard_map_for(tree, p, network.node_count(), ShardGranularity::kTor);
  EXPECT_EQ(pod.count, p.pods);
  EXPECT_EQ(tor.count, p.pods * p.tors_per_pod);
  // The finer map refines the coarser one: everything in ToR shard s lives
  // in pod shard s / tors_per_pod, so each rack shard nests in its pod.
  ASSERT_EQ(pod.shard.size(), tor.shard.size());
  for (std::size_t id = 0; id < tor.shard.size(); ++id) {
    const bool is_spine = [&] {
      for (const auto* sp : tree.spines)
        if (sp->id() == static_cast<net::NodeId>(id)) return true;
      return false;
    }();
    if (is_spine) continue;  // Spines round-robin independently per grain.
    EXPECT_EQ(tor.shard[id] / p.tors_per_pod, pod.shard[id]) << "node " << id;
  }
}

}  // namespace
}  // namespace fastcc::topo
