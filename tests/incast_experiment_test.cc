// Integration tests of the incast experiment driver, including the paper's
// headline claims as regression checks (smaller scale for CI budget).
#include "experiments/incast.h"

#include <gtest/gtest.h>

namespace fastcc::exp {
namespace {

IncastConfig small_config(Variant v) {
  IncastConfig c;
  c.variant = v;
  c.pattern.senders = 8;
  c.pattern.flow_bytes = 200'000;
  c.star.host_count = 9;
  return c;
}

class IncastAllVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(IncastAllVariants, CompletesLosslesslyWithSaneMetrics) {
  const IncastResult r = run_incast(small_config(GetParam()));
  ASSERT_EQ(r.flows.size(), 8u);
  EXPECT_EQ(r.drops, 0u);
  for (const FlowTiming& f : r.flows) {
    EXPECT_GT(f.finish, f.start);
    // No flow can beat the line-rate bound: 200 KB at 100 Gbps > 16 us.
    EXPECT_GT(f.fct(), 16'000);
  }
  for (const auto& p : r.jain.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0 + 1e-9);
  }
  // Queue drains by the end of the run.
  ASSERT_FALSE(r.queue_bytes.empty());
  EXPECT_LT(r.queue_bytes.points().back().value, 2000.0);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, IncastAllVariants,
    ::testing::Values(Variant::kHpcc, Variant::kHpcc1G, Variant::kHpccProb,
                      Variant::kHpccVai, Variant::kHpccSf, Variant::kHpccVaiSf,
                      Variant::kSwift, Variant::kSwift1G, Variant::kSwiftProb,
                      Variant::kSwiftVai, Variant::kSwiftSf,
                      Variant::kSwiftVaiSf, Variant::kSwiftHai,
                      Variant::kDcqcn, Variant::kTimely,
                      Variant::kDctcp),
    [](const auto& param_info) {
      std::string name = variant_name(param_info.param);
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(IncastExperiment, AggregateThroughputBoundedByLink) {
  const IncastResult r = run_incast(small_config(Variant::kHpcc));
  // 8 x 200 KB through one 100 Gbps link: wire-rate floor ~134 us.
  const double wire_bytes = 8.0 * 200.0 * 1048;  // incl. headers
  EXPECT_GT(static_cast<double>(r.completion_time),
            wire_bytes / sim::gbps(100));
}

TEST(IncastExperiment, DeterministicAcrossRuns) {
  const IncastResult a = run_incast(small_config(Variant::kHpccVaiSf));
  const IncastResult b = run_incast(small_config(Variant::kHpccVaiSf));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].finish, b.flows[i].finish);
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(IncastExperiment, StaggeredStartsFollowThePattern) {
  const IncastResult r = run_incast(small_config(Variant::kHpcc));
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    EXPECT_EQ(r.flows[i].start,
              static_cast<sim::Time>(i / 2) * 20 * sim::kMicrosecond);
  }
}

// --- Paper claims at the 16-1 scale (Section III-E / VI-B) ---

struct PaperScale : ::testing::Test {
  static IncastResult run_variant(Variant v) {
    IncastConfig c;
    c.variant = v;  // paper defaults: 16-1, 1 MB, 2 per 20 us
    return run_incast(c);
  }
};

TEST_F(PaperScale, DefaultHpccStarvesEarlyFlows) {
  // Figure 2's trend: with default HPCC the first flows to start finish
  // among the last (later joiners keep grabbing line-rate shares).
  const IncastResult r = run_variant(Variant::kHpcc);
  const sim::Time first_flow_finish = r.flows.front().finish;
  int finishing_after_first = 0;
  for (const FlowTiming& f : r.flows) {
    if (f.finish > first_flow_finish) ++finishing_after_first;
  }
  EXPECT_LT(finishing_after_first, 4);
}

TEST_F(PaperScale, VaiSfHalvesTheFinishSpreadInHpcc) {
  const IncastResult base = run_variant(Variant::kHpcc);
  const IncastResult vai_sf = run_variant(Variant::kHpccVaiSf);
  EXPECT_LT(vai_sf.finish_spread() * 2, base.finish_spread());
}

TEST_F(PaperScale, VaiSfHalvesTheFinishSpreadInSwift) {
  const IncastResult base = run_variant(Variant::kSwift);
  const IncastResult vai_sf = run_variant(Variant::kSwiftVaiSf);
  EXPECT_LT(vai_sf.finish_spread() * 2, base.finish_spread());
}

TEST_F(PaperScale, VaiSfConvergesToFairnessFasterInHpcc) {
  const IncastResult base = run_variant(Variant::kHpcc);
  const IncastResult vai_sf = run_variant(Variant::kHpccVaiSf);
  const sim::Time base_settle = base.jain_settle_time(0.9);
  const sim::Time vai_settle = vai_sf.jain_settle_time(0.9);
  ASSERT_GE(vai_settle, 0);
  EXPECT_TRUE(base_settle < 0 || vai_settle < base_settle);
}

TEST_F(PaperScale, HpccVaiSfKeepsNearZeroSteadyQueues) {
  // Figure 5(b): with VAI SF the bottleneck queue stays near zero outside
  // the join transient.
  const IncastResult r = run_variant(Variant::kHpccVaiSf);
  EXPECT_LT(r.queue_bytes.mean_after(r.completion_time / 2), 5'000.0);
}

TEST_F(PaperScale, SwiftVaiSfFasterCompletionThanDefault) {
  const IncastResult base = run_variant(Variant::kSwift);
  const IncastResult vai_sf = run_variant(Variant::kSwiftVaiSf);
  EXPECT_LT(vai_sf.completion_time, base.completion_time);
}

TEST_F(PaperScale, VaiSfMaintainsHighThroughput) {
  // Abstract: "while using our mechanisms, we ... maintain high throughput".
  // The bottleneck utilization with VAI SF must be at least that of the
  // default configuration (fairness is not bought with idle bandwidth).
  const IncastResult hpcc = run_variant(Variant::kHpcc);
  const IncastResult hpcc_vai = run_variant(Variant::kHpccVaiSf);
  EXPECT_GE(hpcc_vai.mean_utilization(), 0.9 * hpcc.mean_utilization());
  EXPECT_GT(hpcc_vai.mean_utilization(), 0.85);
  const IncastResult swift = run_variant(Variant::kSwift);
  const IncastResult swift_vai = run_variant(Variant::kSwiftVaiSf);
  EXPECT_GE(swift_vai.mean_utilization(), 0.9 * swift.mean_utilization());
}

TEST_F(PaperScale, SmallFlowProbesUnharmedByVaiSf) {
  // Abstract: "without compromising small flow performance".  2 KB probes
  // injected during the 16-1 long-flow incast must complete about as fast
  // under VAI SF as under default HPCC.
  auto probed = [](Variant v) {
    IncastConfig c;
    c.variant = v;
    c.probe_count = 20;
    return run_incast(c);
  };
  const IncastResult base = probed(Variant::kHpcc);
  const IncastResult vai_sf = probed(Variant::kHpccVaiSf);
  ASSERT_EQ(base.probes.size(), 20u);
  ASSERT_EQ(vai_sf.probes.size(), 20u);
  EXPECT_LE(vai_sf.median_probe_fct(), 2 * base.median_probe_fct());
  // And probes stay genuinely small-flow fast: well under one incast FCT.
  EXPECT_LT(vai_sf.median_probe_fct(), 200 * sim::kMicrosecond);
}

TEST(IncastProbes, DisabledByDefault) {
  IncastConfig c;
  c.pattern.senders = 4;
  c.pattern.flow_bytes = 50'000;
  c.star.host_count = 5;
  const IncastResult r = run_incast(c);
  EXPECT_TRUE(r.probes.empty());
  EXPECT_EQ(r.median_probe_fct(), -1);
}

TEST_F(PaperScale, VaiSfCutsUnfairnessDebt) {
  // Condensed form of Figures 5/6: the integral of (1 - Jain) over the run
  // must shrink by at least 3x with the paper's mechanisms.
  const IncastResult base = run_variant(Variant::kHpcc);
  const IncastResult vai_sf = run_variant(Variant::kHpccVaiSf);
  EXPECT_LT(vai_sf.convergence().unfairness_integral_ns * 3,
            base.convergence().unfairness_integral_ns);
}

}  // namespace
}  // namespace fastcc::exp
