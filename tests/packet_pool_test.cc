// PacketPool: handle lifecycle, generation checking, chunked address
// stability, and the ring buffer that replaced std::deque<Packet> in Port.
#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"

namespace fastcc::net {
namespace {

TEST(PacketPool, AllocResetsHeaderAndTracksLiveCount) {
  PacketPool pool;
  EXPECT_EQ(pool.live(), 0u);
  const PacketRef ref = pool.alloc();
  EXPECT_EQ(pool.live(), 1u);
  Packet& p = pool.get(ref);
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.int_count, 0);
  EXPECT_EQ(p.ingress_port, -1);
  EXPECT_EQ(p.wire_bytes, 0u);
  pool.release(ref);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, RecycledSlotComesBackWithCleanHeader) {
  PacketPool pool;
  const PacketRef first = pool.alloc();
  Packet& p = pool.get(first);
  init_data(p, /*flow=*/7, /*src=*/1, /*dst=*/2, /*seq=*/5000, 1000, 42);
  p.ecn = true;
  p.int_count = 3;
  p.ingress_port = 5;
  pool.release(first);

  const PacketRef second = pool.alloc();
  // Freelist is LIFO: the same slot comes straight back...
  EXPECT_EQ(second.slot(), first.slot());
  // ...with a fresh generation and a reset header.
  EXPECT_NE(second.gen(), first.gen());
  const Packet& q = pool.get(second);
  EXPECT_FALSE(q.ecn);
  EXPECT_EQ(q.int_count, 0);
  EXPECT_EQ(q.ingress_port, -1);
  EXPECT_EQ(q.seq, 0u);
  pool.release(second);
}

TEST(PacketPool, GenerationDistinguishesStaleHandles) {
  PacketPool pool;
  const PacketRef ref = pool.alloc();
  pool.release(ref);
  const PacketRef fresh = pool.alloc();
  ASSERT_EQ(fresh.slot(), ref.slot());
  EXPECT_NE(fresh, ref);  // stale handle no longer names the slot
  pool.release(fresh);
}

TEST(PacketPool, ReferencesStayValidAcrossGrowth) {
  // Chunked storage: a Packet& must survive alloc() adding chunks — the
  // host holds the received data packet while allocating its ACK.
  PacketPool pool;
  const PacketRef anchor = pool.alloc();
  Packet& p = pool.get(anchor);
  p.seq = 0xdeadbeef;
  Packet* addr = &p;
  std::vector<PacketRef> refs;
  for (int i = 0; i < 5000; ++i) refs.push_back(pool.alloc());  // many chunks
  EXPECT_EQ(&pool.get(anchor), addr);
  EXPECT_EQ(pool.get(anchor).seq, 0xdeadbeefu);
  for (const PacketRef r : refs) pool.release(r);
  pool.release(anchor);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_GE(pool.capacity(), 5001u);
}

TEST(PacketPool, HandleIsFourBytes) {
  static_assert(sizeof(PacketRef) == 4,
                "PacketRef must stay a 4-byte handle; per-hop closures are "
                "sized around it");
}

TEST(PacketRing, FifoAcrossGrowthAndWraparound) {
  PacketRing ring;
  EXPECT_TRUE(ring.empty());
  PacketPool pool;
  // Interleave pushes and pops so head_ wraps while the ring grows.
  std::vector<PacketRef> expect;
  std::size_t next_pop = 0;
  for (int i = 0; i < 100; ++i) {
    const PacketRef r = pool.alloc();
    expect.push_back(r);
    ring.push_back(r);
    if (i % 3 == 2) {
      EXPECT_EQ(ring.front(), expect[next_pop]);
      ring.pop_front();
      ++next_pop;
    }
  }
  while (!ring.empty()) {
    EXPECT_EQ(ring.front(), expect[next_pop]);
    ring.pop_front();
    ++next_pop;
  }
  EXPECT_EQ(next_pop, expect.size());
}

}  // namespace
}  // namespace fastcc::net
