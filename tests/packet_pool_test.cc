// PacketPool: handle lifecycle, generation checking, chunked address
// stability, and the ring buffer that replaced std::deque<Packet> in Port.
#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"

namespace fastcc::net {
namespace {

TEST(PacketPool, AllocResetsHeaderAndTracksLiveCount) {
  PacketPool pool;
  EXPECT_EQ(pool.live(), 0u);
  const PacketRef ref = pool.alloc();
  EXPECT_EQ(pool.live(), 1u);
  Packet& p = pool.get(ref);
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.int_count, 0);
  EXPECT_EQ(p.ingress_port, -1);
  EXPECT_EQ(p.wire_bytes, 0u);
  pool.release(ref);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, RecycledSlotComesBackWithCleanHeader) {
  PacketPool pool;
  const PacketRef first = pool.alloc();
  Packet& p = pool.get(first);
  init_data(p, /*flow=*/7, /*src=*/1, /*dst=*/2, /*seq=*/5000, 1000, 42);
  p.ecn = true;
  p.int_count = 3;
  p.ingress_port = 5;
  pool.release(first);

  const PacketRef second = pool.alloc();
  // Freelist is LIFO: the same slot comes straight back...
  EXPECT_EQ(second.slot(), first.slot());
  // ...with a fresh generation and a reset header.
  EXPECT_NE(second.gen(), first.gen());
  const Packet& q = pool.get(second);
  EXPECT_FALSE(q.ecn);
  EXPECT_EQ(q.int_count, 0);
  EXPECT_EQ(q.ingress_port, -1);
  EXPECT_EQ(q.seq, 0u);
  pool.release(second);
}

TEST(PacketPool, GenerationDistinguishesStaleHandles) {
  PacketPool pool;
  const PacketRef ref = pool.alloc();
  pool.release(ref);
  const PacketRef fresh = pool.alloc();
  ASSERT_EQ(fresh.slot(), ref.slot());
  EXPECT_NE(fresh, ref);  // stale handle no longer names the slot
  pool.release(fresh);
}

TEST(PacketPool, ReferencesStayValidAcrossGrowth) {
  // Chunked storage: a Packet& must survive alloc() adding chunks — the
  // host holds the received data packet while allocating its ACK.
  PacketPool pool;
  const PacketRef anchor = pool.alloc();
  Packet& p = pool.get(anchor);
  p.seq = 0xdeadbeef;
  Packet* addr = &p;
  std::vector<PacketRef> refs;
  for (int i = 0; i < 5000; ++i) refs.push_back(pool.alloc());  // many chunks
  EXPECT_EQ(&pool.get(anchor), addr);
  EXPECT_EQ(pool.get(anchor).seq, 0xdeadbeefu);
  for (const PacketRef r : refs) pool.release(r);
  pool.release(anchor);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_GE(pool.capacity(), 5001u);
}

TEST(PacketPool, GenerationWrapsAfter4096Cycles) {
  // The generation field is 12 bits, so one slot's counter wraps after
  // exactly 2^12 = 4096 release/alloc cycles.  This test pins down both
  // sides of that boundary: a stale handle is caught for 4095 cycles, and
  // on the 4096th the wrap silently revalidates it — the aliasing window
  // documented in packet_pool.h.  If kGenMask ever changes, the constants
  // here fail loudly instead of the window shifting unnoticed.
  constexpr std::uint32_t kCycles = PacketRef::kGenMask + 1;
  static_assert(kCycles == 4096u, "12-bit generation field");

  PacketPool pool;
  const PacketRef hoarded = pool.alloc();  // slot S, generation 0
  const std::uint32_t slot = hoarded.slot();
  EXPECT_TRUE(pool.is_current(hoarded));
  pool.release(hoarded);  // cycle 1: generation 0 -> 1

  // The freelist is LIFO, so every cycle below reuses the same slot.
  EXPECT_FALSE(pool.is_current(hoarded));
  for (std::uint32_t cycle = 1; cycle < kCycles; ++cycle) {
    const PacketRef fresh = pool.alloc();
    ASSERT_EQ(fresh.slot(), slot);
    ASSERT_EQ(fresh.gen(), cycle & PacketRef::kGenMask);
    // Throughout the pre-wrap window the hoarded handle reads as stale:
    // get() on it would trip the generation assert.
    ASSERT_FALSE(pool.is_current(hoarded));
    ASSERT_NE(fresh, hoarded);
    pool.release(fresh);
  }

  // Cycle 4096: the counter wraps to 0 and the slot's current incarnation
  // once again matches the hoarded handle bit-for-bit.  This is the
  // aliasing window — the runtime check cannot distinguish the two.
  const PacketRef reincarnated = pool.alloc();
  ASSERT_EQ(reincarnated.slot(), slot);
  EXPECT_EQ(reincarnated.gen(), 0u);
  EXPECT_EQ(reincarnated, hoarded);
  EXPECT_TRUE(pool.is_current(hoarded));
  pool.release(reincarnated);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, IsCurrentRejectsInvalidAndOutOfRangeHandles) {
  PacketPool pool;
  EXPECT_FALSE(pool.is_current(PacketRef{}));  // kInvalid sentinel
  const PacketRef ref = pool.alloc();
  EXPECT_FALSE(pool.is_current(PacketRef::make(ref.slot() + 1000, 0)));
  pool.release(ref);
}

TEST(PacketPool, HandleIsFourBytes) {
  static_assert(sizeof(PacketRef) == 4,
                "PacketRef must stay a 4-byte handle; per-hop closures are "
                "sized around it");
}

TEST(PacketRing, FifoAcrossGrowthAndWraparound) {
  PacketRing ring;
  EXPECT_TRUE(ring.empty());
  PacketPool pool;
  // Interleave pushes and pops so head_ wraps while the ring grows.
  std::vector<PacketRef> expect;
  std::size_t next_pop = 0;
  for (int i = 0; i < 100; ++i) {
    const PacketRef r = pool.alloc();
    expect.push_back(r);
    ring.push_back(r);
    if (i % 3 == 2) {
      EXPECT_EQ(ring.front(), expect[next_pop]);
      ring.pop_front();
      ++next_pop;
    }
  }
  while (!ring.empty()) {
    EXPECT_EQ(ring.front(), expect[next_pop]);
    ring.pop_front();
    ++next_pop;
  }
  EXPECT_EQ(next_pop, expect.size());
}

TEST(PacketPool, LiveAndPeakCountsTrackAllocReleaseExactly) {
  PacketPool pool;
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.peak_count(), 0u);

  std::vector<PacketRef> refs;
  for (int i = 0; i < 5; ++i) refs.push_back(pool.alloc());
  EXPECT_EQ(pool.live_count(), 5u);
  EXPECT_EQ(pool.peak_count(), 5u);

  pool.release(refs.back());
  refs.pop_back();
  pool.release(refs.back());
  refs.pop_back();
  EXPECT_EQ(pool.live_count(), 3u);
  // Peak is a high-water mark: releases never lower it.
  EXPECT_EQ(pool.peak_count(), 5u);

  // Climbing back to 4 live stays under the old peak...
  refs.push_back(pool.alloc());
  EXPECT_EQ(pool.live_count(), 4u);
  EXPECT_EQ(pool.peak_count(), 5u);
  // ...and only exceeding it moves the mark.
  refs.push_back(pool.alloc());
  refs.push_back(pool.alloc());
  EXPECT_EQ(pool.live_count(), 6u);
  EXPECT_EQ(pool.peak_count(), 6u);

  for (const PacketRef r : refs) pool.release(r);
  EXPECT_EQ(pool.live_count(), 0u);
  EXPECT_EQ(pool.peak_count(), 6u);
}

TEST(PacketPool, ExportReleaseAndImportMovePacketsBetweenPools) {
  PacketPool src_pool;
  PacketPool dst_pool;
  // The teardown audit is the sharded runner's leak tripwire; arming it
  // here asserts (in debug builds) that this test's bookkeeping is exact.
  src_pool.enable_teardown_leak_audit();
  dst_pool.enable_teardown_leak_audit();

  const PacketRef ref = src_pool.alloc();
  src_pool.get(ref).wire_bytes = 777;
  src_pool.get(ref).seq = 42;

  // Export: bytes come out, the handle dies, the slot frees.
  const Packet crossing = src_pool.export_release(ref);
  EXPECT_EQ(src_pool.live_count(), 0u);
  EXPECT_FALSE(src_pool.is_current(ref));
  EXPECT_EQ(crossing.wire_bytes, 777u);

  // Import: a fresh handle in the destination pool, same bytes.
  const PacketRef imported = dst_pool.import_packet(crossing);
  EXPECT_EQ(dst_pool.live_count(), 1u);
  EXPECT_EQ(dst_pool.get(imported).wire_bytes, 777u);
  EXPECT_EQ(dst_pool.get(imported).seq, 42u);

  dst_pool.release(imported);
  EXPECT_EQ(dst_pool.live_count(), 0u);
}

}  // namespace
}  // namespace fastcc::net
