// DCTCP unit tests: alpha EWMA, proportional decrease, per-window reaction.
#include "cc/dctcp.h"

#include <gtest/gtest.h>

#include "net/flow.h"

namespace fastcc::cc {
namespace {

constexpr sim::Time kBaseRtt = 5000;
constexpr sim::Rate kLine = sim::gbps(100);
const double kBdpPkts = kLine * kBaseRtt / 1000.0;

class DctcpDriver {
 public:
  explicit DctcpDriver(const DctcpParams& params = DctcpParams{})
      : cc_(params) {
    flow_.spec.size_bytes = 1'000'000'000;
    flow_.line_rate = kLine;
    flow_.base_rtt = kBaseRtt;
    flow_.mtu = 1000;
    cc_.on_flow_start(flow_);
  }

  /// Feeds one observation window of ACKs, `marked` of them ECN-marked.
  /// The protocol reacts to this window on the first ACK of the *next*
  /// window() call (standard boundary-crossing semantics).
  void window(int acks, int marked) {
    // All of this window's packets are outstanding when it begins.
    flow_.snd_nxt = acked_ + static_cast<std::uint64_t>(acks) * 1000;
    for (int i = 0; i < acks; ++i) {
      AckContext ctx;
      acked_ += 1000;
      ctx.ack_seq = acked_;
      ctx.bytes_acked = 1000;
      ctx.ecn = i < marked;
      cc_.on_ack(ctx, flow_);
    }
  }

  net::FlowTx& flow() { return flow_; }
  Dctcp& cc() { return cc_; }

 private:
  Dctcp cc_;
  net::FlowTx flow_;
  std::uint64_t acked_ = 0;
};

TEST(Dctcp, StartsAtLineRateBdp) {
  DctcpDriver d;
  EXPECT_NEAR(d.cc().cwnd_packets(), kBdpPkts, 1e-9);
}

TEST(Dctcp, CleanWindowGrowsByOnePacket) {
  DctcpParams p;
  p.g = 1.0;
  DctcpDriver d{p};
  // Sink the window first so growth is visible below the clamp.
  for (int i = 0; i < 6; ++i) d.window(10, 10);
  d.window(10, 0);  // clean window...
  const double c0 = d.cc().cwnd_packets();
  d.window(10, 0);  // ...whose reaction (+1) lands on this window's first ack
  EXPECT_NEAR(d.cc().cwnd_packets(), c0 + 1.0, 1e-9);
}

TEST(Dctcp, AlphaTracksMarkedFraction) {
  DctcpParams p;
  p.g = 0.5;  // fast EWMA for the test
  DctcpDriver d{p};
  d.window(10, 5);   // half marked
  d.window(10, 10);  // rolls window 1: alpha = 0.5 * 0.5
  EXPECT_NEAR(d.cc().alpha(), 0.25, 1e-9);
  d.window(1, 0);    // rolls window 2 (fully marked)
  EXPECT_NEAR(d.cc().alpha(), 0.625, 1e-9);  // 0.5*0.25 + 0.5*1
}

TEST(Dctcp, DecreaseProportionalToAlpha) {
  DctcpParams p;
  p.g = 1.0;  // alpha == last window's fraction
  DctcpDriver light{p}, heavy{p};
  const double c0 = light.cc().cwnd_packets();
  light.window(10, 1);  // 10% marked -> alpha 0.1 -> cut 5%
  heavy.window(10, 10); // 100% marked -> alpha 1.0 -> cut 50%
  light.window(1, 0);   // boundary crossings commit the reactions
  heavy.window(1, 0);
  EXPECT_NEAR(light.cc().cwnd_packets(), c0 * 0.95, 1e-6);
  EXPECT_NEAR(heavy.cc().cwnd_packets(), c0 * 0.5, 1e-6);
}

TEST(Dctcp, ReactsAtMostOncePerWindow) {
  DctcpParams p;
  p.g = 1.0;
  DctcpDriver d{p};
  const double c0 = d.cc().cwnd_packets();
  d.window(20, 20);  // all marked
  d.window(1, 0);    // exactly one cut commits
  EXPECT_NEAR(d.cc().cwnd_packets(), c0 * 0.5, 1e-6);
}

TEST(Dctcp, WindowFloorHolds) {
  DctcpParams p;
  p.g = 1.0;
  DctcpDriver d{p};
  for (int i = 0; i < 100; ++i) d.window(4, 4);
  EXPECT_GE(d.cc().cwnd_packets(), p.min_cwnd_packets - 1e-12);
}

}  // namespace
}  // namespace fastcc::cc
