// Variant catalogue / factory unit tests.
#include "experiments/protocols.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topo/star.h"

namespace fastcc::exp {
namespace {

struct FactoryHarness : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::Star star;

  void SetUp() override {
    topo::StarParams p;  // 17 hosts @ 100 Gbps
    star = build_star(network, p);
  }
};

TEST_F(FactoryHarness, MinBdpIsAboutFiftyKb) {
  CcFactory f(network, Variant::kHpccVaiSf, true);
  // The paper: "Token_Thresh to the minimum BDP of the network, which is
  // about 50KB" and "4us is the delay incurred when queue depth is 50KB".
  EXPECT_NEAR(f.min_bdp_bytes(), 50'000, 6'000);
  EXPECT_NEAR(static_cast<double>(f.min_bdp_delay()), 4'000, 500);
}

TEST_F(FactoryHarness, VariantClassifiers) {
  EXPECT_TRUE(variant_is_hpcc(Variant::kHpcc1G));
  EXPECT_FALSE(variant_is_hpcc(Variant::kSwiftVaiSf));
  EXPECT_TRUE(variant_is_swift(Variant::kSwiftProb));
  EXPECT_FALSE(variant_is_swift(Variant::kDcqcn));
  EXPECT_TRUE(variant_needs_red(Variant::kDcqcn));
  EXPECT_TRUE(variant_needs_red(Variant::kDctcp));
  EXPECT_FALSE(variant_needs_red(Variant::kHpcc));
  // DCTCP marks with a step function at K; DCQCN uses probabilistic RED.
  const net::RedParams dctcp_red = red_params_for(Variant::kDctcp);
  EXPECT_EQ(dctcp_red.kmin_bytes, dctcp_red.kmax_bytes);
  const net::RedParams dcqcn_red = red_params_for(Variant::kDcqcn);
  EXPECT_LT(dcqcn_red.kmin_bytes, dcqcn_red.kmax_bytes);
  EXPECT_FALSE(red_params_for(Variant::kHpcc).enabled);
}

TEST_F(FactoryHarness, EveryVariantConstructs) {
  const net::PathInfo path =
      network.path(star.hosts[0]->id(), star.hosts[16]->id());
  for (const Variant v :
       {Variant::kHpcc, Variant::kHpcc1G, Variant::kHpccProb,
        Variant::kHpccVai, Variant::kHpccSf, Variant::kHpccVaiSf,
        Variant::kSwift, Variant::kSwift1G, Variant::kSwiftProb,
        Variant::kSwiftVai, Variant::kSwiftSf, Variant::kSwiftVaiSf,
        Variant::kSwiftHai, Variant::kDcqcn, Variant::kTimely,
        Variant::kDctcp}) {
    CcFactory f(network, v, true);
    auto cc = f.make(path);
    ASSERT_TRUE(static_cast<bool>(cc)) << variant_name(v);
  }
}

TEST_F(FactoryHarness, NamesAreUniqueAndStable) {
  EXPECT_STREQ(variant_name(Variant::kHpccVaiSf), "HPCC VAI SF");
  EXPECT_STREQ(variant_name(Variant::kSwiftProb), "Swift Probabilistic");
  EXPECT_STREQ(variant_name(Variant::kDcqcn), "DCQCN");
  EXPECT_STREQ(variant_name(Variant::kTimely), "TIMELY");
}

TEST_F(FactoryHarness, SamplingFreqOnlyOnSfVariants) {
  EXPECT_EQ(CcFactory(network, Variant::kHpccVaiSf, true).sampling_freq(),
            CcFactory::kPaperSamplingFreq);
  EXPECT_EQ(CcFactory(network, Variant::kSwiftSf, true).sampling_freq(),
            CcFactory::kPaperSamplingFreq);
  EXPECT_EQ(CcFactory(network, Variant::kHpcc, true).sampling_freq(), 0);
  EXPECT_EQ(CcFactory(network, Variant::kSwiftVai, true).sampling_freq(), 0);
}

}  // namespace
}  // namespace fastcc::exp
