// TimingWheel / WheelScheduler: the per-node timer subsystem.  The wheel
// must fire strictly by (deadline, arm order) with exact (non-rounded)
// deadlines across all hierarchy levels and the overflow list, survive
// reentrant arm/cancel from inside callbacks, and — through the
// WheelScheduler adapter — present at most a handful of simulator events
// regardless of how many timers it holds.
#include "sim/timing_wheel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace fastcc::sim {
namespace {

TEST(TimingWheel, FiresInDeadlineOrderAcrossLevels) {
  TimingWheel wheel;
  std::vector<int> fired;
  // One deadline per hierarchy level: level 0 (< 256 ns), level 1, level 2,
  // level 3, interleaved so arm order disagrees with deadline order.
  wheel.arm(3'000'000, [&] { fired.push_back(3); });
  wheel.arm(90, [&] { fired.push_back(0); });
  wheel.arm(70'000, [&] { fired.push_back(2); });
  wheel.arm(900, [&] { fired.push_back(1); });
  wheel.arm(900'000'000, [&] { fired.push_back(4); });
  EXPECT_EQ(wheel.size(), 5u);
  wheel.advance(1'000'000'000);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, EqualDeadlinesFireInArmOrder) {
  TimingWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    wheel.arm(5'000, [&fired, i] { fired.push_back(i); });
  }
  wheel.advance(5'000);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimingWheel, DeadlinesAreExactNotSlotRounded) {
  TimingWheel wheel;
  // 70'123 ns sits on level 2, whose slots are 65'536 ns wide; expiry must
  // still honour the exact nanosecond, not the slot boundary.
  bool fired = false;
  wheel.arm(70'123, [&] { fired = true; });
  EXPECT_EQ(wheel.next_deadline(), 70'123);
  wheel.advance(70'122);
  EXPECT_FALSE(fired);
  wheel.advance(70'123);
  EXPECT_TRUE(fired);
  EXPECT_EQ(wheel.now(), 70'123);
}

TEST(TimingWheel, CancelPreventsFiringAndStaleIdsAreRejected) {
  TimingWheel wheel;
  bool fired = false;
  const TimerId id = wheel.arm(1'000, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already cancelled
  wheel.advance(2'000);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(wheel.empty());

  const TimerId id2 = wheel.arm(3'000, [] {});
  wheel.advance(3'000);
  EXPECT_FALSE(wheel.cancel(id2));  // already fired

  // The slot is recycled under a new generation; the old id must not be
  // able to cancel the new timer.
  bool fired3 = false;
  wheel.arm(4'000, [&] { fired3 = true; });
  EXPECT_FALSE(wheel.cancel(id2));
  wheel.advance(4'000);
  EXPECT_TRUE(fired3);
}

TEST(TimingWheel, OverflowTimersBeyondFourSecondsFireExactly) {
  TimingWheel wheel;
  // 2^32 ns (~4.3 s) and beyond land on the overflow list.
  const Time far = (Time{1} << 32) + 12'345;
  std::vector<int> fired;
  wheel.arm(far, [&] { fired.push_back(1); });
  wheel.arm(500, [&] { fired.push_back(0); });
  EXPECT_EQ(wheel.next_deadline(), 500);
  wheel.advance(500);
  EXPECT_EQ(wheel.next_deadline(), far);
  wheel.advance(far - 1);
  EXPECT_TRUE(fired.size() == 1);
  wheel.advance(far);
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
}

TEST(TimingWheel, CallbacksMayArmReentrantly) {
  TimingWheel wheel;
  std::vector<int> fired;
  // The first callback arms a second timer due within the same advance()
  // window and a third beyond it; the batch must pick up the former.
  wheel.arm(1'000, [&] {
    fired.push_back(0);
    wheel.arm(1'500, [&] { fired.push_back(1); });
    wheel.arm(10'000, [&] { fired.push_back(2); });
  });
  wheel.advance(2'000);
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(10'000);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(TimingWheel, CallbacksMayCancelReentrantly) {
  TimingWheel wheel;
  bool second_fired = false;
  TimerId victim = 0;
  wheel.arm(1'000, [&] { wheel.cancel(victim); });
  victim = wheel.arm(1'001, [&] { second_fired = true; });
  wheel.advance(2'000);
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, PacingChainReArmsFromItsOwnCallback) {
  // The steady-state host pattern: each pacing wakeup arms the next one.
  TimingWheel wheel;
  int fires = 0;
  constexpr Time kGap = 700;
  std::function<void()> step = [&] {
    ++fires;
    if (fires < 100) wheel.arm(wheel.now() + kGap, [&] { step(); });
  };
  wheel.arm(kGap, [&] { step(); });
  while (!wheel.empty()) wheel.advance(wheel.next_deadline());
  EXPECT_EQ(fires, 100);
  EXPECT_EQ(wheel.now(), 100 * kGap);
}

TEST(WheelScheduler, FiresThroughSimulatorAtExactTimes) {
  Simulator simulator;
  WheelScheduler sched(simulator);
  std::vector<Time> fired_at;
  sched.arm(2'000, [&] { fired_at.push_back(simulator.now()); });
  sched.arm(700, [&] { fired_at.push_back(simulator.now()); });
  sched.arm(1'000'000, [&] { fired_at.push_back(simulator.now()); });
  simulator.run();
  EXPECT_EQ(fired_at, (std::vector<Time>{700, 2'000, 1'000'000}));
  EXPECT_TRUE(sched.empty());
}

TEST(WheelScheduler, CancelledTimerNeverFiresEvenThoughWakeupRuns) {
  // The driver never cancels simulator events: the wakeup covering the
  // cancelled deadline still fires, finds nothing due, and must be harmless.
  Simulator simulator;
  WheelScheduler sched(simulator);
  bool fired = false;
  const TimerId id = sched.arm(5'000, [&] { fired = true; });
  simulator.after(1'000, [&] { EXPECT_TRUE(sched.cancel(id)); });
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sched.empty());
}

TEST(WheelScheduler, ManyTimersCostFewSimulatorEvents) {
  // 1000 timers on the wheel must not become 1000 global events: the
  // coverage set holds at most 4 outstanding wakeups, and each expiry
  // services every due timer in one batch.
  Simulator simulator;
  WheelScheduler sched(simulator);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    // 50 distinct deadlines, 20 timers each.
    sched.arm(1'000 + (i % 50) * 100, [&] { ++fired; });
  }
  simulator.run();
  EXPECT_EQ(fired, 1000);
  // One wakeup per distinct deadline is the worst case; far below one
  // event per timer.
  EXPECT_LE(simulator.events_executed(), 54u);
}

TEST(WheelScheduler, ArmFromExpiryBatchStaysCovered) {
  // Timers armed inside an expiry batch are covered by the driver's single
  // re-cover; the chain must keep firing at exact times.
  Simulator simulator;
  WheelScheduler sched(simulator);
  std::vector<Time> fired_at;
  std::function<void()> chain = [&] {
    fired_at.push_back(simulator.now());
    if (fired_at.size() < 5) {
      sched.arm(simulator.now() + 300, [&] { chain(); });
    }
  };
  sched.arm(100, [&] { chain(); });
  simulator.run();
  EXPECT_EQ(fired_at, (std::vector<Time>{100, 400, 700, 1'000, 1'300}));
}

}  // namespace
}  // namespace fastcc::sim
