// CalendarQueue: functional tests plus randomized equivalence against the
// binary-heap EventQueue (both must pop identical sequences).
#include "sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace fastcc::sim {
namespace {

TEST(CalendarQueue, PopsInTimeOrder) {
  CalendarQueue q;
  std::vector<Time> order;
  for (const Time t : {500, 10, 9999, 1, 700}) {
    q.schedule(t, [] {});
  }
  while (!q.empty()) order.push_back(q.pop_and_run());
  EXPECT_EQ(order, (std::vector<Time>{1, 10, 500, 700, 9999}));
}

TEST(CalendarQueue, FifoTieBreakOnEqualTimestamps) {
  CalendarQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(CalendarQueue, CancelSemanticsMatchEventQueue) {
  CalendarQueue q;
  const auto id = q.schedule(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));    // double cancel
  EXPECT_FALSE(q.cancel(999));   // unknown id
  EXPECT_TRUE(q.empty());
  const auto id2 = q.schedule(7, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id2));   // cancel after fire
}

TEST(CalendarQueue, ResizesThroughGrowthAndShrink) {
  CalendarQueue q(/*initial_buckets=*/16, /*initial_width=*/10);
  // Push far beyond 2x buckets to force doubling (and recalibration).
  for (int i = 0; i < 5000; ++i) q.schedule(i * 13, [] {});
  EXPECT_EQ(q.size(), 5000u);
  Time last = -1;
  while (!q.empty()) {
    const Time t = q.pop_and_run();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(CalendarQueue, SparseFarFutureEventsFoundViaFallback) {
  CalendarQueue q(16, 10);
  // One event years beyond the calendar horizon.
  bool ran = false;
  q.schedule(10'000'000, [&] { ran = true; });
  EXPECT_EQ(q.next_time(), 10'000'000);
  q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(CalendarQueue, RandomizedEquivalenceWithEventQueue) {
  // Identical schedule/cancel sequences must pop identical (time, tag)
  // streams from both implementations.
  Rng rng(1234);
  for (int round = 0; round < 5; ++round) {
    CalendarQueue cal(16, 50);
    EventQueue heap;
    std::vector<Time> cal_order, heap_order;
    std::vector<std::pair<CalendarQueue::Id, EventId>> ids;

    Time clock = 0;
    for (int i = 0; i < 2000; ++i) {
      const int op = static_cast<int>(rng.uniform_int(0, 9));
      if (op < 7 || ids.empty()) {
        const Time at = clock + rng.uniform_int(0, 5000);
        ids.emplace_back(cal.schedule(at, [] {}), heap.schedule(at, [] {}));
      } else if (op == 7 && !ids.empty()) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
        const bool a = cal.cancel(ids[idx].first);
        const bool b = heap.cancel(ids[idx].second);
        EXPECT_EQ(a, b);
      } else if (!cal.empty()) {
        ASSERT_FALSE(heap.empty());
        const Time tc = cal.pop_and_run();
        const Time th = heap.pop_and_run();
        EXPECT_EQ(tc, th);
        clock = tc;
      }
    }
    while (!cal.empty()) {
      ASSERT_FALSE(heap.empty());
      cal_order.push_back(cal.pop_and_run());
      heap_order.push_back(heap.pop_and_run());
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(cal_order, heap_order);
  }
}

TEST(CalendarQueue, CancelHeavyEquivalenceWithEventQueue) {
  // Retransmit-timer torture: high cancellation rate with immediate
  // re-arming, the pattern that stresses lazy tombstone reclamation in the
  // calendar buckets and slot reuse in the pool.  Both queues must agree on
  // every pop time and every cancel outcome.
  Rng rng(99);
  for (int round = 0; round < 3; ++round) {
    CalendarQueue cal(16, 50);
    EventQueue heap;
    std::vector<std::pair<CalendarQueue::Id, EventId>> timers;
    Time clock = 0;
    int pops = 0;
    for (int i = 0; i < 3000; ++i) {
      const int op = static_cast<int>(rng.uniform_int(0, 9));
      if (op < 4 || timers.empty()) {
        const Time at = clock + 1 + rng.uniform_int(0, 200);
        timers.emplace_back(cal.schedule(at, [] {}),
                            heap.schedule(at, [] {}));
      } else if (op < 8) {
        // Cancel a random timer and immediately re-arm it far out — the
        // cancel-heavy half of the workload.
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(timers.size()) - 1));
        const bool a = cal.cancel(timers[idx].first);
        const bool b = heap.cancel(timers[idx].second);
        ASSERT_EQ(a, b) << "cancel outcome diverged at op " << i;
        const Time at = clock + 10'000 + rng.uniform_int(0, 500);
        timers[idx] = {cal.schedule(at, [] {}), heap.schedule(at, [] {})};
      } else if (!cal.empty()) {
        ASSERT_FALSE(heap.empty());
        const Time tc = cal.pop_and_run();
        const Time th = heap.pop_and_run();
        ASSERT_EQ(tc, th) << "pop order diverged at op " << i;
        clock = tc;
        ++pops;
      }
    }
    EXPECT_EQ(cal.size(), heap.size());
    while (!cal.empty()) {
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(cal.pop_and_run(), heap.pop_and_run());
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_GT(pops, 0);
  }
}

TEST(CalendarQueue, MoveOnlyCallbacks) {
  CalendarQueue q;
  auto token = std::make_unique<int>(9);
  int seen = 0;
  q.schedule(1, [t = std::move(token), &seen] { seen = *t; });
  q.pop_and_run();
  EXPECT_EQ(seen, 9);
}

}  // namespace
}  // namespace fastcc::sim
