#include "sim/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace fastcc::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInClosedRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentDeterministicStreams) {
  Rng parent1(9), parent2(9);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  // Identical lineage -> identical child streams.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.uniform_int(0, 1 << 30), child2.uniform_int(0, 1 << 30));
  }
  // Child differs from a fresh parent stream.
  Rng parent3(9);
  Rng child3 = parent3.fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child3.uniform_int(0, 1 << 30) == parent3.uniform_int(0, 1 << 30)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace fastcc::sim
