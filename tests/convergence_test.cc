#include "core/convergence.h"

#include <gtest/gtest.h>

namespace fastcc::core {
namespace {

stats::TimeSeries ramp_series() {
  stats::TimeSeries ts("ramp");
  // Dips to 0.5 then climbs to 1 and stays.
  ts.add(0, 1.0);
  ts.add(100, 0.5);
  ts.add(200, 0.7);
  ts.add(300, 0.92);
  ts.add(400, 0.85);  // brief relapse below threshold
  ts.add(500, 0.95);
  ts.add(600, 1.0);
  return ts;
}

TEST(Convergence, SettleVsFirstReach) {
  const ConvergenceSummary s = summarize_convergence(ramp_series(), 0.9);
  EXPECT_EQ(s.first_reach_time, 0);  // the very first sample is 1.0
  EXPECT_EQ(s.settle_time, 500);     // final stretch begins after the relapse
}

TEST(Convergence, WorstIndexIgnoresFirstSample) {
  const ConvergenceSummary s = summarize_convergence(ramp_series(), 0.9);
  EXPECT_DOUBLE_EQ(s.worst_index, 0.5);
}

TEST(Convergence, UnfairnessIntegralIsTrapezoidal) {
  stats::TimeSeries ts("x");
  ts.add(0, 1.0);
  ts.add(100, 0.5);  // deficit ramps 0 -> 0.5: area 0.25 * 100
  ts.add(200, 1.0);  // deficit ramps back: another 25
  const ConvergenceSummary s = summarize_convergence(ts);
  EXPECT_NEAR(s.unfairness_integral_ns, 50.0, 1e-9);
}

TEST(Convergence, PerfectlyFairSeriesHasZeroDebt) {
  stats::TimeSeries ts("fair");
  for (int i = 0; i < 10; ++i) ts.add(i * 10, 1.0);
  const ConvergenceSummary s = summarize_convergence(ts);
  EXPECT_DOUBLE_EQ(s.unfairness_integral_ns, 0.0);
  EXPECT_EQ(s.settle_time, 0);
  EXPECT_DOUBLE_EQ(s.mean_index, 1.0);
}

TEST(Convergence, NeverSettlingReportsSentinels) {
  stats::TimeSeries ts("bad");
  for (int i = 0; i < 10; ++i) ts.add(i * 10, 0.5);
  const ConvergenceSummary s = summarize_convergence(ts, 0.9);
  EXPECT_EQ(s.settle_time, -1);
  EXPECT_EQ(s.first_reach_time, -1);
}

TEST(Convergence, EmptySeriesIsInert) {
  stats::TimeSeries ts("empty");
  const ConvergenceSummary s = summarize_convergence(ts);
  EXPECT_EQ(s.settle_time, -1);
  EXPECT_DOUBLE_EQ(s.unfairness_integral_ns, 0.0);
}

TEST(Convergence, LowerDebtMeansFasterConvergence) {
  // Sanity link to the paper's use: a series that recovers sooner must show
  // a strictly smaller unfairness integral.
  stats::TimeSeries fast("fast"), slow("slow");
  for (int i = 0; i <= 10; ++i) {
    fast.add(i * 100, i >= 2 ? 1.0 : 0.4);
    slow.add(i * 100, i >= 8 ? 1.0 : 0.4);
  }
  EXPECT_LT(summarize_convergence(fast).unfairness_integral_ns,
            summarize_convergence(slow).unfairness_integral_ns);
}

}  // namespace
}  // namespace fastcc::core
