"""fastcc_cache: per-file content-hash result cache for the fastcc analyzers.

CI runs fastcc-lint, fastcc-dataflow, and fastcc-shardsafe over the whole
tree on every push; almost every file is unchanged from the previous run.
This cache keys each file's findings by a digest of everything that could
change the analysis verdict:

  * a tool-version salt (bump ANALYZER_SALT in the tool when check logic
    changes so stale entries self-invalidate),
  * the analysis configuration (mode, selected checks),
  * a cross-file context digest (contract/annotation tables for the
    dataflow/shardsafe tools, which read declarations tree-wide),
  * the file's own bytes, and
  * for .cc files, the sibling header's bytes (fastcc-lint's
    unordered-iter check merges the header's container declarations).

Entries store only (line, check, message) triples; the caller re-attaches
the path.  Writes are atomic (`os.replace`) so concurrent analyzer runs
sharing one cache directory can never observe a torn entry.  The cache
lives in `.fastcc-cache/<tool>/` at the repo root by default and is
disabled entirely by `--no-cache`.

Zero dependencies beyond CPython.
"""

from __future__ import annotations

import hashlib
import json
import os

FORMAT_VERSION = 2


class ResultCache:
    """Content-addressed findings store for one analyzer.

    `config_digest` folds in everything global to the invocation (tool
    salt, mode, selected checks, cross-file context); `key_for` folds in
    the per-file content.  A miss returns None; the caller analyzes and
    calls put().
    """

    def __init__(self, cache_dir, tool, config_digest, enabled=True):
        self.dir = os.path.join(cache_dir, tool)
        self.config_digest = config_digest
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # -- keying -----------------------------------------------------------

    @staticmethod
    def digest_config(*parts):
        """Stable digest of the invocation-global configuration.  Accepts
        strings and JSON-serializable values (sorted for determinism)."""
        h = hashlib.sha256()
        h.update(b"fastcc-cache-v%d" % FORMAT_VERSION)
        for p in parts:
            if not isinstance(p, str):
                p = json.dumps(p, sort_keys=True, default=sorted)
            h.update(b"\x00")
            h.update(p.encode("utf-8", "replace"))
        return h.hexdigest()

    def key_for(self, rel_path, text, sibling_text=""):
        """Cache key for one file.  `rel_path` participates because some
        checks are path-scoped (file allowlists, PFC scope); `sibling_text`
        carries the .h next to a .cc when the analyzer merges it."""
        h = hashlib.sha256()
        h.update(self.config_digest.encode("ascii"))
        h.update(b"\x00")
        h.update(rel_path.encode("utf-8", "replace"))
        h.update(b"\x00")
        h.update(text.encode("utf-8", "replace"))
        h.update(b"\x00")
        h.update(sibling_text.encode("utf-8", "replace"))
        return h.hexdigest()

    # -- storage ----------------------------------------------------------

    def _entry_path(self, key):
        # Two-level fan-out keeps directory listings short on big trees.
        return os.path.join(self.dir, key[:2], key[2:] + ".json")

    def get(self, key):
        """Returns the cached [(line, check, message), ...] or None."""
        if not self.enabled:
            return None
        try:
            with open(self._entry_path(key), encoding="utf-8") as f:
                entry = json.load(f)
        except (OSError, json.JSONDecodeError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("v") != FORMAT_VERSION:
            self.misses += 1
            return None
        findings = entry.get("findings")
        if not isinstance(findings, list):
            self.misses += 1
            return None
        out = []
        for item in findings:
            if (not isinstance(item, list) or len(item) != 3
                    or not isinstance(item[0], int)):
                self.misses += 1
                return None
            out.append((item[0], str(item[1]), str(item[2])))
        self.hits += 1
        return out

    def put(self, key, findings):
        """Stores [(line, check, message), ...] atomically; best-effort
        (a read-only cache directory degrades to a no-op, not an error)."""
        if not self.enabled:
            return
        path = self._entry_path(key)
        tmp = path + ".tmp%d" % os.getpid()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"v": FORMAT_VERSION,
                           "findings": [[ln, ck, msg]
                                        for (ln, ck, msg) in findings]}, f)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def stats_line(self):
        return f"cache {self.hits} hit(s) / {self.misses + self.hits} file(s)"


def add_cache_args(ap, default_subdir=".fastcc-cache"):
    """Registers the shared --no-cache / --cache-dir flags on an
    argparse parser.  The default directory resolves at use time relative
    to the caller's repo root."""
    ap.add_argument("--no-cache", action="store_true",
                    help="analyze every file from scratch, ignoring and "
                         "not writing the result cache")
    ap.add_argument("--cache-dir", metavar="DIR", default=None,
                    help=f"result cache directory (default: <repo>/"
                         f"{default_subdir})")


def resolve_cache_dir(args, root, default_subdir=".fastcc-cache"):
    return args.cache_dir or os.path.join(root, default_subdir)


def read_sibling_header(path):
    """The .h/.hpp sibling's text for a .cc/.cpp file, else ''.  Mirrors
    fastcc-lint's unordered-iter sibling merge so the cache key covers it."""
    base, ext = os.path.splitext(path)
    if ext not in (".cc", ".cpp"):
        return ""
    for hext in (".h", ".hpp"):
        sibling = base + hext
        if os.path.exists(sibling):
            try:
                with open(sibling, encoding="utf-8", errors="replace") as f:
                    return f.read()
            except OSError:
                return ""
    return ""
