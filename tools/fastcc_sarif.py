"""fastcc_sarif: SARIF 2.1.0 emission shared by the fastcc analyzers.

All three in-house tools (fastcc-lint, fastcc-dataflow, fastcc-shardsafe)
produce the same finding shape — (path, line, check-id, message) — so one
emitter serves them all.  The output targets GitHub code scanning via
`github/codeql-action/upload-sarif`, which renders each result as an inline
annotation on the PR diff.

Zero dependencies beyond CPython.  The emitter is deliberately minimal:
one run per invocation, one rule per check id, `error` level for every
result (all fastcc checks are blocking).
"""

from __future__ import annotations

import json
import os

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def findings_to_sarif(tool_name, checks, findings, root):
    """Builds the SARIF document dict.

    `checks` maps check-id -> one-line description (the tool's CHECKS
    registry); `findings` is an iterable of objects with .path/.line/
    .check/.message attributes; `root` is the repo root used to relativize
    artifact URIs so annotations attach to checked-out files in CI.
    """
    rules = [
        {
            "id": cid,
            "name": cid.replace("-", "_"),
            "shortDescription": {"text": cid},
            "fullDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for cid, desc in sorted(checks.items())
    ]
    results = []
    for f in findings:
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        results.append({
            "ruleId": f.check,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": rel,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, int(f.line))},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://github.com/fastcc/fastcc (tools/)",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://" + root.rstrip("/") + "/"},
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(out_path, tool_name, checks, findings, root):
    """Serializes the SARIF document to `out_path` (parent dirs created).

    Written unconditionally — an empty `results` array is how code scanning
    learns that previously reported findings are resolved — and before the
    caller decides its exit status, so a failing gate still uploads."""
    doc = findings_to_sarif(tool_name, checks, findings, root)
    parent = os.path.dirname(os.path.abspath(out_path))
    os.makedirs(parent, exist_ok=True)
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    os.replace(tmp, out_path)
