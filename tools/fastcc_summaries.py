"""fastcc_summaries: bottom-up interprocedural call summaries.

Shared by fastcc-dataflow and fastcc-shardsafe.  Both tools are
intraprocedural at heart — they re-derive everything inside one function
body — and until now they learned about callees exclusively from declared
contract macros.  This module adds the missing interprocedural layer: a
bottom-up fixpoint over the (bare-name) call graph that derives, for every
function *definition* in the analyzed set,

  * which parameters are (transitively) consumed — passed bare into a
    FASTCC_CONSUMES / FASTCC_CONSUMES_XSHARD position of some callee,
  * which parameters are (transitively) PFC-discharged — passed bare into
    on_packet_departed()/consume() or into a callee that discharges them,
  * the callee set (the call-graph edges fastcc-shardsafe propagates
    worker/barrier phases along).

Soundness posture: the derived table is deliberately *under*-approximate.
Effects only propagate through arguments that are syntactically bare
(`f(x)`, `f(std::move(x))`) and only for callee names that resolve
unambiguously — exactly one definition in the analyzed set, no declared
parameter contract of their own (declarations stay the single source of
truth), and not on the common-method denylist (`push_back`, `clear`, ...,
names that collide with standard-library containers and would otherwise
smear one class's behavior onto every other receiver).  An effect this
module fails to derive falls back to the tools' existing behavior; an
effect it does derive is backed by an actual call chain in the tree.

The module has no imports from the analyzer scripts; callers inject the
lexer and function extractor (fastcc-lint's `lex`, fastcc-dataflow's
`extract_functions`) so there is exactly one C++ front end in the tool
suite.  Zero dependencies beyond CPython.
"""

from __future__ import annotations

# Method names shared with standard-library containers (or otherwise so
# generic that one bare name aliases many unrelated definitions).  Calls to
# these never contribute call-graph edges or derived effects.
CALL_DENYLIST = frozenset({
    "push_back", "pop_back", "push_front", "pop_front", "push", "pop",
    "emplace", "emplace_back", "insert", "erase", "clear", "resize",
    "reserve", "assign", "swap", "reset", "release", "get", "at", "after",
    "size", "empty", "begin", "end", "cbegin", "cend", "front", "back",
    "count", "find", "min", "max", "abs", "move", "forward", "make_unique",
    "make_shared", "make_pair", "run", "now", "id", "of", "str", "data",
    "value", "first", "second", "top", "contains", "append", "c_str",
})

# Statement/expression keywords that look like calls to the token scanner.
_CALL_HEAD_SKIP = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "assert", "catch", "new", "delete",
    "throw", "case", "defined", "alignas", "noexcept", "explicit",
    "operator", "requires", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast",
})


class Summary:
    """Everything derived for one bare function name."""

    __slots__ = ("name", "defs", "param_lists", "calls", "callees",
                 "consumes_params", "discharge_params")

    def __init__(self, name):
        self.name = name
        self.defs = []           # [(path, line)] per definition
        self.param_lists = []    # [param-name list] per definition
        self.calls = []          # [(callee, (bare-arg-or-None, ...))]
        self.callees = set()     # denylist-filtered call-graph edges
        self.consumes_params = set()
        self.discharge_params = set()

    @property
    def unambiguous(self):
        return len(self.defs) == 1

    def param_index(self):
        """name -> index for the single definition (unambiguous only)."""
        if not self.unambiguous or not self.param_lists:
            return {}
        return {p: i for i, p in enumerate(self.param_lists[0])
                if p is not None}


def _match(toks, i, open_t, close_t):
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == open_t:
            depth += 1
        elif toks[j].text == close_t:
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def _split_top(toks, start, end):
    """Splits toks[start:end] on top-level commas."""
    parts, cur, depth = [], [], 0
    for t in toks[start:end]:
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        if depth == 0 and t.text == ",":
            parts.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        parts.append(cur)
    return parts


def _bare_name(arg):
    """The identifier if the argument is exactly `v` or `std::move(v)`
    (parens tolerated), else None."""
    toks = list(arg)
    while len(toks) >= 3 and toks[0].text == "(" and toks[-1].text == ")":
        toks = toks[1:-1]
    if (len(toks) >= 4 and toks[0].text == "std" and toks[1].text == "::"
            and toks[2].text == "move"):
        toks = toks[3:]
        while len(toks) >= 3 and toks[0].text == "(" and toks[-1].text == ")":
            toks = toks[1:-1]
    if len(toks) == 1 and toks[0].kind == "id":
        return toks[0].text
    return None


def _param_names(param_toks):
    """Declaration-order parameter names; None for unnamed/untyped slots."""
    names = []
    for run in _split_top(param_toks, 0, len(param_toks)):
        ids = [t.text for t in run if t.kind == "id"]
        names.append(ids[-1] if len(ids) >= 2 else None)
    return names


def _collect_calls(body_toks):
    """Yields (callee, (bare-arg-name-or-None, ...)) for every call-shaped
    `name(...)` in the body, including nested calls."""
    n = len(body_toks)
    for i, t in enumerate(body_toks):
        if t.kind != "id" or t.text in _CALL_HEAD_SKIP:
            continue
        if i + 1 >= n or body_toks[i + 1].text != "(":
            continue
        close = _match(body_toks, i + 1, "(", ")")
        args = _split_top(body_toks, i + 2, close)
        yield t.text, tuple(_bare_name(a) for a in args)


def collect_mutable_globals(tokens):
    """name -> line for file-scope `static` variables that are neither
    const, constexpr, nor constinit (internal linkage makes same-file
    resolution exact; mirrors fastcc-lint's mutable-global detector)."""
    out = {}
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "static":
            continue
        j = i + 1
        qualifiers = set()
        ident = None
        depth = 0
        while j < n:
            t = tokens[j]
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif depth == 0:
                if t.text in ("const", "constexpr", "constinit",
                              "thread_local"):
                    qualifiers.add(t.text)
                elif t.text in (";", "{", "}", "="):
                    break
                elif t.text == "(":
                    ident = None  # function declaration/definition
                    break
                elif t.kind == "id":
                    ident = t
            j += 1
        if ident is None or j >= n:
            continue
        if tokens[j].text in ("=", ";", "{") and not (
                qualifiers & {"const", "constexpr", "constinit"}):
            out.setdefault(ident.text, ident.line)
    return out


def build_summaries(files, *, lex, extract_functions, contracts_table=None,
                    discharge_names=frozenset(),
                    call_denylist=CALL_DENYLIST):
    """Builds the bare-name -> Summary table over `files`.

    `lex` and `extract_functions` are the host tool's front end (injected
    to avoid a second parser); `contracts_table` is fastcc-dataflow's
    Contracts.table used both as effect seeds and as the "already declared,
    do not re-derive" mask; `discharge_names` seeds the PFC-discharge
    derivation (fastcc-dataflow's DISCHARGE_NAMES).
    """
    contracts_table = contracts_table or {}
    sums: dict[str, Summary] = {}

    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                tokens, _ = lex(f.read())
        except OSError:
            continue
        for (name, line, param_toks, body_toks) in extract_functions(tokens):
            s = sums.setdefault(name, Summary(name))
            s.defs.append((path, line))
            s.param_lists.append(_param_names(param_toks))
            for callee, args in _collect_calls(body_toks):
                s.calls.append((callee, args))
                if callee not in call_denylist and callee != name:
                    s.callees.add(callee)

    def declared_consumes(name):
        entry = contracts_table.get(name)
        if not entry:
            return None
        return {idx for idx, k in entry.get("params", {}).items()
                if k in ("consumes", "consumes-xshard")}

    def derivable(s):
        # Derived effects only for unambiguous definitions with no declared
        # parameter contract of their own and a non-generic name.
        if not s.unambiguous or s.name in call_denylist:
            return False
        entry = contracts_table.get(s.name)
        return not (entry and entry.get("params"))

    # Bottom-up fixpoint: effects only accumulate, so iterate to stability.
    for _ in range(max(4, len(sums))):
        changed = False
        for s in sums.values():
            if not derivable(s):
                continue
            pidx = s.param_index()
            if not pidx:
                continue
            for callee, args in s.calls:
                if callee in discharge_names:
                    for a in args:
                        if a in pidx and pidx[a] not in s.discharge_params:
                            s.discharge_params.add(pidx[a])
                            changed = True
                    continue
                cons = declared_consumes(callee)
                disch = set()
                if cons is None:
                    cs = sums.get(callee)
                    if cs is not None and derivable(cs):
                        cons, disch = cs.consumes_params, cs.discharge_params
                    else:
                        cons = set()
                for idx, a in enumerate(args):
                    if a not in pidx:
                        continue
                    if idx in cons and pidx[a] not in s.consumes_params:
                        s.consumes_params.add(pidx[a])
                        changed = True
                    if idx in disch and pidx[a] not in s.discharge_params:
                        s.discharge_params.add(pidx[a])
                        changed = True
        if not changed:
            break
    return sums


def derived_effects(sums, callee, call_denylist=CALL_DENYLIST):
    """(consumes_param_indexes, discharge_param_indexes) usable by a caller
    when `callee` has no declared contract, or (set(), set()) when the name
    is ambiguous/unknown/denylisted."""
    s = sums.get(callee) if sums else None
    if s is None or not s.unambiguous or callee in call_denylist:
        return set(), set()
    return set(s.consumes_params), set(s.discharge_params)


def digest(sums):
    """Deterministic digest of the derived table, for cache keying."""
    items = []
    for name in sorted(sums):
        s = sums[name]
        items.append((name, len(s.defs),
                      sorted(s.consumes_params), sorted(s.discharge_params),
                      sorted(s.callees)))
    return repr(items)
