"""Unit tests for fastcc_cache (the analyzers' per-file result cache).

Run directly (`python3 tools/test_fastcc_cache.py`) or via the
`fastcc_cache_unit` ctest.  Covers the keying contract (content, sibling
header, config digest), corrupt-entry tolerance, the disabled mode, and an
end-to-end hit/miss/invalidation pass through the real fastcc-lint CLI.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import fastcc_cache  # noqa: E402

TOOLS = os.path.dirname(os.path.abspath(__file__))
FINDINGS = [(3, "mutable-global", "static counter"),
            (9, "float-usage", "double in the hot path")]


class ResultCacheTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fastcc-cache-test-")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def make(self, config="cfg-a", enabled=True):
        return fastcc_cache.ResultCache(
            self.tmp, "lint",
            fastcc_cache.ResultCache.digest_config(config), enabled=enabled)

    def test_round_trip(self):
        cache = self.make()
        key = cache.key_for("src/a.cc", "int x;")
        self.assertIsNone(cache.get(key))
        cache.put(key, FINDINGS)
        self.assertEqual(cache.get(key), FINDINGS)
        self.assertEqual(cache.hits, 1)

    def test_empty_findings_round_trip(self):
        cache = self.make()
        key = cache.key_for("src/a.cc", "int x;")
        cache.put(key, [])
        self.assertEqual(cache.get(key), [])

    def test_content_change_invalidates(self):
        cache = self.make()
        k1 = cache.key_for("src/a.cc", "int x;")
        cache.put(k1, FINDINGS)
        k2 = cache.key_for("src/a.cc", "int x;  // edited")
        self.assertNotEqual(k1, k2)
        self.assertIsNone(cache.get(k2))

    def test_sibling_header_participates(self):
        cache = self.make()
        k1 = cache.key_for("src/a.cc", "int x;", sibling_text="struct A {};")
        k2 = cache.key_for("src/a.cc", "int x;", sibling_text="struct B {};")
        self.assertNotEqual(k1, k2)

    def test_path_participates(self):
        cache = self.make()
        self.assertNotEqual(cache.key_for("src/a.cc", "int x;"),
                            cache.key_for("src/b.cc", "int x;"))

    def test_config_digest_invalidates(self):
        a = self.make(config="cfg-a")
        key_a = a.key_for("src/a.cc", "int x;")
        a.put(key_a, FINDINGS)
        b = self.make(config="cfg-b")
        self.assertIsNone(b.get(b.key_for("src/a.cc", "int x;")))

    def test_corrupt_entry_is_a_miss(self):
        cache = self.make()
        key = cache.key_for("src/a.cc", "int x;")
        cache.put(key, FINDINGS)
        with open(cache._entry_path(key), "w", encoding="utf-8") as f:
            f.write("{not json")
        self.assertIsNone(cache.get(key))

    def test_wrong_shape_is_a_miss(self):
        cache = self.make()
        key = cache.key_for("src/a.cc", "int x;")
        cache.put(key, FINDINGS)
        with open(cache._entry_path(key), "w", encoding="utf-8") as f:
            f.write('{"v": 1, "findings": "nope"}')
        self.assertIsNone(cache.get(key))

    def test_disabled_cache_never_stores(self):
        cache = self.make(enabled=False)
        key = cache.key_for("src/a.cc", "int x;")
        cache.put(key, FINDINGS)
        self.assertIsNone(cache.get(key))
        self.assertFalse(os.path.exists(os.path.join(self.tmp, "lint")))

    def test_version_salt_bump_misses_unchanged_hits(self):
        # The tools fold ANALYZER_SALT into digest_config; a salt bump must
        # invalidate every entry while an unchanged salt keeps hitting.
        def units_cache(salt):
            return fastcc_cache.ResultCache(
                self.tmp, "units",
                fastcc_cache.ResultCache.digest_config(salt, ["unit-mix"]))

        v1 = units_cache("fastcc-units-v1")
        v1.put(v1.key_for("src/a.cc", "int x;"), FINDINGS)

        same = units_cache("fastcc-units-v1")
        self.assertEqual(same.get(same.key_for("src/a.cc", "int x;")),
                         FINDINGS)

        bumped = units_cache("fastcc-units-v2")
        self.assertIsNone(bumped.get(bumped.key_for("src/a.cc", "int x;")))


class LintEndToEndTest(unittest.TestCase):
    """The real CLI: second run hits, edits invalidate, findings survive."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fastcc-cache-e2e-")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.cache_dir = os.path.join(self.tmp, "cache")
        self.src = os.path.join(self.tmp, "probe.cc")
        with open(self.src, "w", encoding="utf-8") as f:
            f.write("static int g_probe = 0;\n")

    def run_lint(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "fastcc-lint"),
             "--mode", "tokens", "--cache-dir", self.cache_dir, self.src],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout

    def test_hit_miss_invalidate(self):
        code, out = self.run_lint()
        self.assertEqual(code, 1, out)  # mutable-global fires
        self.assertIn("cache 0 hit(s) / 1 file(s)", out)
        self.assertIn("mutable-global", out)

        code, out = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("cache 1 hit(s) / 1 file(s)", out)
        self.assertIn("mutable-global", out)  # findings replay from cache

        with open(self.src, "w", encoding="utf-8") as f:
            f.write("static const int k_probe = 0;\n")
        code, out = self.run_lint()
        self.assertEqual(code, 0, out)
        self.assertIn("cache 0 hit(s) / 1 file(s)", out)


class AnalyzeDriverCacheTest(unittest.TestCase):
    """fastcc-analyze shares one cache directory but each analyzer keeps
    its own namespace: wiping one tool's entries must not invalidate the
    others'."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="fastcc-analyze-cache-")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.cache_dir = os.path.join(self.tmp, "cache")
        self.src = os.path.join(self.tmp, "probe.cc")
        with open(self.src, "w", encoding="utf-8") as f:
            f.write("int fx_probe(int a, int b) { return a + b; }\n")

    def run_analyze(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "fastcc-analyze"),
             "--cache-dir", self.cache_dir, self.src],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout

    def test_per_analyzer_namespaces_are_independent(self):
        code, out = self.run_analyze()
        self.assertEqual(code, 0, out)
        for tool in ("lint", "dataflow", "shardsafe", "units"):
            self.assertTrue(
                os.path.isdir(os.path.join(self.cache_dir, tool)),
                f"missing cache namespace for {tool}: {out}")
        self.assertEqual(out.count("cache 0 hit(s) / 1 file(s)"), 4, out)

        code, out = self.run_analyze()
        self.assertEqual(code, 0, out)
        self.assertEqual(out.count("cache 1 hit(s) / 1 file(s)"), 4, out)

        # Wiping the units namespace re-analyzes only units.
        shutil.rmtree(os.path.join(self.cache_dir, "units"))
        code, out = self.run_analyze()
        self.assertEqual(code, 0, out)
        self.assertIn("fastcc-units: 1 files, 0 finding(s)", out)
        self.assertEqual(out.count("cache 1 hit(s) / 1 file(s)"), 3, out)
        self.assertEqual(out.count("cache 0 hit(s) / 1 file(s)"), 1, out)


if __name__ == "__main__":
    unittest.main()
