#!/bin/sh
# install-hooks.sh: installs the fastcc git pre-commit hook.
#
# The hook runs `tools/fastcc-analyze` over the staged src/ files (plus the
# tree-wide declaration context the interprocedural analyzers always read),
# reusing the shared `.fastcc-cache/` result cache, so a warm run costs about
# as long as one analyzer's context build.  A finding blocks the commit; fix
# it or add a reasoned `// lint:allow(check -- reason)` and restage.
# Bypass a single commit with `git commit --no-verify`.
#
# Usage: tools/install-hooks.sh [--dry-run]
#   --dry-run  print the hook to stdout instead of installing it (used by
#              the ctest smoke check; no repository state is touched).
set -eu

hook_body() {
  cat <<'HOOK'
#!/bin/sh
# fastcc pre-commit hook (installed by tools/install-hooks.sh).
# Runs the four fastcc analyzers on the staged src/ files; a finding
# blocks the commit.  Bypass once with `git commit --no-verify`.
set -u

root=$(git rev-parse --show-toplevel) || exit 0
staged=$(git diff --cached --name-only --diff-filter=ACMR -- \
           'src/*.h' 'src/*.cc' 'src/*.hpp' 'src/*.cpp')
[ -z "$staged" ] && exit 0

files=""
for f in $staged; do
  [ -f "$root/$f" ] && files="$files $root/$f"
done
[ -z "$files" ] && exit 0

# shellcheck disable=SC2086  # word-splitting $files is intended
exec python3 "$root/tools/fastcc-analyze" --jobs 0 $files
HOOK
}

if [ "${1:-}" = "--dry-run" ]; then
  hook_body
  exit 0
fi

root=$(git rev-parse --show-toplevel)
hooks_dir=$(git rev-parse --git-path hooks)
case "$hooks_dir" in
  /*) ;;
  *) hooks_dir="$root/$hooks_dir" ;;
esac

mkdir -p "$hooks_dir"
target="$hooks_dir/pre-commit"
if [ -e "$target" ] && ! grep -q "fastcc pre-commit hook" "$target"; then
  echo "install-hooks.sh: $target exists and is not ours; not overwriting" >&2
  exit 1
fi
hook_body > "$target"
chmod +x "$target"
echo "installed $target"
